//! A forward-chaining production rule engine with PathLog conditions.
//!
//! The paper's conclusion: path expressions are "a convenient tool to
//! reference objects; the way in which a set of rules is being evaluated is
//! an orthogonal issue".  This module demonstrates that orthogonality with a
//! classic recognise–act production system:
//!
//! * the **condition** of a rule is an ordinary PathLog body (a conjunction
//!   of references, evaluated by [`solve_body`] — the same matcher the
//!   deductive engine uses);
//! * the **actions** assert or retract references ([`Action`]);
//! * one instantiation fires per cycle, chosen by a conflict-resolution
//!   strategy; refractoriness prevents the same instantiation from firing
//!   twice.
//!
//! Unlike the deductive engine, production rules can *retract* facts, so the
//! fixpoint guarantee of the bottom-up semantics is replaced by explicit
//! cycle limits.

use std::collections::BTreeSet;
use std::fmt;

use pathlog_core::engine::solve_body;
use pathlog_core::program::Literal;
use pathlog_core::semantics::Bindings;
use pathlog_core::structure::{Oid, Structure};

use crate::action::{apply_action, Action, ActionEffect};
use crate::error::{ReactiveError, Result};

/// How the conflict set is ordered before the first instantiation fires.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum ConflictResolution {
    /// Highest priority first; ties broken by rule definition order, then by
    /// binding order (the default).
    #[default]
    Priority,
    /// Rule definition order only (priorities ignored).
    DefinitionOrder,
}

/// One production rule.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ProductionRule {
    /// A name used in traces and error messages.
    pub name: String,
    /// Higher priorities fire first under [`ConflictResolution::Priority`].
    pub priority: i64,
    /// The condition: a PathLog body.
    pub condition: Vec<Literal>,
    /// The actions, applied in order when the rule fires.
    pub actions: Vec<Action>,
}

impl ProductionRule {
    /// A rule with priority 0.
    pub fn new(name: impl Into<String>, condition: Vec<Literal>, actions: Vec<Action>) -> Self {
        ProductionRule {
            name: name.into(),
            priority: 0,
            condition,
            actions,
        }
    }

    /// Set the priority.
    pub fn with_priority(mut self, priority: i64) -> Self {
        self.priority = priority;
        self
    }
}

impl fmt::Display for ProductionRule {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{} [{}]: IF ", self.name, self.priority)?;
        for (i, l) in self.condition.iter().enumerate() {
            if i > 0 {
                write!(f, ", ")?;
            }
            write!(f, "{l}")?;
        }
        write!(f, " THEN ")?;
        for (i, a) in self.actions.iter().enumerate() {
            if i > 0 {
                write!(f, "; ")?;
            }
            write!(f, "{a}")?;
        }
        Ok(())
    }
}

/// Options of the production engine.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ProductionOptions {
    /// Maximum number of recognise–act cycles before giving up.
    pub max_cycles: usize,
    /// Remember fired instantiations so they never fire again.
    pub refractory: bool,
    /// Conflict-resolution strategy.
    pub conflict_resolution: ConflictResolution,
    /// Create virtual objects for undefined scalar paths in assert actions.
    pub create_virtuals: bool,
}

impl Default for ProductionOptions {
    fn default() -> Self {
        ProductionOptions {
            max_cycles: 10_000,
            refractory: true,
            conflict_resolution: ConflictResolution::Priority,
            create_virtuals: true,
        }
    }
}

/// Statistics of one production run.
#[derive(Debug, Default, Clone, Copy, PartialEq, Eq)]
pub struct ProductionStats {
    /// Recognise–act cycles executed.
    pub cycles: usize,
    /// Rule instantiations fired.
    pub firings: usize,
    /// Facts asserted by actions.
    pub asserted: usize,
    /// Facts retracted by actions.
    pub retracted: usize,
    /// Virtual objects created by actions.
    pub virtual_objects: usize,
}

/// One entry of the firing trace.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Firing {
    /// The cycle in which the rule fired (1-based).
    pub cycle: usize,
    /// The rule's name.
    pub rule: String,
    /// The instantiation, as `(variable, object)` pairs.
    pub bindings: Vec<(String, Oid)>,
}

/// The production rule engine.
#[derive(Debug, Clone, Default)]
pub struct ProductionEngine {
    rules: Vec<ProductionRule>,
    options: ProductionOptions,
}

impl ProductionEngine {
    /// An engine with default options and no rules.
    pub fn new() -> Self {
        Self::default()
    }

    /// An engine with the given options.
    pub fn with_options(options: ProductionOptions) -> Self {
        ProductionEngine {
            rules: Vec::new(),
            options,
        }
    }

    /// Add a rule; rules keep their definition order.
    pub fn add_rule(&mut self, rule: ProductionRule) -> &mut Self {
        self.rules.push(rule);
        self
    }

    /// The rules in definition order.
    pub fn rules(&self) -> &[ProductionRule] {
        &self.rules
    }

    /// The options in use.
    pub fn options(&self) -> &ProductionOptions {
        &self.options
    }

    /// Run recognise–act cycles until no (new) instantiation matches.
    /// Returns statistics; use [`ProductionEngine::run_traced`] to also get
    /// the firing trace.
    pub fn run(&self, structure: &mut Structure) -> Result<ProductionStats> {
        self.run_traced(structure).map(|(stats, _)| stats)
    }

    /// Run recognise–act cycles, returning statistics and the firing trace.
    pub fn run_traced(&self, structure: &mut Structure) -> Result<(ProductionStats, Vec<Firing>)> {
        let mut stats = ProductionStats::default();
        let mut trace = Vec::new();
        let mut fired: BTreeSet<(usize, Vec<(String, Oid)>)> = BTreeSet::new();

        loop {
            if stats.cycles >= self.options.max_cycles {
                return Err(ReactiveError::LimitExceeded(format!(
                    "no quiescence after {} recognise-act cycles",
                    self.options.max_cycles
                )));
            }
            stats.cycles += 1;

            // Recognise: build the conflict set.
            let mut conflict_set: Vec<(usize, Bindings)> = Vec::new();
            for (index, rule) in self.rules.iter().enumerate() {
                for bindings in solve_body(structure, &rule.condition, &Bindings::new())? {
                    let key = (index, instantiation_key(&bindings));
                    if self.options.refractory && fired.contains(&key) {
                        continue;
                    }
                    conflict_set.push((index, bindings));
                }
            }
            if conflict_set.is_empty() {
                break;
            }

            // Resolve: order and pick the first instantiation.
            conflict_set.sort_by(|(ia, ba), (ib, bb)| {
                let by_priority = match self.options.conflict_resolution {
                    ConflictResolution::Priority => self.rules[*ib].priority.cmp(&self.rules[*ia].priority),
                    ConflictResolution::DefinitionOrder => std::cmp::Ordering::Equal,
                };
                by_priority
                    .then(ia.cmp(ib))
                    .then_with(|| instantiation_key(ba).cmp(&instantiation_key(bb)))
            });
            let (index, bindings) = conflict_set.into_iter().next().expect("non-empty conflict set");
            let rule = &self.rules[index];

            // Act.
            for action in &rule.actions {
                let effect: ActionEffect = apply_action(structure, action, &bindings, self.options.create_virtuals)?;
                stats.asserted += effect.asserted;
                stats.retracted += effect.retracted;
                stats.virtual_objects += effect.virtual_objects;
            }
            stats.firings += 1;
            let key = instantiation_key(&bindings);
            trace.push(Firing {
                cycle: stats.cycles,
                rule: rule.name.clone(),
                bindings: key.clone(),
            });
            if self.options.refractory {
                fired.insert((index, key));
            }
        }
        Ok((stats, trace))
    }
}

/// A canonical, comparable form of an instantiation.
fn instantiation_key(bindings: &Bindings) -> Vec<(String, Oid)> {
    let mut pairs: Vec<(String, Oid)> = bindings.iter().map(|(v, o)| (v.name().to_string(), o)).collect();
    pairs.sort();
    pairs
}

#[cfg(test)]
mod tests {
    use super::*;
    use pathlog_core::term::{Filter, Term};

    /// Employees with salaries; the rules below classify and adjust them.
    fn payroll() -> Structure {
        let mut s = Structure::new();
        let employee = s.atom("employee");
        let salary = s.atom("salary");
        for (name, pay) in [("ann", 900), ("bob", 1500), ("cleo", 2000)] {
            let p = s.atom(name);
            let v = s.int(pay);
            s.add_isa(p, employee);
            s.assert_scalar(salary, p, &[], v).unwrap();
        }
        // The minimum-wage threshold must exist in the universe for the
        // comparison literal `S.lt@(1000)` to valuate it.
        s.int(1000);
        s
    }

    fn lit(text_term: Term) -> Literal {
        Literal::pos(text_term)
    }

    #[test]
    fn a_simple_rule_fires_once_per_instantiation() {
        let mut s = payroll();
        let mut engine = ProductionEngine::new();
        // IF X : employee THEN assert X : person
        engine.add_rule(ProductionRule::new(
            "classify",
            vec![lit(Term::var("X").isa("employee"))],
            vec![Action::Assert(Term::var("X").isa("person"))],
        ));
        let (stats, trace) = engine.run_traced(&mut s).unwrap();
        assert_eq!(stats.firings, 3, "one firing per employee");
        assert_eq!(stats.asserted, 3);
        assert_eq!(trace.len(), 3);
        assert!(trace.iter().all(|f| f.rule == "classify"));
        let person = s.atom("person");
        assert_eq!(s.instances_of(person).count(), 3);
        // Quiescence: running again fires nothing new thanks to refractoriness
        // (the derived facts still match, but the instantiations are the same).
        let stats2 = engine.run(&mut s).unwrap();
        assert_eq!(stats2.firings, 3, "fresh engine state refires; facts unchanged");
        assert_eq!(stats2.asserted, 0);
    }

    #[test]
    fn priorities_decide_which_rule_fires_first() {
        let mut s = payroll();
        let mut engine = ProductionEngine::new();
        engine.add_rule(
            ProductionRule::new(
                "low",
                vec![lit(Term::var("X").isa("employee"))],
                vec![Action::Assert(Term::var("X").isa("reviewedSecond"))],
            )
            .with_priority(1),
        );
        engine.add_rule(
            ProductionRule::new(
                "high",
                vec![lit(Term::var("X").isa("employee"))],
                vec![Action::Assert(Term::var("X").isa("reviewedFirst"))],
            )
            .with_priority(10),
        );
        let (_, trace) = engine.run_traced(&mut s).unwrap();
        // The first three firings must all be the high-priority rule.
        assert!(trace[..3].iter().all(|f| f.rule == "high"), "{trace:?}");
        assert!(trace[3..].iter().all(|f| f.rule == "low"));
    }

    #[test]
    fn definition_order_strategy_ignores_priorities() {
        let mut s = payroll();
        let mut engine = ProductionEngine::with_options(ProductionOptions {
            conflict_resolution: ConflictResolution::DefinitionOrder,
            ..ProductionOptions::default()
        });
        engine.add_rule(
            ProductionRule::new(
                "first",
                vec![lit(Term::var("X").isa("employee"))],
                vec![Action::Assert(Term::var("X").isa("a"))],
            )
            .with_priority(-5),
        );
        engine.add_rule(
            ProductionRule::new(
                "second",
                vec![lit(Term::var("X").isa("employee"))],
                vec![Action::Assert(Term::var("X").isa("b"))],
            )
            .with_priority(100),
        );
        let (_, trace) = engine.run_traced(&mut s).unwrap();
        assert_eq!(trace[0].rule, "first");
    }

    #[test]
    fn retracting_the_triggering_fact_reaches_quiescence() {
        let mut s = payroll();
        let mut engine = ProductionEngine::new();
        // IF X : employee[salary -> S], S.lt@(1000) THEN
        //   retract X[salary -> S]; assert X[salary -> 1000]   (raise to minimum wage)
        let condition = vec![
            lit(Term::var("X")
                .isa("employee")
                .filter(Filter::scalar("salary", Term::var("S")))),
            lit(Term::var("S").scalar_args("lt", vec![Term::int(1000)])),
        ];
        engine.add_rule(ProductionRule::new(
            "minimum-wage",
            condition,
            vec![
                Action::Retract(Term::var("X").filter(Filter::scalar("salary", Term::var("S")))),
                Action::Assert(Term::var("X").filter(Filter::scalar("salary", Term::int(1000)))),
            ],
        ));
        let stats = engine.run(&mut s).unwrap();
        assert_eq!(stats.firings, 1, "only ann is below minimum wage");
        assert_eq!(stats.retracted, 1);
        assert_eq!(stats.asserted, 1);
        let (salary, ann, thousand) = (s.atom("salary"), s.atom("ann"), s.int(1000));
        assert_eq!(s.apply_scalar(salary, ann, &[]), Some(thousand));
    }

    #[test]
    fn runaway_rule_sets_hit_the_cycle_limit() {
        let mut s = payroll();
        let mut engine = ProductionEngine::with_options(ProductionOptions {
            max_cycles: 5,
            refractory: false, // the same instantiation may fire forever
            ..ProductionOptions::default()
        });
        engine.add_rule(ProductionRule::new(
            "loop",
            vec![lit(Term::var("X").isa("employee"))],
            vec![Action::Assert(Term::var("X").isa("employee"))],
        ));
        let err = engine.run(&mut s).unwrap_err();
        assert!(matches!(err, ReactiveError::LimitExceeded(_)));
    }

    #[test]
    fn rules_and_engine_expose_their_configuration() {
        let rule = ProductionRule::new(
            "r",
            vec![lit(Term::var("X").isa("employee"))],
            vec![Action::Assert(Term::var("X").isa("person"))],
        )
        .with_priority(7);
        assert!(rule.to_string().contains("IF X : employee THEN assert X : person"));
        assert_eq!(rule.priority, 7);
        let mut engine = ProductionEngine::new();
        engine.add_rule(rule);
        assert_eq!(engine.rules().len(), 1);
        assert_eq!(engine.options().max_cycles, 10_000);
    }
}
