//! A forward-chaining production rule engine with PathLog conditions.
//!
//! The paper's conclusion: path expressions are "a convenient tool to
//! reference objects; the way in which a set of rules is being evaluated is
//! an orthogonal issue".  This module demonstrates that orthogonality with a
//! classic recognise–act production system:
//!
//! * the **condition** of a rule is an ordinary PathLog body (a conjunction
//!   of references, evaluated by
//!   [`solve_body`](pathlog_core::engine::solve_body) — the same matcher the
//!   deductive engine uses);
//! * the **actions** assert or retract references ([`Action`]);
//! * one instantiation fires per cycle, chosen by a conflict-resolution
//!   strategy; refractoriness prevents the same instantiation from firing
//!   twice.
//!
//! Unlike the deductive engine, production rules can *retract* facts, so the
//! fixpoint guarantee of the bottom-up semantics is replaced by explicit
//! cycle limits.
//!
//! **Scheduling.**  The recognise phase of a cycle solves every rule's
//! condition against the *same* frozen structure, which makes it a natural
//! [`ConditionBatch`](pathlog_core::engine::ConditionBatch): the engine
//! routes it through the deductive engine's executor subsystem, so with
//! [`ProductionOptions::mode`] set to [`EvalMode::Parallel`] the condition
//! solves of a cycle fan out over a persistent worker pool.  Matches commit
//! in canonical priority-then-`binding_key` order, so pooled runs are
//! **bit-identical** to sequential ones — same firing order, same trace,
//! same statistics, same structure.
//!
//! **Delta gating.**  With [`ProductionOptions::delta_gated`] (the default)
//! a rule's condition is only re-solved when the firings since its last
//! solve could have changed its solution set: when a fact was *retracted*
//! (conditions are not monotone under retraction), when objects or
//! signature declarations were created, or when the
//! [`DeltaView`] sliced from the
//! insertion logs since the rule's watermark contains facts of a
//! method/class any condition literal reads.  Otherwise the cached solution
//! run is reused verbatim, turning O(rules × cycles) full re-matching into
//! delta-gated matching — observationally identical to full re-matching
//! (property-tested), with [`ProductionStats::condition_solves`] /
//! [`ProductionStats::condition_skips`] recording the difference.

use std::collections::BTreeSet;
use std::fmt;
use std::sync::Arc;

use pathlog_core::engine::{BindingKey, ConditionTask, Engine, EvalMode, EvalOptions, SortedRun};
use pathlog_core::program::{literal_reads, DepKey, Literal};
use pathlog_core::semantics::{Bindings, DeltaView, EvalMarks};
use pathlog_core::structure::{Oid, Structure};

use crate::action::{apply_action, Action, ActionEffect};
use crate::error::{ReactiveError, Result};

/// How the conflict set is ordered before the first instantiation fires.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum ConflictResolution {
    /// Highest priority first; ties broken by rule definition order, then by
    /// binding order (the default).
    #[default]
    Priority,
    /// Rule definition order only (priorities ignored).
    DefinitionOrder,
}

/// One production rule.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ProductionRule {
    /// A name used in traces and error messages.
    pub name: String,
    /// Higher priorities fire first under [`ConflictResolution::Priority`].
    pub priority: i64,
    /// The condition: a PathLog body.
    pub condition: Vec<Literal>,
    /// The actions, applied in order when the rule fires.
    pub actions: Vec<Action>,
}

impl ProductionRule {
    /// A rule with priority 0.
    pub fn new(name: impl Into<String>, condition: Vec<Literal>, actions: Vec<Action>) -> Self {
        ProductionRule {
            name: name.into(),
            priority: 0,
            condition,
            actions,
        }
    }

    /// Set the priority.
    pub fn with_priority(mut self, priority: i64) -> Self {
        self.priority = priority;
        self
    }
}

impl fmt::Display for ProductionRule {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{} [{}]: IF ", self.name, self.priority)?;
        for (i, l) in self.condition.iter().enumerate() {
            if i > 0 {
                write!(f, ", ")?;
            }
            write!(f, "{l}")?;
        }
        write!(f, " THEN ")?;
        for (i, a) in self.actions.iter().enumerate() {
            if i > 0 {
                write!(f, "; ")?;
            }
            write!(f, "{a}")?;
        }
        Ok(())
    }
}

/// Options of the production engine.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ProductionOptions {
    /// Maximum number of recognise–act cycles before giving up.
    pub max_cycles: usize,
    /// Remember fired instantiations so they never fire again.
    pub refractory: bool,
    /// Conflict-resolution strategy.
    pub conflict_resolution: ConflictResolution,
    /// Create virtual objects for undefined scalar paths in assert actions.
    pub create_virtuals: bool,
    /// How a cycle's condition batch is executed: inline on the calling
    /// thread, or fanned over the shared persistent worker pool.  Pooled
    /// runs are bit-identical to sequential ones (see the module docs).
    pub mode: EvalMode,
    /// Skip re-solving conditions whose solution set provably did not change
    /// since the rule's last watermark (see the module docs).  Disabling
    /// this re-matches every rule every cycle — the ablation arm of the E18
    /// experiment; firings, trace and final structure are identical either
    /// way.
    pub delta_gated: bool,
}

impl Default for ProductionOptions {
    fn default() -> Self {
        ProductionOptions {
            max_cycles: 10_000,
            refractory: true,
            conflict_resolution: ConflictResolution::Priority,
            create_virtuals: true,
            mode: EvalMode::Sequential,
            delta_gated: true,
        }
    }
}

/// Statistics of one production run.  Counters saturate instead of wrapping,
/// so aggregating many runs (see [`ProductionStats::merge`]) cannot overflow
/// in debug builds.
#[derive(Debug, Default, Clone, Copy, PartialEq, Eq)]
pub struct ProductionStats {
    /// Recognise–act cycles executed.
    pub cycles: usize,
    /// Rule instantiations fired.
    pub firings: usize,
    /// Facts asserted by actions.
    pub asserted: usize,
    /// Facts retracted by actions.
    pub retracted: usize,
    /// Virtual objects created by actions.
    pub virtual_objects: usize,
    /// Conditions solved (one per dirty rule per cycle).
    pub condition_solves: usize,
    /// Condition solves skipped because the rule's cached solutions were
    /// provably still valid (delta-gated matching only).
    pub condition_skips: usize,
}

impl ProductionStats {
    /// Fold the counters of another run into this one.  Every field is
    /// summed with saturating arithmetic, mirroring
    /// [`EvalStats::merge`](pathlog_core::engine::EvalStats::merge).
    pub fn merge(&mut self, other: &ProductionStats) {
        self.cycles = self.cycles.saturating_add(other.cycles);
        self.firings = self.firings.saturating_add(other.firings);
        self.asserted = self.asserted.saturating_add(other.asserted);
        self.retracted = self.retracted.saturating_add(other.retracted);
        self.virtual_objects = self.virtual_objects.saturating_add(other.virtual_objects);
        self.condition_solves = self.condition_solves.saturating_add(other.condition_solves);
        self.condition_skips = self.condition_skips.saturating_add(other.condition_skips);
    }
}

/// One entry of the firing trace.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Firing {
    /// The cycle in which the rule fired (1-based).
    pub cycle: usize,
    /// The rule's name.
    pub rule: String,
    /// The instantiation, as `(variable, object)` pairs.
    pub bindings: Vec<(String, Oid)>,
}

/// The production rule engine.
///
/// The embedded deductive [`Engine`] carries the executor configuration: in
/// parallel mode its persistent worker pool is created lazily on the first
/// batched recognise phase and reused across cycles, runs and clones.
#[derive(Debug, Clone)]
pub struct ProductionEngine {
    rules: Vec<ProductionRule>,
    options: ProductionOptions,
    core: Engine,
}

impl Default for ProductionEngine {
    fn default() -> Self {
        Self::with_options(ProductionOptions::default())
    }
}

impl ProductionEngine {
    /// An engine with default options and no rules.
    pub fn new() -> Self {
        Self::default()
    }

    /// An engine with the given options.
    pub fn with_options(options: ProductionOptions) -> Self {
        ProductionEngine {
            rules: Vec::new(),
            options,
            core: Engine::with_options(EvalOptions {
                mode: options.mode,
                ..EvalOptions::default()
            }),
        }
    }

    /// Add a rule; rules keep their definition order.
    pub fn add_rule(&mut self, rule: ProductionRule) -> &mut Self {
        self.rules.push(rule);
        self
    }

    /// Add a rule only if it passes static analysis: the rule's condition
    /// is checked in isolation and the rule is rejected with
    /// [`ReactiveError::StaticRejected`] when the analyzer reports an
    /// `Error`-severity diagnostic (ill-formed reference, unsafe
    /// negation).  Warnings do not block installation; call
    /// [`ProductionEngine::analyze`] to see them.
    pub fn add_rule_checked(&mut self, rule: ProductionRule) -> Result<&mut Self> {
        let analysis = crate::analyze::analyze_production_rules(std::slice::from_ref(&rule), None);
        if !analysis.no_errors() {
            let errors: Vec<String> = analysis
                .diagnostics
                .iter()
                .filter(|d| d.severity == pathlog_core::analysis::Severity::Error)
                .map(|d| d.to_string())
                .collect();
            return Err(ReactiveError::StaticRejected(format!(
                "rule `{}`: {}",
                rule.name,
                errors.join("; ")
            )));
        }
        self.rules.push(rule);
        Ok(self)
    }

    /// Statically analyze the installed rule set: condition safety
    /// diagnostics plus the trigger graph and cascade report over all
    /// rules (see [`crate::analyze`]).  Pass the structure the rules will
    /// run against so its stored facts count as defined keys.
    pub fn analyze(&self, structure: Option<&Structure>) -> pathlog_core::analysis::Analysis {
        crate::analyze::analyze_production_rules(&self.rules, structure)
    }

    /// The rules in definition order.
    pub fn rules(&self) -> &[ProductionRule] {
        &self.rules
    }

    /// The options in use.
    pub fn options(&self) -> &ProductionOptions {
        &self.options
    }

    /// Run recognise–act cycles until no (new) instantiation matches.
    /// Returns statistics; use [`ProductionEngine::run_traced`] to also get
    /// the firing trace.
    pub fn run(&self, structure: &mut Structure) -> Result<ProductionStats> {
        self.run_traced(structure).map(|(stats, _)| stats)
    }

    /// Run recognise–act cycles, returning statistics and the firing trace.
    pub fn run_traced(&self, structure: &mut Structure) -> Result<(ProductionStats, Vec<Firing>)> {
        let mut stats = ProductionStats::default();
        let mut trace = Vec::new();
        let mut fired: Vec<BTreeSet<BindingKey>> = vec![BTreeSet::new(); self.rules.len()];

        // Per-rule condition caches for delta-gated re-matching.
        let bodies: Arc<[Vec<Literal>]> = self
            .rules
            .iter()
            .map(|r| r.condition.clone())
            .collect::<Vec<_>>()
            .into();
        let reads: Vec<BTreeSet<DepKey>> = self
            .rules
            .iter()
            .map(|r| r.condition.iter().flat_map(|l| literal_reads(&l.term)).collect())
            .collect();
        let mut cache: Vec<SortedRun> = vec![Vec::new(); self.rules.len()];
        let mut marks: Vec<Option<EvalMarks>> = vec![None; self.rules.len()];
        // Insertion-log windows are only meaningful across retraction-free
        // spans, and a retraction can both remove solutions (positive
        // literals) and add them (negated literals) — so any retraction
        // since a rule's watermark forces a re-solve.  The counter ticks
        // once per retracting action.
        let mut retractions: usize = 0;
        let mut retract_marks: Vec<usize> = vec![0; self.rules.len()];

        loop {
            if stats.cycles >= self.options.max_cycles {
                return Err(ReactiveError::LimitExceeded(format!(
                    "no quiescence after {} recognise-act cycles",
                    self.options.max_cycles
                )));
            }
            stats.cycles = stats.cycles.saturating_add(1);

            // Recognise: re-solve the rules whose solutions may have
            // changed, as one batch against the frozen structure.
            let now = EvalMarks::capture(structure);
            // The delta windows of this cycle, one per distinct lower
            // watermark (rules last solved in the same cycle share one).
            let mut windows: Vec<(EvalMarks, DeltaView)> = Vec::new();
            let mut dirty: Vec<usize> = Vec::new();
            for r in 0..self.rules.len() {
                let must_solve = match marks[r] {
                    None => true,
                    Some(_) if !self.options.delta_gated => true,
                    Some(_) if retract_marks[r] != retractions => true,
                    Some(lo) if lo == now => false,
                    Some(lo) => {
                        let view = match windows.iter().position(|(m, _)| *m == lo) {
                            Some(i) => &windows[i].1,
                            None => {
                                windows.push((lo, DeltaView::between(structure, &lo, &now)));
                                &windows.last().expect("just pushed").1
                            }
                        };
                        view.has_new_objects()
                            || view.sigs_changed()
                            || reads[r].iter().any(|k| match k {
                                DepKey::Unknown => true,
                                DepKey::Known(name) => structure
                                    .lookup_name(name)
                                    .is_some_and(|oid| view.has_new_facts_for(oid)),
                            })
                    }
                };
                if must_solve {
                    dirty.push(r);
                } else {
                    stats.condition_skips = stats.condition_skips.saturating_add(1);
                    // The skipped window was proven irrelevant to this rule,
                    // so slide its watermark forward: the next cycle's check
                    // stays O(that cycle's delta) instead of re-slicing an
                    // ever-growing window back to the rule's last solve.
                    marks[r] = Some(now);
                }
            }
            if !dirty.is_empty() {
                let tasks = dirty
                    .iter()
                    .map(|&r| ConditionTask {
                        body: r,
                        seed: Bindings::new(),
                    })
                    .collect();
                let runs = self.core.solve_conditions(structure, Arc::clone(&bodies), tasks)?;
                for (&r, run) in dirty.iter().zip(runs) {
                    stats.condition_solves = stats.condition_solves.saturating_add(1);
                    cache[r] = run;
                    marks[r] = Some(now);
                    retract_marks[r] = retractions;
                }
            }

            // Resolve: the first unfired instantiation in canonical
            // priority-then-rule-then-`binding_key` order.  Within a rule's
            // run the keys ascend, so its first unfired entry is its best
            // candidate.
            let mut best: Option<(i64, usize, &BindingKey, &Bindings)> = None;
            for (r, run) in cache.iter().enumerate() {
                let rank = match self.options.conflict_resolution {
                    // Negated so that smaller ranks win for higher priorities.
                    ConflictResolution::Priority => -self.rules[r].priority,
                    ConflictResolution::DefinitionOrder => 0,
                };
                if let Some((key, bindings)) = run
                    .iter()
                    .find(|(key, _)| !(self.options.refractory && fired[r].contains(key)))
                {
                    let better = match &best {
                        None => true,
                        Some((brank, br, bkey, _)) => (rank, r, key) < (*brank, *br, *bkey),
                    };
                    if better {
                        best = Some((rank, r, key, bindings));
                    }
                }
            }
            let Some((_, index, key, bindings)) = best else {
                break; // quiescence
            };
            let (key, bindings) = (key.clone(), bindings.clone());
            let rule = &self.rules[index];

            // Act.
            for action in &rule.actions {
                let effect: ActionEffect = apply_action(structure, action, &bindings, self.options.create_virtuals)?;
                stats.asserted = stats.asserted.saturating_add(effect.asserted);
                stats.retracted = stats.retracted.saturating_add(effect.retracted);
                stats.virtual_objects = stats.virtual_objects.saturating_add(effect.virtual_objects);
                if effect.retracted > 0 {
                    retractions += 1;
                }
            }
            stats.firings = stats.firings.saturating_add(1);
            trace.push(Firing {
                cycle: stats.cycles,
                rule: rule.name.clone(),
                bindings: key.iter().map(|(v, o)| (v.to_string(), Oid(*o))).collect(),
            });
            if self.options.refractory {
                fired[index].insert(key);
            }
        }
        Ok((stats, trace))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pathlog_core::term::{Filter, Term};

    /// Employees with salaries; the rules below classify and adjust them.
    fn payroll() -> Structure {
        let mut s = Structure::new();
        let employee = s.atom("employee");
        let salary = s.atom("salary");
        for (name, pay) in [("ann", 900), ("bob", 1500), ("cleo", 2000)] {
            let p = s.atom(name);
            let v = s.int(pay);
            s.add_isa(p, employee);
            s.assert_scalar(salary, p, &[], v).unwrap();
        }
        // The minimum-wage threshold must exist in the universe for the
        // comparison literal `S.lt@(1000)` to valuate it.
        s.int(1000);
        s
    }

    fn lit(text_term: Term) -> Literal {
        Literal::pos(text_term)
    }

    #[test]
    fn a_simple_rule_fires_once_per_instantiation() {
        let mut s = payroll();
        let mut engine = ProductionEngine::new();
        // IF X : employee THEN assert X : person
        engine.add_rule(ProductionRule::new(
            "classify",
            vec![lit(Term::var("X").isa("employee"))],
            vec![Action::Assert(Term::var("X").isa("person"))],
        ));
        let (stats, trace) = engine.run_traced(&mut s).unwrap();
        assert_eq!(stats.firings, 3, "one firing per employee");
        assert_eq!(stats.asserted, 3);
        assert_eq!(trace.len(), 3);
        assert!(trace.iter().all(|f| f.rule == "classify"));
        let person = s.atom("person");
        assert_eq!(s.instances_of(person).count(), 3);
        // Quiescence: running again fires nothing new thanks to refractoriness
        // (the derived facts still match, but the instantiations are the same).
        let stats2 = engine.run(&mut s).unwrap();
        assert_eq!(stats2.firings, 3, "fresh engine state refires; facts unchanged");
        assert_eq!(stats2.asserted, 0);
    }

    #[test]
    fn priorities_decide_which_rule_fires_first() {
        let mut s = payroll();
        let mut engine = ProductionEngine::new();
        engine.add_rule(
            ProductionRule::new(
                "low",
                vec![lit(Term::var("X").isa("employee"))],
                vec![Action::Assert(Term::var("X").isa("reviewedSecond"))],
            )
            .with_priority(1),
        );
        engine.add_rule(
            ProductionRule::new(
                "high",
                vec![lit(Term::var("X").isa("employee"))],
                vec![Action::Assert(Term::var("X").isa("reviewedFirst"))],
            )
            .with_priority(10),
        );
        let (_, trace) = engine.run_traced(&mut s).unwrap();
        // The first three firings must all be the high-priority rule.
        assert!(trace[..3].iter().all(|f| f.rule == "high"), "{trace:?}");
        assert!(trace[3..].iter().all(|f| f.rule == "low"));
    }

    #[test]
    fn definition_order_strategy_ignores_priorities() {
        let mut s = payroll();
        let mut engine = ProductionEngine::with_options(ProductionOptions {
            conflict_resolution: ConflictResolution::DefinitionOrder,
            ..ProductionOptions::default()
        });
        engine.add_rule(
            ProductionRule::new(
                "first",
                vec![lit(Term::var("X").isa("employee"))],
                vec![Action::Assert(Term::var("X").isa("a"))],
            )
            .with_priority(-5),
        );
        engine.add_rule(
            ProductionRule::new(
                "second",
                vec![lit(Term::var("X").isa("employee"))],
                vec![Action::Assert(Term::var("X").isa("b"))],
            )
            .with_priority(100),
        );
        let (_, trace) = engine.run_traced(&mut s).unwrap();
        assert_eq!(trace[0].rule, "first");
    }

    #[test]
    fn retracting_the_triggering_fact_reaches_quiescence() {
        let mut s = payroll();
        let mut engine = ProductionEngine::new();
        // IF X : employee[salary -> S], S.lt@(1000) THEN
        //   retract X[salary -> S]; assert X[salary -> 1000]   (raise to minimum wage)
        let condition = vec![
            lit(Term::var("X")
                .isa("employee")
                .filter(Filter::scalar("salary", Term::var("S")))),
            lit(Term::var("S").scalar_args("lt", vec![Term::int(1000)])),
        ];
        engine.add_rule(ProductionRule::new(
            "minimum-wage",
            condition,
            vec![
                Action::Retract(Term::var("X").filter(Filter::scalar("salary", Term::var("S")))),
                Action::Assert(Term::var("X").filter(Filter::scalar("salary", Term::int(1000)))),
            ],
        ));
        let stats = engine.run(&mut s).unwrap();
        assert_eq!(stats.firings, 1, "only ann is below minimum wage");
        assert_eq!(stats.retracted, 1);
        assert_eq!(stats.asserted, 1);
        let (salary, ann, thousand) = (s.atom("salary"), s.atom("ann"), s.int(1000));
        assert_eq!(s.apply_scalar(salary, ann, &[]), Some(thousand));
    }

    #[test]
    fn runaway_rule_sets_hit_the_cycle_limit() {
        let mut s = payroll();
        let mut engine = ProductionEngine::with_options(ProductionOptions {
            max_cycles: 5,
            refractory: false, // the same instantiation may fire forever
            ..ProductionOptions::default()
        });
        engine.add_rule(ProductionRule::new(
            "loop",
            vec![lit(Term::var("X").isa("employee"))],
            vec![Action::Assert(Term::var("X").isa("employee"))],
        ));
        let err = engine.run(&mut s).unwrap_err();
        assert!(matches!(err, ReactiveError::LimitExceeded(_)));
    }

    /// A three-phase classification cascade whose later phases stop touching
    /// the earlier phases' read keys — the shape delta gating exploits.
    fn classification_engine(options: ProductionOptions) -> ProductionEngine {
        let mut engine = ProductionEngine::with_options(options);
        engine.add_rule(ProductionRule::new(
            "staff",
            vec![lit(Term::var("X").isa("employee"))],
            vec![Action::Assert(Term::var("X").isa("staff"))],
        ));
        engine.add_rule(ProductionRule::new(
            "low-band",
            vec![
                lit(Term::var("X")
                    .isa("staff")
                    .filter(Filter::scalar("salary", Term::var("S")))),
                lit(Term::var("S").scalar_args("lt", vec![Term::int(1600)])),
            ],
            vec![Action::Assert(Term::var("X").isa("lowBand"))],
        ));
        engine.add_rule(ProductionRule::new(
            "high-band",
            vec![
                lit(Term::var("X")
                    .isa("staff")
                    .filter(Filter::scalar("salary", Term::var("S")))),
                lit(Term::var("S").scalar_args("ge", vec![Term::int(1600)])),
            ],
            vec![Action::Assert(Term::var("X").isa("highBand"))],
        ));
        engine
    }

    /// The payroll structure with the classification threshold interned (a
    /// comparison literal can only valuate constants that exist in the
    /// universe).
    fn payroll_with_threshold() -> Structure {
        let mut s = payroll();
        s.int(1600);
        s
    }

    #[test]
    fn pooled_runs_are_bit_identical_to_sequential_runs() {
        let (seq_stats, seq_trace, seq_dump) = {
            let mut s = payroll_with_threshold();
            let engine = classification_engine(ProductionOptions::default());
            let (stats, trace) = engine.run_traced(&mut s).unwrap();
            (stats, trace, s.canonical_dump())
        };
        assert_eq!(seq_stats.firings, 6, "3 staff + 2 low-band + 1 high-band");
        for workers in [1usize, 2, 4] {
            let mut s = payroll_with_threshold();
            let engine = classification_engine(ProductionOptions {
                mode: EvalMode::Parallel { workers },
                ..ProductionOptions::default()
            });
            let (stats, trace) = engine.run_traced(&mut s).unwrap();
            assert_eq!(stats, seq_stats, "stats must match at {workers} workers");
            assert_eq!(trace, seq_trace, "firing order must match at {workers} workers");
            assert_eq!(s.canonical_dump(), seq_dump, "models must match at {workers} workers");
        }
    }

    #[test]
    fn delta_gating_skips_unaffected_rules_without_changing_the_run() {
        let run = |delta_gated: bool| {
            let mut s = payroll_with_threshold();
            let engine = classification_engine(ProductionOptions {
                delta_gated,
                ..ProductionOptions::default()
            });
            let (stats, trace) = engine.run_traced(&mut s).unwrap();
            (stats, trace, s.canonical_dump())
        };
        let (gated, gated_trace, gated_dump) = run(true);
        let (full, full_trace, full_dump) = run(false);
        assert_eq!(gated.firings, full.firings);
        assert_eq!(gated.asserted, full.asserted);
        assert_eq!(gated_trace, full_trace);
        assert_eq!(gated_dump, full_dump);
        // The full arm re-solves every rule every cycle; the gated arm only
        // re-solves rules whose read keys the last firing touched.
        assert_eq!(full.condition_solves, full.cycles * 3);
        assert_eq!(full.condition_skips, 0);
        assert!(
            gated.condition_solves < full.condition_solves,
            "gating must reduce solves ({} vs {})",
            gated.condition_solves,
            full.condition_solves
        );
        assert!(gated.condition_skips > 0);
    }

    #[test]
    fn retraction_invalidates_cached_conditions() {
        // The minimum-wage rule retracts the fact its own condition reads;
        // gating must re-solve after the retraction or it would refire on
        // the stale cached instantiation.
        for delta_gated in [true, false] {
            let mut s = payroll();
            let mut engine = ProductionEngine::with_options(ProductionOptions {
                delta_gated,
                ..ProductionOptions::default()
            });
            engine.add_rule(ProductionRule::new(
                "minimum-wage",
                vec![
                    lit(Term::var("X")
                        .isa("employee")
                        .filter(Filter::scalar("salary", Term::var("S")))),
                    lit(Term::var("S").scalar_args("lt", vec![Term::int(1000)])),
                ],
                vec![
                    Action::Retract(Term::var("X").filter(Filter::scalar("salary", Term::var("S")))),
                    Action::Assert(Term::var("X").filter(Filter::scalar("salary", Term::int(1000)))),
                ],
            ));
            let stats = engine.run(&mut s).unwrap();
            assert_eq!(stats.firings, 1, "delta_gated={delta_gated}");
        }
    }

    #[test]
    fn stats_merge_saturates() {
        let mut total = ProductionStats {
            cycles: usize::MAX - 1,
            firings: 10,
            ..ProductionStats::default()
        };
        total.merge(&ProductionStats {
            cycles: 5,
            firings: 2,
            condition_solves: 7,
            ..ProductionStats::default()
        });
        assert_eq!(total.cycles, usize::MAX, "saturates instead of overflowing");
        assert_eq!(total.firings, 12);
        assert_eq!(total.condition_solves, 7);
    }

    #[test]
    fn rules_and_engine_expose_their_configuration() {
        let rule = ProductionRule::new(
            "r",
            vec![lit(Term::var("X").isa("employee"))],
            vec![Action::Assert(Term::var("X").isa("person"))],
        )
        .with_priority(7);
        assert!(rule.to_string().contains("IF X : employee THEN assert X : person"));
        assert_eq!(rule.priority, 7);
        let mut engine = ProductionEngine::new();
        engine.add_rule(rule);
        assert_eq!(engine.rules().len(), 1);
        assert_eq!(engine.options().max_cycles, 10_000);
    }
}
