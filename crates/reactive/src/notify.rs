//! Notify streams: push-based observation of an [`ActiveStore`]'s epochs.
//!
//! The serving layer's readers observe an object store through pinned
//! snapshots; an *active* store's observers want the opposite granularity —
//! not "the state as of epoch k" but "what happened during epoch k".  This
//! module is that front: [`ActiveStore::subscribe`] registers a subscriber
//! and returns a [`Subscription`], an async-style receiving end that yields
//! one [`Notification`] per change, per rule firing, and per quiesced (or
//! aborted) cascade — instead of the subscriber polling the structure and
//! diffing dumps.
//!
//! **Epochs.**  Every *external* mutation of the store opens a new epoch
//! (the triggered cascade belongs to the epoch of the mutation that raised
//! it), numbered from 1.  Notifications carry their epoch and cascade round
//! (= depth), so a subscriber can group a stream back into atomic units:
//! an epoch is complete when its [`NotificationKind::Quiescent`] (or
//! [`NotificationKind::Aborted`]) arrives — the per-epoch barrier, carrying
//! the same [`ActiveStats`] the mutating caller got.
//!
//! **Delivery.**  Channels are unbounded ([`std::sync::mpsc`]): the mutating
//! thread never blocks on a slow subscriber, and notifications within one
//! subscription are received in exactly the order the store emitted them
//! (commit order under both cascade schedules — under
//! [`CascadeSchedule::Rounds`](crate::CascadeSchedule::Rounds) that order is
//! bit-identical between sequential and pooled runs, so a notification
//! stream is as reproducible as the structure itself).  A dropped
//! [`Subscription`] is pruned from the store at the next emission; dropping
//! the store ends every stream (the blocking iterator returns `None`).
//!
//! ```
//! use pathlog_core::names::Name;
//! use pathlog_core::structure::Structure;
//! use pathlog_reactive::{ActiveStore, EcaAction, EcaRule, Event, NotificationKind};
//! use pathlog_core::term::Term;
//!
//! let mut store = ActiveStore::new(Structure::new());
//! store.add_rule(EcaRule::new(
//!     "echo",
//!     Event::ScalarAsserted(Name::atom("ping")),
//!     vec![],
//!     vec![EcaAction::AssertScalar {
//!         receiver: Term::var("Receiver"),
//!         method: Name::atom("pong"),
//!         value: Term::var("Value"),
//!     }],
//! ));
//! let sub = store.subscribe();
//! let (ping, a, b) = (store.oid("ping"), store.oid("a"), store.oid("b"));
//! store.assert_scalar(ping, a, b).unwrap();
//! let epoch: Vec<_> = sub.drain();
//! assert_eq!(epoch.first().unwrap().epoch, 1);
//! assert!(matches!(epoch.last().unwrap().kind, NotificationKind::Quiescent { .. }));
//! ```
//!
//! [`ActiveStore`]: crate::ActiveStore
//! [`ActiveStore::subscribe`]: crate::ActiveStore::subscribe

use std::sync::mpsc::{Receiver, RecvTimeoutError, Sender, TryRecvError};
use std::time::Duration;

use crate::active::{ActiveStats, Event};

/// The epoch counter of an active store: external mutation sequence
/// numbers, starting at 1 (0 = nothing has happened yet).  Same width as
/// the serving layer's [`Epoch`](pathlog_core::snapshot::Epoch).
pub type Epoch = pathlog_core::snapshot::Epoch;

/// What a notification reports.
#[derive(Debug, Clone, PartialEq)]
pub enum NotificationKind {
    /// A primitive mutation actually changed the structure (unchanged
    /// mutations — re-asserting an existing fact — emit nothing, mirroring
    /// the trigger semantics).  The event names the mutation kind and the
    /// watched method/class, exactly as a rule would match it.
    Change {
        /// The raised event.
        event: Event,
    },
    /// A rule fired (one notification per rule and condition solution, in
    /// commit order).
    Firing {
        /// The firing rule's name.
        rule: String,
    },
    /// The epoch's cascade ran to quiescence; its aggregate statistics.
    /// This is the last notification of a successful epoch.
    Quiescent {
        /// The same stats the mutating caller received.
        stats: ActiveStats,
    },
    /// The epoch's cascade aborted (depth / firing limit, invalid action).
    /// This is the last notification of a failed epoch.  Whether the
    /// mutations reported before it are still committed follows the
    /// store's [`rollback_on_error`](crate::ActiveOptions::rollback_on_error)
    /// setting.
    Aborted {
        /// The error's display text.
        reason: String,
    },
}

/// One item of a subscription stream.
#[derive(Debug, Clone, PartialEq)]
pub struct Notification {
    /// The external mutation this notification belongs to (1-based).
    pub epoch: Epoch,
    /// The cascade round (= depth) that emitted it: 0 is the external
    /// mutation itself, `n + 1` the mutations triggered by round `n`.
    pub round: usize,
    /// What happened.
    pub kind: NotificationKind,
}

/// The store-side fan-out list.  Deliberately **not** cloned with the store:
/// a clone is a new, independent store, and subscribers subscribed to the
/// original — double delivery from both copies would be an error, so a
/// cloned store starts with no subscribers (mirroring the serving layer's
/// per-store snapshot registry).
#[derive(Debug, Default)]
pub(crate) struct Subscribers {
    senders: Vec<Sender<Notification>>,
}

impl Clone for Subscribers {
    fn clone(&self) -> Self {
        Subscribers::default()
    }
}

impl Subscribers {
    /// Register a new subscriber and return its receiving end.
    pub(crate) fn subscribe(&mut self) -> Subscription {
        let (tx, rx) = std::sync::mpsc::channel();
        self.senders.push(tx);
        Subscription { rx }
    }

    /// Whether anyone is listening (emission is skipped entirely when not —
    /// a subscriber-free store pays one `is_empty` check per mutation).
    pub(crate) fn is_empty(&self) -> bool {
        self.senders.is_empty()
    }

    /// The number of live subscribers as of the last emission.
    pub(crate) fn len(&self) -> usize {
        self.senders.len()
    }

    /// Deliver to every subscriber, pruning the ones that hung up.
    pub(crate) fn emit(&mut self, notification: Notification) {
        self.senders.retain(|s| s.send(notification.clone()).is_ok());
    }
}

/// The receiving end of [`ActiveStore::subscribe`](crate::ActiveStore::subscribe):
/// an unbounded queue of [`Notification`]s in emission order.
///
/// Three consumption styles:
///
/// * **Blocking stream** — [`Subscription`] implements [`Iterator`];
///   `for n in subscription { … }` parks until the next notification and
///   ends when the store is dropped.  This is the async-style front: hand
///   the subscription to a consumer thread and iterate.
/// * **Bounded wait** — [`Subscription::next_timeout`] parks up to a
///   deadline.
/// * **Poll-free drain** — [`Subscription::try_next`] / [`Subscription::drain`]
///   take whatever is already queued without blocking.
///
/// Dropping a subscription unsubscribes: the store prunes the dead channel
/// at its next emission.
#[derive(Debug)]
pub struct Subscription {
    rx: Receiver<Notification>,
}

impl Subscription {
    /// The next queued notification, or `None` when the queue is currently
    /// empty **or** the store is gone.  Never blocks.
    pub fn try_next(&self) -> Option<Notification> {
        match self.rx.try_recv() {
            Ok(n) => Some(n),
            Err(TryRecvError::Empty) | Err(TryRecvError::Disconnected) => None,
        }
    }

    /// The next notification, waiting up to `timeout` for one to arrive.
    /// `None` means the deadline passed or the store is gone.
    pub fn next_timeout(&self, timeout: Duration) -> Option<Notification> {
        match self.rx.recv_timeout(timeout) {
            Ok(n) => Some(n),
            Err(RecvTimeoutError::Timeout) | Err(RecvTimeoutError::Disconnected) => None,
        }
    }

    /// Everything currently queued, without blocking.
    pub fn drain(&self) -> Vec<Notification> {
        let mut all = Vec::new();
        while let Some(n) = self.try_next() {
            all.push(n);
        }
        all
    }

    /// Block until one full epoch has been received: drains notifications
    /// (waiting up to `timeout` for *each*) until a [`NotificationKind::Quiescent`]
    /// or [`NotificationKind::Aborted`] barrier arrives, and returns the
    /// epoch's notifications including the barrier.  `None` if the barrier
    /// did not arrive in time (already-received items stay consumed).
    pub fn next_epoch(&self, timeout: Duration) -> Option<Vec<Notification>> {
        let mut epoch = Vec::new();
        loop {
            let n = self.next_timeout(timeout)?;
            let done = matches!(
                n.kind,
                NotificationKind::Quiescent { .. } | NotificationKind::Aborted { .. }
            );
            epoch.push(n);
            if done {
                return Some(epoch);
            }
        }
    }
}

impl Iterator for Subscription {
    type Item = Notification;

    /// Park until the next notification; `None` ends the stream (the store
    /// was dropped and the queue is drained).
    fn next(&mut self) -> Option<Notification> {
        self.rx.recv().ok()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::active::{ActiveOptions, ActiveStore, CascadeSchedule, EcaAction, EcaRule};
    use pathlog_core::names::Name;
    use pathlog_core::structure::Structure;
    use pathlog_core::term::Term;

    fn chain_store(levels: usize, schedule: CascadeSchedule) -> ActiveStore {
        let mut store = ActiveStore::with_options(
            Structure::new(),
            ActiveOptions {
                schedule,
                ..ActiveOptions::default()
            },
        );
        for k in 0..levels {
            store.add_rule(EcaRule::new(
                format!("link-{k}"),
                Event::ScalarAsserted(Name::atom(format!("c{k}"))),
                vec![],
                vec![EcaAction::AssertScalar {
                    receiver: Term::var("Receiver"),
                    method: Name::atom(format!("c{}", k + 1)),
                    value: Term::var("Value"),
                }],
            ));
        }
        store
    }

    #[test]
    fn an_epoch_streams_changes_firings_and_a_quiescent_barrier() {
        for schedule in [CascadeSchedule::Immediate, CascadeSchedule::Rounds] {
            let mut store = chain_store(2, schedule);
            let sub = store.subscribe();
            let (c0, a, b) = (store.oid("c0"), store.oid("a"), store.oid("b"));
            let stats = store.assert_scalar(c0, a, b).unwrap();

            let epoch = sub.next_epoch(Duration::from_secs(5)).expect("epoch completes");
            assert!(epoch.iter().all(|n| n.epoch == 1), "{schedule:?}: one epoch");
            let changes = epoch
                .iter()
                .filter(|n| matches!(n.kind, NotificationKind::Change { .. }))
                .count();
            let firings = epoch
                .iter()
                .filter(|n| matches!(n.kind, NotificationKind::Firing { .. }))
                .count();
            assert_eq!(changes, 3, "{schedule:?}: external + 2 triggered mutations");
            assert_eq!(firings, 2, "{schedule:?}: each link fires once");
            match &epoch.last().unwrap().kind {
                NotificationKind::Quiescent { stats: s } => assert_eq!(*s, stats, "{schedule:?}"),
                other => panic!("{schedule:?}: expected Quiescent barrier, got {other:?}"),
            }
            // rounds stamp the cascade depth
            let max_round = epoch.iter().map(|n| n.round).max().unwrap();
            assert_eq!(max_round, 2, "{schedule:?}: deepest triggered round");
        }
    }

    #[test]
    fn sequential_and_pooled_rounds_emit_identical_streams() {
        use pathlog_core::engine::EvalMode;
        let run = |mode| {
            let mut store = ActiveStore::with_options(
                Structure::new(),
                ActiveOptions {
                    schedule: CascadeSchedule::Rounds,
                    mode,
                    ..ActiveOptions::default()
                },
            );
            for k in 0..3 {
                store.add_rule(EcaRule::new(
                    format!("link-{k}"),
                    Event::ScalarAsserted(Name::atom(format!("c{k}"))),
                    vec![],
                    vec![EcaAction::AssertScalar {
                        receiver: Term::var("Receiver"),
                        method: Name::atom(format!("c{}", k + 1)),
                        value: Term::var("Value"),
                    }],
                ));
            }
            let sub = store.subscribe();
            let (c0, a, b) = (store.oid("c0"), store.oid("a"), store.oid("b"));
            store.assert_scalar(c0, a, b).unwrap();
            sub.drain()
        };
        let sequential = run(EvalMode::Sequential);
        for workers in [2usize, 4] {
            assert_eq!(
                run(EvalMode::Parallel { workers }),
                sequential,
                "streams must be bit-identical at {workers} workers"
            );
        }
    }

    #[test]
    fn epochs_number_external_mutations() {
        let mut store = chain_store(1, CascadeSchedule::Immediate);
        let sub = store.subscribe();
        let (c0, a, b, c) = (store.oid("c0"), store.oid("a"), store.oid("b"), store.oid("c"));
        store.assert_scalar(c0, a, b).unwrap();
        store.assert_scalar(c0, c, b).unwrap();
        let first = sub.next_epoch(Duration::from_secs(5)).unwrap();
        let second = sub.next_epoch(Duration::from_secs(5)).unwrap();
        assert!(first.iter().all(|n| n.epoch == 1));
        assert!(second.iter().all(|n| n.epoch == 2));
    }

    #[test]
    fn unchanged_mutations_emit_no_change_notifications() {
        let mut store = chain_store(0, CascadeSchedule::Immediate);
        let sub = store.subscribe();
        let (v, m, a1) = (store.oid("vehicles"), store.oid("mary"), store.oid("a1"));
        store.add_set_member(v, m, a1).unwrap();
        store.add_set_member(v, m, a1).unwrap(); // no-op re-add
        let all = sub.drain();
        let changes = all
            .iter()
            .filter(|n| matches!(n.kind, NotificationKind::Change { .. }))
            .count();
        assert_eq!(changes, 1, "the no-op re-add is silent");
        // both epochs still close with a barrier
        let barriers: Vec<Epoch> = all
            .iter()
            .filter(|n| matches!(n.kind, NotificationKind::Quiescent { .. }))
            .map(|n| n.epoch)
            .collect();
        assert_eq!(barriers, vec![1, 2]);
    }

    #[test]
    fn aborted_cascades_end_the_epoch_with_the_error() {
        let mut store = ActiveStore::with_options(
            Structure::new(),
            ActiveOptions {
                max_cascade_depth: 2,
                ..ActiveOptions::default()
            },
        );
        for k in 0..4 {
            store.add_rule(EcaRule::new(
                format!("link-{k}"),
                Event::ScalarAsserted(Name::atom(format!("c{k}"))),
                vec![],
                vec![EcaAction::AssertScalar {
                    receiver: Term::var("Receiver"),
                    method: Name::atom(format!("c{}", k + 1)),
                    value: Term::var("Value"),
                }],
            ));
        }
        let sub = store.subscribe();
        let (c0, a, b) = (store.oid("c0"), store.oid("a"), store.oid("b"));
        assert!(store.assert_scalar(c0, a, b).is_err());
        let epoch = sub.next_epoch(Duration::from_secs(5)).expect("abort closes the epoch");
        match &epoch.last().unwrap().kind {
            NotificationKind::Aborted { reason } => assert!(reason.contains("depth")),
            other => panic!("expected Aborted barrier, got {other:?}"),
        }
    }

    #[test]
    fn dropped_subscriptions_are_pruned_and_store_drop_ends_streams() {
        let mut store = chain_store(0, CascadeSchedule::Immediate);
        let kept = store.subscribe();
        let dropped = store.subscribe();
        assert_eq!(store.subscriber_count(), 2);
        drop(dropped);
        let (c0, a, b) = (store.oid("c0"), store.oid("a"), store.oid("b"));
        store.assert_scalar(c0, a, b).unwrap();
        assert_eq!(store.subscriber_count(), 1, "dead channel pruned at emission");

        // the blocking iterator ends when the store goes away
        drop(store);
        let received: Vec<Notification> = kept.collect();
        assert!(
            received
                .iter()
                .any(|n| matches!(n.kind, NotificationKind::Change { .. })),
            "queued items are still delivered after the store is gone"
        );
    }

    #[test]
    fn cloned_stores_start_with_no_subscribers() {
        let mut store = chain_store(0, CascadeSchedule::Immediate);
        let sub = store.subscribe();
        let mut copy = store.clone();
        assert_eq!(copy.subscriber_count(), 0);
        let (c0, a, b) = (copy.oid("c0"), copy.oid("a"), copy.oid("b"));
        copy.assert_scalar(c0, a, b).unwrap();
        assert!(sub.try_next().is_none(), "the clone's mutations are not delivered");
    }

    #[test]
    fn a_consumer_thread_streams_notifications_concurrently() {
        let mut store = chain_store(1, CascadeSchedule::Rounds);
        let sub = store.subscribe();
        let consumer = std::thread::spawn(move || {
            let mut barriers = 0usize;
            for n in sub {
                if matches!(n.kind, NotificationKind::Quiescent { .. }) {
                    barriers += 1;
                }
            }
            barriers
        });
        let c0 = store.oid("c0");
        for i in 0..5 {
            let receiver = store.oid(&format!("r{i}"));
            let v = store.int(i);
            store.assert_scalar(c0, receiver, v).unwrap();
        }
        drop(store);
        assert_eq!(consumer.join().unwrap(), 5, "one barrier per external mutation");
    }
}
