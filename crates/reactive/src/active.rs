//! Active rules: event–condition–action triggers over a semantic structure.
//!
//! The second "other kind of rule language" the paper mentions.  An
//! [`ActiveStore`] wraps a [`Structure`]; every primitive mutation performed
//! through the store is an *event*.  Each [`EcaRule`] names the event kind it
//! reacts to, a PathLog body as its *condition*, and a list of mutation
//! templates as its *action*.  Actions are themselves primitive mutations, so
//! they can trigger further rules; cascades are bounded by
//! [`ActiveOptions::max_cascade_depth`] and
//! [`ActiveOptions::max_total_firings`].
//!
//! When a rule fires, the event's participants are available to the condition
//! and action terms through reserved variables:
//!
//! | event | bound variables |
//! |---|---|
//! | scalar asserted / retracted | `Receiver`, `Value` |
//! | set member added / removed | `Receiver`, `Member` |
//! | class membership added | `Object`, `Class` |

//! **Scheduling.**  Two cascade schedules are available
//! ([`ActiveOptions::schedule`]):
//!
//! * [`CascadeSchedule::Immediate`] (the default) — the classic depth-first
//!   semantics: a rule's actions are applied (and their cascades run to
//!   completion) before the next rule of the same event even solves its
//!   condition, so rules can chain within one event in priority order.
//! * [`CascadeSchedule::Rounds`] — breadth-first snapshot rounds: all
//!   mutations of one cascade level are applied first, then *every*
//!   candidate `(rule, event seed)` condition of the level is solved as one
//!   [`ConditionBatch`](pathlog_core::engine::ConditionBatch) against the
//!   frozen structure — fanned over the shared persistent worker pool when
//!   [`ActiveOptions::mode`] is parallel — and matches commit in canonical
//!   (event, priority, rule, `binding_key`) order, their actions forming the
//!   next level.  Pooled runs are **bit-identical** to sequential runs of
//!   the same schedule (same firings, stats and structure); the two
//!   schedules themselves agree whenever no two rules matching the *same*
//!   event interact, and differ exactly where Gauss–Seidel and Jacobi
//!   iteration would.
//!
//! **Errors and partial commits.**  A cascade that exceeds
//! [`ActiveOptions::max_cascade_depth`] or
//! [`ActiveOptions::max_total_firings`] (or whose action fails to valuate)
//! aborts with an error **after** some mutations have been applied: by
//! default the store keeps everything committed before the error (partial
//! commit — see [`ReactiveError::LimitExceeded`]).  Set
//! [`ActiveOptions::rollback_on_error`] to restore the pre-mutation
//! structure instead (one structure clone per external mutation).

use std::fmt;
use std::sync::Arc;

use pathlog_core::engine::{solve_body, ConditionTask, Engine, EvalMode, EvalOptions};
use pathlog_core::names::{Name, Var};
use pathlog_core::program::Literal;
use pathlog_core::semantics::{valuate, Bindings};
use pathlog_core::structure::{Oid, Structure};
use pathlog_core::term::Term;

use crate::error::{ReactiveError, Result};
use crate::notify::{Epoch, Notification, NotificationKind, Subscribers, Subscription};

/// The kind of primitive mutation an ECA rule reacts to.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Event {
    /// A scalar fact for the named method was asserted.
    ScalarAsserted(Name),
    /// A scalar fact for the named method was retracted.
    ScalarRetracted(Name),
    /// A member was added to a set-valued fact of the named method.
    SetMemberAdded(Name),
    /// A member was removed from a set-valued fact of the named method.
    SetMemberRemoved(Name),
    /// An object became a member of the named class.
    ClassAdded(Name),
}

impl Event {
    /// The method/class name the event watches.
    pub fn name(&self) -> &Name {
        match self {
            Event::ScalarAsserted(n)
            | Event::ScalarRetracted(n)
            | Event::SetMemberAdded(n)
            | Event::SetMemberRemoved(n)
            | Event::ClassAdded(n) => n,
        }
    }
}

impl fmt::Display for Event {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Event::ScalarAsserted(n) => write!(f, "on assert {n} ->"),
            Event::ScalarRetracted(n) => write!(f, "on retract {n} ->"),
            Event::SetMemberAdded(n) => write!(f, "on add {n} ->>"),
            Event::SetMemberRemoved(n) => write!(f, "on remove {n} ->>"),
            Event::ClassAdded(n) => write!(f, "on classify : {n}"),
        }
    }
}

/// An action template: a primitive mutation whose participants are PathLog
/// references evaluated under the rule's bindings.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum EcaAction {
    /// Assert `receiver[method -> value]`.
    AssertScalar {
        /// The receiver reference.
        receiver: Term,
        /// The method name.
        method: Name,
        /// The value reference.
        value: Term,
    },
    /// Assert `member ∈ receiver..method`.
    AddSetMember {
        /// The receiver reference.
        receiver: Term,
        /// The method name.
        method: Name,
        /// The member reference.
        member: Term,
    },
    /// Assert `object : class`.
    AddIsA {
        /// The object reference.
        object: Term,
        /// The class name.
        class: Name,
    },
    /// Retract the scalar fact `receiver[method -> _]`.
    RetractScalar {
        /// The receiver reference.
        receiver: Term,
        /// The method name.
        method: Name,
    },
    /// Retract `member` from `receiver..method`.
    RemoveSetMember {
        /// The receiver reference.
        receiver: Term,
        /// The method name.
        method: Name,
        /// The member reference.
        member: Term,
    },
}

impl fmt::Display for EcaAction {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            EcaAction::AssertScalar {
                receiver,
                method,
                value,
            } => write!(f, "assert {receiver}[{method} -> {value}]"),
            EcaAction::AddSetMember {
                receiver,
                method,
                member,
            } => {
                write!(f, "assert {receiver}[{method} ->> {{{member}}}]")
            }
            EcaAction::AddIsA { object, class } => write!(f, "assert {object} : {class}"),
            EcaAction::RetractScalar { receiver, method } => write!(f, "retract {receiver}.{method}"),
            EcaAction::RemoveSetMember {
                receiver,
                method,
                member,
            } => {
                write!(f, "retract {member} from {receiver}..{method}")
            }
        }
    }
}

/// One event–condition–action rule.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct EcaRule {
    /// A name used in traces and errors.
    pub name: String,
    /// The triggering event.
    pub event: Event,
    /// The condition: a PathLog body, evaluated with the event's reserved
    /// variables pre-bound.  An empty condition always holds.
    pub condition: Vec<Literal>,
    /// The actions, applied for every solution of the condition.
    pub actions: Vec<EcaAction>,
    /// Higher priorities run first when several rules match one event.
    pub priority: i64,
}

impl EcaRule {
    /// A rule with priority 0.
    pub fn new(name: impl Into<String>, event: Event, condition: Vec<Literal>, actions: Vec<EcaAction>) -> Self {
        EcaRule {
            name: name.into(),
            event,
            condition,
            actions,
            priority: 0,
        }
    }

    /// Set the priority.
    pub fn with_priority(mut self, priority: i64) -> Self {
        self.priority = priority;
        self
    }
}

impl fmt::Display for EcaRule {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}: {} ", self.name, self.event)?;
        if !self.condition.is_empty() {
            write!(f, "IF ")?;
            for (i, l) in self.condition.iter().enumerate() {
                if i > 0 {
                    write!(f, ", ")?;
                }
                write!(f, "{l}")?;
            }
            write!(f, " ")?;
        }
        write!(f, "DO ")?;
        for (i, a) in self.actions.iter().enumerate() {
            if i > 0 {
                write!(f, "; ")?;
            }
            write!(f, "{a}")?;
        }
        Ok(())
    }
}

/// How trigger cascades are scheduled (see the module docs).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum CascadeSchedule {
    /// Depth-first, immediate application (the default): each firing's
    /// actions — and their entire cascades — run before the next rule of
    /// the same event solves its condition (Gauss–Seidel style; rules can
    /// chain within one event).
    #[default]
    Immediate,
    /// Breadth-first snapshot rounds: one cascade level's mutations apply,
    /// then every candidate condition of the level is solved as one batch
    /// against the frozen structure (Jacobi style; the batch is what the
    /// worker pool parallelises).
    Rounds,
}

/// Options of the active store.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ActiveOptions {
    /// Maximum trigger cascade depth.  The external mutation runs at
    /// depth 0; a mutation performed by an action runs one level below its
    /// trigger, so `max_cascade_depth = N` permits exactly `N` levels of
    /// *triggered* mutations ([`ActiveStats::max_depth_reached`] can reach
    /// `N`) and the first mutation at depth `N + 1` aborts the cascade.
    /// With `N = 0` only the external mutation may change the structure —
    /// rules still fire on it, but any action that performs a mutation
    /// errors.
    pub max_cascade_depth: usize,
    /// Maximum number of rule firings for a single external mutation.
    pub max_total_firings: usize,
    /// How cascades are scheduled (depth-first immediate, or batchable
    /// breadth-first rounds).
    pub schedule: CascadeSchedule,
    /// How a round's condition batch is executed under
    /// [`CascadeSchedule::Rounds`]: inline, or fanned over the shared
    /// persistent worker pool.  Ignored by the immediate schedule (its
    /// solves are inherently serial).  Pooled runs are bit-identical to
    /// sequential runs of the rounds schedule.
    pub mode: EvalMode,
    /// Restore the pre-mutation structure when a cascade errors (depth /
    /// firing limit, invalid action) instead of keeping the partially
    /// committed mutations.  Costs one structure clone per external
    /// mutation; see the module docs.
    pub rollback_on_error: bool,
}

impl Default for ActiveOptions {
    fn default() -> Self {
        ActiveOptions {
            max_cascade_depth: 32,
            max_total_firings: 100_000,
            schedule: CascadeSchedule::Immediate,
            mode: EvalMode::Sequential,
            rollback_on_error: false,
        }
    }
}

/// Statistics of one external mutation (including its cascade).  Counters
/// saturate instead of wrapping, so aggregating many mutations (see
/// [`ActiveStats::merge`]) cannot overflow in debug builds.
#[derive(Debug, Default, Clone, Copy, PartialEq, Eq)]
pub struct ActiveStats {
    /// Rule firings (one per rule and condition solution).
    pub firings: usize,
    /// Primitive mutations that actually changed the structure.
    pub mutations: usize,
    /// The deepest cascade level reached (0 = only the external mutation).
    pub max_depth_reached: usize,
}

impl ActiveStats {
    /// Fold the counters of another mutation into this one: `firings` and
    /// `mutations` sum with saturating arithmetic, `max_depth_reached`
    /// takes the maximum — so a batch of mutations aggregates without
    /// overflow panics in debug builds, mirroring
    /// [`EvalStats::merge`](pathlog_core::engine::EvalStats::merge).
    pub fn merge(&mut self, other: &ActiveStats) {
        self.firings = self.firings.saturating_add(other.firings);
        self.mutations = self.mutations.saturating_add(other.mutations);
        self.max_depth_reached = self.max_depth_reached.max(other.max_depth_reached);
    }
}

/// A structure wrapped with ECA triggers.
///
/// The embedded deductive [`Engine`] carries the executor configuration for
/// [`CascadeSchedule::Rounds`]: in parallel mode its persistent worker pool
/// is created lazily on the first batched round and reused across
/// mutations and clones.
#[derive(Debug, Clone, Default)]
pub struct ActiveStore {
    structure: Structure,
    rules: Vec<EcaRule>,
    options: ActiveOptions,
    core: Engine,
    /// Condition bodies shared with the executor, built lazily from `rules`
    /// and invalidated by [`ActiveStore::add_rule`] (the rule set cannot
    /// change mid-cascade, so one Arc serves every round of every
    /// mutation).
    condition_bodies: Option<Arc<[Vec<Literal>]>>,
    /// Notify-stream fan-out (see [`crate::notify`]).  Not cloned with the
    /// store: a clone is an independent store and starts unobserved.
    subscribers: Subscribers,
    /// External mutation sequence number; every external mutation —
    /// successful or not — opens the next epoch.
    epoch: Epoch,
}

impl ActiveStore {
    /// Wrap an existing structure.
    pub fn new(structure: Structure) -> Self {
        Self::with_options(structure, ActiveOptions::default())
    }

    /// Wrap a structure with the given options.
    pub fn with_options(structure: Structure, options: ActiveOptions) -> Self {
        ActiveStore {
            structure,
            rules: Vec::new(),
            options,
            core: Engine::with_options(EvalOptions {
                mode: options.mode,
                ..EvalOptions::default()
            }),
            condition_bodies: None,
            subscribers: Subscribers::default(),
            epoch: 0,
        }
    }

    /// Register a trigger.
    pub fn add_rule(&mut self, rule: EcaRule) -> &mut Self {
        self.rules.push(rule);
        self.condition_bodies = None;
        self
    }

    /// Add a rule only if it passes static analysis: the rule's condition
    /// is checked in isolation and the rule is rejected with
    /// [`ReactiveError::StaticRejected`] when the analyzer reports an
    /// `Error`-severity diagnostic.  Warnings — including the cascade
    /// warnings the *combined* rule set may raise — do not block
    /// installation; call [`ActiveStore::analyze`] to see them.
    pub fn add_rule_checked(&mut self, rule: EcaRule) -> Result<&mut Self> {
        let analysis =
            crate::analyze::analyze_eca_rules(std::slice::from_ref(&rule), self.options.max_cascade_depth, None);
        if !analysis.no_errors() {
            let errors: Vec<String> = analysis
                .diagnostics
                .iter()
                .filter(|d| d.severity == pathlog_core::analysis::Severity::Error)
                .map(|d| d.to_string())
                .collect();
            return Err(ReactiveError::StaticRejected(format!(
                "rule `{}`: {}",
                rule.name,
                errors.join("; ")
            )));
        }
        self.add_rule(rule);
        Ok(self)
    }

    /// Statically analyze the installed rule set against this store's
    /// structure and [`ActiveOptions::max_cascade_depth`]: condition
    /// safety, the trigger graph, cascade cycles (PL010) and whether the
    /// static cascade bound exceeds the configured limit (PL011).  A
    /// cascade diagnosed here statically is one [`ReactiveError::LimitExceeded`]
    /// would otherwise only catch at runtime, mid-mutation.
    pub fn analyze(&self) -> pathlog_core::analysis::Analysis {
        crate::analyze::analyze_eca_rules(&self.rules, self.options.max_cascade_depth, Some(&self.structure))
    }

    /// The cached condition-body slice the executor's batches index into.
    fn condition_bodies(&mut self) -> Arc<[Vec<Literal>]> {
        if self.condition_bodies.is_none() {
            self.condition_bodies = Some(
                self.rules
                    .iter()
                    .map(|r| r.condition.clone())
                    .collect::<Vec<_>>()
                    .into(),
            );
        }
        Arc::clone(self.condition_bodies.as_ref().expect("just built"))
    }

    /// The registered triggers.
    pub fn rules(&self) -> &[EcaRule] {
        &self.rules
    }

    // ---------------------------------------------------------- notification

    /// Register a notify-stream subscriber: every subsequent epoch's
    /// changes, firings and quiescent/aborted barrier are pushed to the
    /// returned [`Subscription`] instead of the subscriber polling the
    /// structure (see [`crate::notify`] for the stream contract).  Dropping
    /// the subscription unsubscribes.
    pub fn subscribe(&mut self) -> Subscription {
        self.subscribers.subscribe()
    }

    /// The number of live subscribers as of the last emission.
    pub fn subscriber_count(&self) -> usize {
        self.subscribers.len()
    }

    /// The current epoch: how many external mutations this store has run
    /// (successfully or not).  0 before the first mutation.
    pub fn epoch(&self) -> Epoch {
        self.epoch
    }

    /// Fan a notification out to the subscribers (free when there are
    /// none).
    fn notify(&mut self, round: usize, kind: NotificationKind) {
        if self.subscribers.is_empty() {
            return;
        }
        self.subscribers.emit(Notification {
            epoch: self.epoch,
            round,
            kind,
        });
    }

    /// The public event a `(kind, method)` pair raises, for change
    /// notifications; `None` for anonymous methods (which no rule — and no
    /// subscriber — can name).
    fn public_event(&self, kind: EventKind, method: Oid) -> Option<Event> {
        let name = self.structure.name_of(method)?.clone();
        Some(match kind {
            EventKind::ScalarAsserted => Event::ScalarAsserted(name),
            EventKind::ScalarRetracted => Event::ScalarRetracted(name),
            EventKind::SetMemberAdded => Event::SetMemberAdded(name),
            EventKind::SetMemberRemoved => Event::SetMemberRemoved(name),
            EventKind::ClassAdded => Event::ClassAdded(name),
        })
    }

    /// Emit a change notification for a committed mutation's event.
    fn notify_change(&mut self, round: usize, kind: EventKind, method: Oid) {
        if self.subscribers.is_empty() {
            return;
        }
        if let Some(event) = self.public_event(kind, method) {
            self.notify(round, NotificationKind::Change { event });
        }
    }

    /// Read access to the wrapped structure.
    pub fn structure(&self) -> &Structure {
        &self.structure
    }

    /// Unwrap the structure.
    pub fn into_structure(self) -> Structure {
        self.structure
    }

    /// Intern a name (no event fires for this).
    pub fn oid(&mut self, name: &str) -> Oid {
        self.structure.atom(name)
    }

    /// Intern an integer (no event fires for this).
    pub fn int(&mut self, value: i64) -> Oid {
        self.structure.int(value)
    }

    // ------------------------------------------------------------- mutations

    /// Assert a scalar fact, firing matching triggers.
    pub fn assert_scalar(&mut self, method: Oid, receiver: Oid, result: Oid) -> Result<ActiveStats> {
        self.run_external(Mutation::AssertScalar {
            method,
            receiver,
            result,
        })
    }

    /// Retract a scalar fact, firing matching triggers.
    pub fn retract_scalar(&mut self, method: Oid, receiver: Oid) -> Result<ActiveStats> {
        self.run_external(Mutation::RetractScalar { method, receiver })
    }

    /// Add a set member, firing matching triggers.
    pub fn add_set_member(&mut self, method: Oid, receiver: Oid, member: Oid) -> Result<ActiveStats> {
        self.run_external(Mutation::AddSetMember {
            method,
            receiver,
            member,
        })
    }

    /// Remove a set member, firing matching triggers.
    pub fn remove_set_member(&mut self, method: Oid, receiver: Oid, member: Oid) -> Result<ActiveStats> {
        self.run_external(Mutation::RemoveSetMember {
            method,
            receiver,
            member,
        })
    }

    /// Add a class membership, firing matching triggers.
    pub fn add_isa(&mut self, object: Oid, class: Oid) -> Result<ActiveStats> {
        self.run_external(Mutation::AddIsA { object, class })
    }

    // -------------------------------------------------------------- internal

    /// Run one external mutation and its cascade under the configured
    /// schedule.  On error the structure keeps the mutations committed
    /// before the failure (partial commit) unless
    /// [`ActiveOptions::rollback_on_error`] restores the snapshot taken
    /// here.
    fn run_external(&mut self, mutation: Mutation) -> Result<ActiveStats> {
        self.epoch = self.epoch.saturating_add(1);
        let snapshot = self.options.rollback_on_error.then(|| self.structure.clone());
        let mut stats = ActiveStats::default();
        let result = match self.options.schedule {
            CascadeSchedule::Immediate => self.mutate(mutation, 0, &mut stats),
            CascadeSchedule::Rounds => self.mutate_rounds(mutation, &mut stats),
        };
        match result {
            Ok(()) => {
                self.notify(stats.max_depth_reached, NotificationKind::Quiescent { stats });
                Ok(stats)
            }
            Err(e) => {
                if let Some(saved) = snapshot {
                    self.structure = saved;
                }
                self.notify(
                    stats.max_depth_reached,
                    NotificationKind::Aborted { reason: e.to_string() },
                );
                Err(e)
            }
        }
    }

    /// Apply one primitive mutation.  Returns whether the structure actually
    /// changed, the event seed bindings, and the watched (kind, method/class)
    /// pair — shared by both cascade schedules.
    fn apply_mutation(&mut self, mutation: Mutation) -> Result<(bool, Bindings, (EventKind, Oid))> {
        Ok(match mutation {
            Mutation::AssertScalar {
                method,
                receiver,
                result,
            } => {
                let changed = self.structure.assert_scalar(method, receiver, &[], result)?.is_new();
                (
                    changed,
                    seed_scalar(receiver, result),
                    (EventKind::ScalarAsserted, method),
                )
            }
            Mutation::RetractScalar { method, receiver } => {
                match self.structure.retract_scalar(method, receiver, &[]) {
                    Some(old) => (true, seed_scalar(receiver, old), (EventKind::ScalarRetracted, method)),
                    None => (false, Bindings::new(), (EventKind::ScalarRetracted, method)),
                }
            }
            Mutation::AddSetMember {
                method,
                receiver,
                member,
            } => {
                let changed = self.structure.assert_set_member(method, receiver, &[], member).is_new();
                (
                    changed,
                    seed_member(receiver, member),
                    (EventKind::SetMemberAdded, method),
                )
            }
            Mutation::RemoveSetMember {
                method,
                receiver,
                member,
            } => {
                let changed = self.structure.retract_set_member(method, receiver, &[], member);
                (
                    changed,
                    seed_member(receiver, member),
                    (EventKind::SetMemberRemoved, method),
                )
            }
            Mutation::AddIsA { object, class } => {
                let changed = self.structure.add_isa(object, class);
                (changed, seed_isa(object, class), (EventKind::ClassAdded, class))
            }
        })
    }

    /// The rule indices matching `(kind, method)`, in firing order
    /// (priority descending, then definition order).
    fn matching_rules(&self, kind: EventKind, method: Oid) -> Vec<usize> {
        let Some(watched_name) = self.structure.name_of(method) else {
            return Vec::new();
        };
        let mut matching: Vec<usize> = self
            .rules
            .iter()
            .enumerate()
            .filter(|(_, r)| event_matches(&r.event, kind, watched_name))
            .map(|(i, _)| i)
            .collect();
        matching.sort_by_key(|&i| (-self.rules[i].priority, i));
        matching
    }

    /// The depth-first immediate schedule (see the module docs).
    fn mutate(&mut self, mutation: Mutation, depth: usize, stats: &mut ActiveStats) -> Result<()> {
        if depth > self.options.max_cascade_depth {
            return Err(ReactiveError::LimitExceeded(format!(
                "trigger cascade exceeded depth {}",
                self.options.max_cascade_depth
            )));
        }
        stats.max_depth_reached = stats.max_depth_reached.max(depth);

        // 1. Apply the primitive mutation; only real changes raise events
        // (and change notifications).
        let (changed, seed, watched) = self.apply_mutation(mutation)?;
        if !changed {
            return Ok(());
        }
        stats.mutations = stats.mutations.saturating_add(1);
        self.notify_change(depth, watched.0, watched.1);

        // 2. Fire each matching rule for every solution of its condition.
        for index in self.matching_rules(watched.0, watched.1) {
            let rule = self.rules[index].clone();
            let solutions = solve_body(&self.structure, &rule.condition, &seed)?;
            for solution in solutions {
                stats.firings = stats.firings.saturating_add(1);
                if stats.firings > self.options.max_total_firings {
                    return Err(ReactiveError::LimitExceeded(format!(
                        "more than {} trigger firings for one mutation",
                        self.options.max_total_firings
                    )));
                }
                self.notify(
                    depth,
                    NotificationKind::Firing {
                        rule: rule.name.clone(),
                    },
                );
                for action in &rule.actions {
                    let next = self.compile_action(action, &solution)?;
                    self.mutate(next, depth + 1, stats)?;
                }
            }
        }
        Ok(())
    }

    /// The breadth-first snapshot-rounds schedule (see the module docs):
    /// round `d` applies every depth-`d` mutation, batch-solves every
    /// candidate condition of the raised events against the frozen
    /// structure on the shared executor, and commits the matches — their
    /// actions become round `d + 1`.
    fn mutate_rounds(&mut self, external: Mutation, stats: &mut ActiveStats) -> Result<()> {
        let bodies = self.condition_bodies();
        let mut queue: Vec<Mutation> = vec![external];
        let mut depth = 0usize;
        while !queue.is_empty() {
            if depth > self.options.max_cascade_depth {
                return Err(ReactiveError::LimitExceeded(format!(
                    "trigger cascade exceeded depth {}",
                    self.options.max_cascade_depth
                )));
            }
            stats.max_depth_reached = stats.max_depth_reached.max(depth);

            // 1. Apply the round's mutations; real changes raise events in
            // application order.
            let mut events: Vec<(EventKind, Oid, Bindings)> = Vec::new();
            for mutation in std::mem::take(&mut queue) {
                let (changed, seed, watched) = self.apply_mutation(mutation)?;
                if changed {
                    stats.mutations = stats.mutations.saturating_add(1);
                    self.notify_change(depth, watched.0, watched.1);
                    events.push((watched.0, watched.1, seed));
                }
            }

            // 2. The round's candidates: every (event, matching rule) pair,
            // in commit order (event raise order, then priority, then rule
            // definition order).
            let mut candidates: Vec<(usize, usize)> = Vec::new();
            for (e, &(kind, method, _)) in events.iter().enumerate() {
                candidates.extend(self.matching_rules(kind, method).into_iter().map(|r| (e, r)));
            }
            if candidates.is_empty() {
                break;
            }

            // 3. Batch-solve every candidate's condition against the frozen
            // structure (this is the batch the worker pool parallelises).
            let tasks = candidates
                .iter()
                .map(|&(e, r)| ConditionTask {
                    body: r,
                    seed: events[e].2.clone(),
                })
                .collect();
            let runs = self
                .core
                .solve_conditions(&mut self.structure, Arc::clone(&bodies), tasks)?;

            // 4. Commit: fire in candidate order, solutions in canonical
            // `binding_key` order; compiled actions form the next round.
            for (&(_, r), run) in candidates.iter().zip(runs) {
                if run.is_empty() {
                    continue;
                }
                let rule = self.rules[r].clone();
                for (_, solution) in run {
                    stats.firings = stats.firings.saturating_add(1);
                    if stats.firings > self.options.max_total_firings {
                        return Err(ReactiveError::LimitExceeded(format!(
                            "more than {} trigger firings for one mutation",
                            self.options.max_total_firings
                        )));
                    }
                    self.notify(
                        depth,
                        NotificationKind::Firing {
                            rule: rule.name.clone(),
                        },
                    );
                    for action in &rule.actions {
                        queue.push(self.compile_action(action, &solution)?);
                    }
                }
            }
            depth += 1;
        }
        Ok(())
    }

    /// Evaluate an action template into a primitive mutation.
    fn compile_action(&mut self, action: &EcaAction, bindings: &Bindings) -> Result<Mutation> {
        Ok(match action {
            EcaAction::AssertScalar {
                receiver,
                method,
                value,
            } => Mutation::AssertScalar {
                method: self.structure.ensure_name(method),
                receiver: self.single(receiver, bindings, "action receiver")?,
                result: self.single(value, bindings, "action value")?,
            },
            EcaAction::AddSetMember {
                receiver,
                method,
                member,
            } => Mutation::AddSetMember {
                method: self.structure.ensure_name(method),
                receiver: self.single(receiver, bindings, "action receiver")?,
                member: self.single(member, bindings, "action member")?,
            },
            EcaAction::AddIsA { object, class } => Mutation::AddIsA {
                class: self.structure.ensure_name(class),
                object: self.single(object, bindings, "action object")?,
            },
            EcaAction::RetractScalar { receiver, method } => Mutation::RetractScalar {
                method: self.structure.ensure_name(method),
                receiver: self.single(receiver, bindings, "action receiver")?,
            },
            EcaAction::RemoveSetMember {
                receiver,
                method,
                member,
            } => Mutation::RemoveSetMember {
                method: self.structure.ensure_name(method),
                receiver: self.single(receiver, bindings, "action receiver")?,
                member: self.single(member, bindings, "action member")?,
            },
        })
    }

    fn single(&mut self, term: &Term, bindings: &Bindings, what: &str) -> Result<Oid> {
        // Names used in actions may be new to the structure.
        if let Term::Name(n) = term {
            return Ok(self.structure.ensure_name(n));
        }
        let objects = valuate(&self.structure, term, bindings)?;
        match objects.len() {
            1 => Ok(objects.into_iter().next().expect("len checked")),
            0 => Err(ReactiveError::InvalidAction(format!(
                "{what} `{term}` denotes no object"
            ))),
            n => Err(ReactiveError::InvalidAction(format!(
                "{what} `{term}` denotes {n} objects, expected one"
            ))),
        }
    }
}

/// A primitive mutation (all participants resolved to objects).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Mutation {
    AssertScalar { method: Oid, receiver: Oid, result: Oid },
    RetractScalar { method: Oid, receiver: Oid },
    AddSetMember { method: Oid, receiver: Oid, member: Oid },
    RemoveSetMember { method: Oid, receiver: Oid, member: Oid },
    AddIsA { object: Oid, class: Oid },
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum EventKind {
    ScalarAsserted,
    ScalarRetracted,
    SetMemberAdded,
    SetMemberRemoved,
    ClassAdded,
}

fn event_matches(event: &Event, kind: EventKind, name: &Name) -> bool {
    match (event, kind) {
        (Event::ScalarAsserted(n), EventKind::ScalarAsserted)
        | (Event::ScalarRetracted(n), EventKind::ScalarRetracted)
        | (Event::SetMemberAdded(n), EventKind::SetMemberAdded)
        | (Event::SetMemberRemoved(n), EventKind::SetMemberRemoved)
        | (Event::ClassAdded(n), EventKind::ClassAdded) => n == name,
        _ => false,
    }
}

fn seed_scalar(receiver: Oid, value: Oid) -> Bindings {
    Bindings::from_pairs([(Var::new("Receiver"), receiver), (Var::new("Value"), value)])
        .expect("distinct reserved variables")
}

fn seed_member(receiver: Oid, member: Oid) -> Bindings {
    Bindings::from_pairs([(Var::new("Receiver"), receiver), (Var::new("Member"), member)])
        .expect("distinct reserved variables")
}

fn seed_isa(object: Oid, class: Oid) -> Bindings {
    Bindings::from_pairs([(Var::new("Object"), object), (Var::new("Class"), class)])
        .expect("distinct reserved variables")
}

#[cfg(test)]
mod tests {
    use super::*;

    fn store() -> ActiveStore {
        let mut s = Structure::new();
        let employee = s.atom("employee");
        let mary = s.atom("mary");
        let john = s.atom("john");
        s.add_isa(mary, employee);
        s.add_isa(john, employee);
        ActiveStore::new(s)
    }

    #[test]
    fn a_scalar_assert_trigger_fires_and_acts() {
        let mut store = store();
        // on assert salary: if the receiver is an employee, stamp it as paid.
        store.add_rule(EcaRule::new(
            "mark-paid",
            Event::ScalarAsserted(Name::atom("salary")),
            vec![Literal::pos(Term::var("Receiver").isa("employee"))],
            vec![EcaAction::AddIsA {
                object: Term::var("Receiver"),
                class: Name::atom("paid"),
            }],
        ));
        let (salary, mary) = (store.oid("salary"), store.oid("mary"));
        let amount = store.int(1200);
        let stats = store.assert_scalar(salary, mary, amount).unwrap();
        assert_eq!(stats.firings, 1);
        assert_eq!(stats.mutations, 2, "the external assert plus the trigger's isa");
        assert_eq!(stats.max_depth_reached, 1);
        let paid = store.oid("paid");
        let mary = store.oid("mary");
        assert!(store.structure().in_class(mary, paid));
    }

    #[test]
    fn conditions_filter_which_events_act() {
        let mut store = store();
        let outsider = store.oid("outsider");
        store.add_rule(EcaRule::new(
            "mark-paid",
            Event::ScalarAsserted(Name::atom("salary")),
            vec![Literal::pos(Term::var("Receiver").isa("employee"))],
            vec![EcaAction::AddIsA {
                object: Term::var("Receiver"),
                class: Name::atom("paid"),
            }],
        ));
        let salary = store.oid("salary");
        let amount = store.int(900);
        let stats = store.assert_scalar(salary, outsider, amount).unwrap();
        assert_eq!(stats.firings, 0, "the outsider is not an employee");
        assert_eq!(stats.mutations, 1);
    }

    #[test]
    fn unchanged_mutations_raise_no_events() {
        let mut store = store();
        store.add_rule(EcaRule::new(
            "watch",
            Event::SetMemberAdded(Name::atom("vehicles")),
            vec![],
            vec![EcaAction::AddIsA {
                object: Term::var("Member"),
                class: Name::atom("seen"),
            }],
        ));
        let (vehicles, mary, a1) = (store.oid("vehicles"), store.oid("mary"), store.oid("a1"));
        assert_eq!(store.add_set_member(vehicles, mary, a1).unwrap().firings, 1);
        // adding the same member again changes nothing and fires nothing
        assert_eq!(store.add_set_member(vehicles, mary, a1).unwrap().firings, 0);
    }

    #[test]
    fn cascading_triggers_run_to_the_configured_depth() {
        let mut store = store();
        // Propagate a salary change to the bonus (10% of salary is modelled as
        // a second scalar assert, which itself triggers an audit mark).
        store.add_rule(EcaRule::new(
            "derive-bonus",
            Event::ScalarAsserted(Name::atom("salary")),
            vec![],
            vec![EcaAction::AssertScalar {
                receiver: Term::var("Receiver"),
                method: Name::atom("bonusBase"),
                value: Term::var("Value"),
            }],
        ));
        store.add_rule(EcaRule::new(
            "audit",
            Event::ScalarAsserted(Name::atom("bonusBase")),
            vec![],
            vec![EcaAction::AddIsA {
                object: Term::var("Receiver"),
                class: Name::atom("audited"),
            }],
        ));
        let (salary, mary) = (store.oid("salary"), store.oid("mary"));
        let amount = store.int(2000);
        let stats = store.assert_scalar(salary, mary, amount).unwrap();
        assert_eq!(stats.firings, 2);
        assert_eq!(stats.mutations, 3);
        assert_eq!(stats.max_depth_reached, 2);
        let audited = store.oid("audited");
        let mary = store.oid("mary");
        assert!(store.structure().in_class(mary, audited));
    }

    #[test]
    fn retraction_events_see_the_old_value() {
        let mut store = store();
        store.add_rule(EcaRule::new(
            "archive",
            Event::ScalarRetracted(Name::atom("salary")),
            vec![],
            vec![EcaAction::AssertScalar {
                receiver: Term::var("Receiver"),
                method: Name::atom("lastKnownSalary"),
                value: Term::var("Value"),
            }],
        ));
        let (salary, mary) = (store.oid("salary"), store.oid("mary"));
        let amount = store.int(1500);
        store.assert_scalar(salary, mary, amount).unwrap();
        let stats = store.retract_scalar(salary, mary).unwrap();
        assert_eq!(stats.firings, 1);
        let last = store.oid("lastKnownSalary");
        let mary = store.oid("mary");
        assert_eq!(store.structure().apply_scalar(last, mary, &[]), Some(amount));
        assert_eq!(store.structure().apply_scalar(salary, mary, &[]), None);
    }

    #[test]
    fn set_member_removal_triggers_fire() {
        let mut store = store();
        store.add_rule(EcaRule::new(
            "log-removal",
            Event::SetMemberRemoved(Name::atom("vehicles")),
            vec![],
            vec![EcaAction::AddSetMember {
                receiver: Term::var("Receiver"),
                method: Name::atom("formerVehicles"),
                member: Term::var("Member"),
            }],
        ));
        let (vehicles, mary, a1) = (store.oid("vehicles"), store.oid("mary"), store.oid("a1"));
        store.add_set_member(vehicles, mary, a1).unwrap();
        let stats = store.remove_set_member(vehicles, mary, a1).unwrap();
        assert_eq!(stats.firings, 1);
        let former = store.oid("formerVehicles");
        let (mary, a1) = (store.oid("mary"), store.oid("a1"));
        assert!(store.structure().apply_set(former, mary, &[]).unwrap().contains(&a1));
    }

    #[test]
    fn classification_events_bind_object_and_class() {
        let mut store = store();
        store.add_rule(EcaRule::new(
            "welcome",
            Event::ClassAdded(Name::atom("manager")),
            vec![Literal::pos(Term::var("Object").isa("employee"))],
            vec![EcaAction::AssertScalar {
                receiver: Term::var("Object"),
                method: Name::atom("status"),
                value: Term::name("promoted"),
            }],
        ));
        let (manager, mary) = (store.oid("manager"), store.oid("mary"));
        let stats = store.add_isa(mary, manager).unwrap();
        assert_eq!(stats.firings, 1);
        let status = store.oid("status");
        let promoted = store.oid("promoted");
        let mary = store.oid("mary");
        assert_eq!(store.structure().apply_scalar(status, mary, &[]), Some(promoted));
    }

    #[test]
    fn infinite_cascades_hit_the_depth_limit() {
        let mut store = ActiveStore::with_options(
            Structure::new(),
            ActiveOptions {
                max_cascade_depth: 8,
                ..ActiveOptions::default()
            },
        );
        // Each ping asserts a pong and vice versa, with ever-changing values
        // (the value is the receiver, swapped), so the cascade never quiesces.
        store.add_rule(EcaRule::new(
            "ping",
            Event::ScalarAsserted(Name::atom("ping")),
            vec![],
            vec![EcaAction::RetractScalar {
                receiver: Term::var("Receiver"),
                method: Name::atom("ping"),
            }],
        ));
        store.add_rule(EcaRule::new(
            "pong",
            Event::ScalarRetracted(Name::atom("ping")),
            vec![],
            vec![EcaAction::AssertScalar {
                receiver: Term::var("Receiver"),
                method: Name::atom("ping"),
                value: Term::var("Value"),
            }],
        ));
        let (ping, a, b) = (store.oid("ping"), store.oid("a"), store.oid("b"));
        let err = store.assert_scalar(ping, a, b).unwrap_err();
        assert!(matches!(err, ReactiveError::LimitExceeded(_)));
    }

    #[test]
    fn priorities_order_rule_firings_per_event() {
        let mut store = store();
        store.add_rule(
            EcaRule::new(
                "second",
                Event::ScalarAsserted(Name::atom("salary")),
                vec![Literal::pos(Term::var("Receiver").isa("vip"))],
                vec![EcaAction::AddIsA {
                    object: Term::var("Receiver"),
                    class: Name::atom("doubleChecked"),
                }],
            )
            .with_priority(1),
        );
        store.add_rule(
            EcaRule::new(
                "first",
                Event::ScalarAsserted(Name::atom("salary")),
                vec![],
                vec![EcaAction::AddIsA {
                    object: Term::var("Receiver"),
                    class: Name::atom("vip"),
                }],
            )
            .with_priority(10),
        );
        let (salary, mary) = (store.oid("salary"), store.oid("mary"));
        let amount = store.int(9000);
        let stats = store.assert_scalar(salary, mary, amount).unwrap();
        // "first" runs before "second", so "second"'s condition (vip) already
        // holds and both fire.
        assert_eq!(stats.firings, 2);
        let double_checked = store.oid("doubleChecked");
        let mary = store.oid("mary");
        assert!(store.structure().in_class(mary, double_checked));
    }

    /// A linear chain: asserting `c0` triggers `c1`, which triggers `c2`, …
    /// — each triggered mutation runs one level deeper.
    fn chain_store(levels: usize, options: ActiveOptions) -> ActiveStore {
        let mut store = ActiveStore::with_options(Structure::new(), options);
        for k in 0..levels {
            store.add_rule(EcaRule::new(
                format!("link-{k}"),
                Event::ScalarAsserted(Name::atom(format!("c{k}"))),
                vec![],
                vec![EcaAction::AssertScalar {
                    receiver: Term::var("Receiver"),
                    method: Name::atom(format!("c{}", k + 1)),
                    value: Term::var("Value"),
                }],
            ));
        }
        store
    }

    /// Pins the cascade-depth guard: `max_cascade_depth = N` permits exactly
    /// `N` levels of triggered mutations (the external mutation is depth 0),
    /// and the first mutation at depth `N + 1` errors.
    #[test]
    fn max_cascade_depth_permits_exactly_n_trigger_levels() {
        for schedule in [CascadeSchedule::Immediate, CascadeSchedule::Rounds] {
            // 3 chain rules → deepest triggered mutation at depth 3.
            let options = |max_cascade_depth| ActiveOptions {
                max_cascade_depth,
                schedule,
                ..ActiveOptions::default()
            };
            let mut store = chain_store(3, options(3));
            let (c0, a, b) = (store.oid("c0"), store.oid("a"), store.oid("b"));
            let stats = store.assert_scalar(c0, a, b).unwrap();
            assert_eq!(stats.max_depth_reached, 3, "{schedule:?}: N levels fit exactly");
            assert_eq!(stats.mutations, 4, "{schedule:?}: external + 3 triggered");

            let mut store = chain_store(3, options(2));
            let (c0, a, b) = (store.oid("c0"), store.oid("a"), store.oid("b"));
            let err = store.assert_scalar(c0, a, b).unwrap_err();
            assert!(matches!(err, ReactiveError::LimitExceeded(_)), "{schedule:?}");

            // N = 0: only the external mutation may mutate.  A rule still
            // fires on it, but its first action mutation errors...
            let mut store = chain_store(1, options(0));
            let (c0, a, b) = (store.oid("c0"), store.oid("a"), store.oid("b"));
            assert!(store.assert_scalar(c0, a, b).is_err(), "{schedule:?}");
            // ...while an action-free rule fires without error.
            let mut store = ActiveStore::with_options(Structure::new(), options(0));
            store.add_rule(EcaRule::new(
                "observe",
                Event::ScalarAsserted(Name::atom("c0")),
                vec![],
                vec![],
            ));
            let (c0, a, b) = (store.oid("c0"), store.oid("a"), store.oid("b"));
            let stats = store.assert_scalar(c0, a, b).unwrap();
            assert_eq!((stats.firings, stats.max_depth_reached), (1, 0), "{schedule:?}");
        }
    }

    /// Pins the documented partial-commit semantics: a cascade aborted by
    /// the depth limit keeps every mutation applied before the error.
    #[test]
    fn failed_cascades_keep_the_committed_prefix_by_default() {
        let mut store = chain_store(
            4,
            ActiveOptions {
                max_cascade_depth: 2,
                ..ActiveOptions::default()
            },
        );
        let (c0, a, b) = (store.oid("c0"), store.oid("a"), store.oid("b"));
        assert!(store.assert_scalar(c0, a, b).is_err());
        // c0 (external), c1 and c2 (depths 1–2) committed; c3 was rejected.
        for (method, expect) in [("c0", true), ("c1", true), ("c2", true), ("c3", false)] {
            let m = store.oid(method);
            let a = store.oid("a");
            assert_eq!(
                store.structure().apply_scalar(m, a, &[]).is_some(),
                expect,
                "{method} committed state"
            );
        }
    }

    #[test]
    fn rollback_on_error_restores_the_pre_mutation_structure() {
        for schedule in [CascadeSchedule::Immediate, CascadeSchedule::Rounds] {
            let mut store = chain_store(
                4,
                ActiveOptions {
                    max_cascade_depth: 2,
                    rollback_on_error: true,
                    schedule,
                    ..ActiveOptions::default()
                },
            );
            let (c0, a, b) = (store.oid("c0"), store.oid("a"), store.oid("b"));
            let before = store.structure().canonical_dump();
            assert!(store.assert_scalar(c0, a, b).is_err());
            assert_eq!(
                store.structure().canonical_dump(),
                before,
                "{schedule:?}: rollback must restore the snapshot"
            );
        }
    }

    /// On chain workloads (one matching rule per event) the two schedules
    /// agree exactly, and pooled rounds are bit-identical to sequential
    /// rounds.
    #[test]
    fn rounds_schedule_matches_immediate_on_chains_and_is_pool_stable() {
        let run = |schedule, mode| {
            let mut store = chain_store(
                5,
                ActiveOptions {
                    schedule,
                    mode,
                    ..ActiveOptions::default()
                },
            );
            let (c0, a, b) = (store.oid("c0"), store.oid("a"), store.oid("b"));
            let stats = store.assert_scalar(c0, a, b).unwrap();
            (stats, store.into_structure().canonical_dump())
        };
        let (imm_stats, imm_dump) = run(CascadeSchedule::Immediate, EvalMode::Sequential);
        let (seq_stats, seq_dump) = run(CascadeSchedule::Rounds, EvalMode::Sequential);
        assert_eq!(imm_stats, seq_stats);
        assert_eq!(imm_dump, seq_dump);
        for workers in [1usize, 2, 4] {
            let (stats, dump) = run(CascadeSchedule::Rounds, EvalMode::Parallel { workers });
            assert_eq!(stats, seq_stats, "stats must match at {workers} workers");
            assert_eq!(dump, seq_dump, "models must match at {workers} workers");
        }
    }

    /// A fan-out workload where one event matches several rules with
    /// conditions — the batch shape the pool parallelises; pooled and
    /// sequential rounds must stay bit-identical.
    #[test]
    fn pooled_rounds_match_sequential_rounds_on_fanout_rule_sets() {
        let run = |mode| {
            let mut s = Structure::new();
            let employee = s.atom("employee");
            for i in 0..6 {
                let p = s.atom(&format!("p{i}"));
                s.add_isa(p, employee);
            }
            let mut store = ActiveStore::with_options(
                s,
                ActiveOptions {
                    schedule: CascadeSchedule::Rounds,
                    mode,
                    ..ActiveOptions::default()
                },
            );
            store.add_rule(EcaRule::new(
                "mark-paid",
                Event::ScalarAsserted(Name::atom("salary")),
                vec![Literal::pos(Term::var("Receiver").isa("employee"))],
                vec![EcaAction::AddIsA {
                    object: Term::var("Receiver"),
                    class: Name::atom("paid"),
                }],
            ));
            store.add_rule(EcaRule::new(
                "keep-history",
                Event::ScalarAsserted(Name::atom("salary")),
                vec![Literal::pos(Term::var("Receiver").isa("employee"))],
                vec![EcaAction::AddSetMember {
                    receiver: Term::var("Receiver"),
                    method: Name::atom("payHistory"),
                    member: Term::var("Value"),
                }],
            ));
            store.add_rule(EcaRule::new(
                "derive-bonus",
                Event::ScalarAsserted(Name::atom("salary")),
                vec![],
                vec![EcaAction::AssertScalar {
                    receiver: Term::var("Receiver"),
                    method: Name::atom("bonusBase"),
                    value: Term::var("Value"),
                }],
            ));
            store.add_rule(EcaRule::new(
                "audit",
                Event::ScalarAsserted(Name::atom("bonusBase")),
                vec![],
                vec![EcaAction::AddIsA {
                    object: Term::var("Receiver"),
                    class: Name::atom("audited"),
                }],
            ));
            let salary = store.oid("salary");
            let mut total = ActiveStats::default();
            for i in 0..6 {
                let p = store.oid(&format!("p{i}"));
                let amount = store.int(1000 + i as i64);
                total.merge(&store.assert_scalar(salary, p, amount).unwrap());
            }
            (total, store.into_structure().canonical_dump())
        };
        let (seq_stats, seq_dump) = run(EvalMode::Sequential);
        assert_eq!(seq_stats.firings, 24, "4 firings per salary assert");
        for workers in [1usize, 2, 4, 8] {
            let (stats, dump) = run(EvalMode::Parallel { workers });
            assert_eq!(stats, seq_stats, "stats must match at {workers} workers");
            assert_eq!(dump, seq_dump, "models must match at {workers} workers");
        }
    }

    #[test]
    fn stats_merge_saturates_and_maxes_depth() {
        let mut total = ActiveStats {
            firings: usize::MAX - 1,
            mutations: 3,
            max_depth_reached: 2,
        };
        total.merge(&ActiveStats {
            firings: 10,
            mutations: 1,
            max_depth_reached: 5,
        });
        assert_eq!(total.firings, usize::MAX, "saturates instead of overflowing");
        assert_eq!(total.mutations, 4);
        assert_eq!(total.max_depth_reached, 5, "depth is a maximum, not a sum");
    }

    #[test]
    fn rules_and_events_display_readably() {
        let rule = EcaRule::new(
            "mark-paid",
            Event::ScalarAsserted(Name::atom("salary")),
            vec![Literal::pos(Term::var("Receiver").isa("employee"))],
            vec![EcaAction::AddIsA {
                object: Term::var("Receiver"),
                class: Name::atom("paid"),
            }],
        );
        let text = rule.to_string();
        assert!(text.contains("on assert salary ->"));
        assert!(text.contains("IF Receiver : employee"));
        assert!(text.contains("DO assert Receiver : paid"));
        assert_eq!(Event::SetMemberAdded(Name::atom("kids")).name(), &Name::atom("kids"));
        assert!(EcaAction::RetractScalar {
            receiver: Term::var("X"),
            method: Name::atom("age")
        }
        .to_string()
        .contains("retract X.age"));
    }
}
