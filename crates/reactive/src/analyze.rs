//! Static analysis of reactive rule sets: dependency summaries for the
//! core analyzer's trigger-cascade pass, plus checked installation.
//!
//! The core crate's analyzer ([`pathlog_core::analysis`]) knows nothing
//! about this crate's rule types; it consumes
//! [`ReactiveRuleSummary`] values describing what each rule's trigger,
//! condition and actions read and write in the same `(method/class)`
//! dependency keys the delta gating uses.  This module derives those
//! summaries ([`summarize_production`], [`summarize_eca`]), runs the full
//! analysis over a rule set ([`analyze_production_rules`],
//! [`analyze_eca_rules`]) and backs the engines' `analyze` /
//! `add_rule_checked` entry points: a rule whose condition carries an
//! `Error`-severity diagnostic (ill-formed reference, unsafe negation) is
//! rejected before it can fail — or worse, silently never fire — at
//! runtime.

use std::collections::BTreeSet;

use pathlog_core::analysis::{Analysis, AnalysisInput, ReactiveRuleSummary, RuleKind};
use pathlog_core::program::{literal_reads, rule_info, DepKey, Literal, Program, Query, Rule};
use pathlog_core::structure::Structure;
use pathlog_core::term::Term;

use crate::action::Action;
use crate::active::{EcaAction, EcaRule};
use crate::production::ProductionRule;

/// The keys every literal of `body` reads (positive and negated alike).
fn body_reads(body: &[Literal]) -> BTreeSet<DepKey> {
    body.iter().flat_map(|lit| literal_reads(&lit.term)).collect()
}

/// The keys asserting `term` as a head would write.
fn assert_writes(term: &Term) -> BTreeSet<DepKey> {
    rule_info(&Rule::fact(term.clone())).defines
}

/// The dependency summary of one production rule.  Production rules
/// re-match whenever a key their condition reads changes, so the trigger
/// set equals the condition's read set; assert actions write the keys a
/// deductive head with the same reference would define, retract actions
/// touch the keys the retracted molecule reads.
pub fn summarize_production(rule: &ProductionRule) -> ReactiveRuleSummary {
    let condition_reads = body_reads(&rule.condition);
    let mut writes = BTreeSet::new();
    let mut retracts = BTreeSet::new();
    for action in &rule.actions {
        match action {
            Action::Assert(term) => writes.extend(assert_writes(term)),
            Action::Retract(term) => retracts.extend(literal_reads(term)),
        }
    }
    ReactiveRuleSummary {
        name: rule.name.clone(),
        kind: RuleKind::Production,
        trigger: condition_reads.clone(),
        condition_reads,
        writes,
        retracts,
    }
}

/// The dependency summary of one ECA rule: the trigger is the watched
/// event's method/class key, the condition may read more, and each action
/// template writes or retracts exactly its named method/class.
pub fn summarize_eca(rule: &EcaRule) -> ReactiveRuleSummary {
    let trigger: BTreeSet<DepKey> = [DepKey::Known(rule.event.name().clone())].into_iter().collect();
    let mut condition_reads = body_reads(&rule.condition);
    condition_reads.extend(trigger.iter().cloned());
    let mut writes = BTreeSet::new();
    let mut retracts = BTreeSet::new();
    for action in &rule.actions {
        match action {
            EcaAction::AssertScalar { method, .. } | EcaAction::AddSetMember { method, .. } => {
                writes.insert(DepKey::Known(method.clone()));
            }
            EcaAction::AddIsA { class, .. } => {
                writes.insert(DepKey::Known(class.clone()));
            }
            EcaAction::RetractScalar { method, .. } | EcaAction::RemoveSetMember { method, .. } => {
                retracts.insert(DepKey::Known(method.clone()));
            }
        }
    }
    ReactiveRuleSummary {
        name: rule.name.clone(),
        kind: RuleKind::Eca,
        trigger,
        condition_reads,
        writes,
        retracts,
    }
}

/// Run the core analyzer over a set of summaries and the corresponding
/// condition bodies.  The conditions join the analysis as queries, so they
/// get the same well-formedness and negation-safety checks (PL001, PL004)
/// rule bodies get; the summaries drive the trigger-cascade pass (PL010,
/// PL011) against `max_cascade_depth`.
fn analyze_summaries(
    summaries: Vec<ReactiveRuleSummary>,
    conditions: &[&[Literal]],
    max_cascade_depth: Option<usize>,
    structure: Option<&Structure>,
) -> Analysis {
    let mut program = Program::new();
    for condition in conditions {
        if !condition.is_empty() {
            program.push_query(Query::new(condition.to_vec()));
        }
    }
    let mut input = AnalysisInput::new().program(&program);
    for summary in summaries {
        input = input.reactive_rule(summary);
    }
    if let Some(depth) = max_cascade_depth {
        input = input.max_cascade_depth(depth);
    }
    if let Some(structure) = structure {
        input = input.structure(structure);
    }
    input.run()
}

/// Statically analyze a production rule set: condition safety, trigger
/// cycles and the static cascade bound.  Supply the structure the rules
/// will run against to count its stored facts as defined keys (quieting
/// PL006 for externally stored methods).
pub fn analyze_production_rules(rules: &[ProductionRule], structure: Option<&Structure>) -> Analysis {
    let summaries = rules.iter().map(summarize_production).collect();
    let conditions: Vec<&[Literal]> = rules.iter().map(|r| r.condition.as_slice()).collect();
    analyze_summaries(summaries, &conditions, None, structure)
}

/// Statically analyze an ECA rule set against a cascade-depth limit.
pub fn analyze_eca_rules(rules: &[EcaRule], max_cascade_depth: usize, structure: Option<&Structure>) -> Analysis {
    let summaries = rules.iter().map(summarize_eca).collect();
    let conditions: Vec<&[Literal]> = rules.iter().map(|r| r.condition.as_slice()).collect();
    analyze_summaries(summaries, &conditions, Some(max_cascade_depth), structure)
}

#[cfg(test)]
mod tests {
    use super::*;
    use pathlog_core::analysis::{CascadeBound, DiagCode};
    use pathlog_core::names::Name;
    use pathlog_core::term::Filter;

    use crate::active::Event;

    fn key(name: &str) -> DepKey {
        DepKey::Known(Name::atom(name))
    }

    #[test]
    fn production_summary_collects_reads_and_writes() {
        let rule = ProductionRule::new(
            "promote",
            vec![Literal::pos(Term::var("X").isa("employee"))],
            vec![
                Action::Assert(Term::var("X").filter(Filter::scalar("level", Term::name("senior")))),
                Action::Retract(Term::var("X").filter(Filter::scalar("probation", Term::var("P")))),
            ],
        );
        let s = summarize_production(&rule);
        assert_eq!(s.kind, RuleKind::Production);
        assert!(s.trigger.contains(&key("employee")));
        assert!(s.writes.contains(&key("level")));
        assert!(s.retracts.contains(&key("probation")));
    }

    #[test]
    fn eca_summary_uses_the_event_as_trigger() {
        let rule = EcaRule::new(
            "on-salary",
            Event::ScalarAsserted(Name::atom("salary")),
            vec![Literal::pos(Term::var("Receiver").isa("employee"))],
            vec![EcaAction::AddIsA {
                object: Term::var("Receiver"),
                class: Name::atom("paid"),
            }],
        );
        let s = summarize_eca(&rule);
        assert_eq!(s.kind, RuleKind::Eca);
        assert_eq!(s.trigger, [key("salary")].into_iter().collect());
        assert!(s.condition_reads.contains(&key("employee")));
        assert_eq!(s.writes, [key("paid")].into_iter().collect());
        assert!(s.retracts.is_empty());
    }

    #[test]
    fn ping_pong_eca_rules_are_flagged_statically() {
        let ping = EcaRule::new(
            "ping",
            Event::ScalarAsserted(Name::atom("a")),
            vec![],
            vec![EcaAction::AssertScalar {
                receiver: Term::var("Receiver"),
                method: Name::atom("b"),
                value: Term::var("Value"),
            }],
        );
        let pong = EcaRule::new(
            "pong",
            Event::ScalarAsserted(Name::atom("b")),
            vec![],
            vec![EcaAction::AssertScalar {
                receiver: Term::var("Receiver"),
                method: Name::atom("a"),
                value: Term::var("Value"),
            }],
        );
        let analysis = analyze_eca_rules(&[ping, pong], 32, None);
        let cascade = analysis.cascade.expect("cascade analyzed");
        assert_eq!(cascade.bound, CascadeBound::Unbounded);
        let codes = analysis.diagnostics.codes();
        assert!(codes.contains(&DiagCode::CascadeCycle), "{}", analysis.diagnostics);
        assert!(codes.contains(&DiagCode::CascadeBound), "{}", analysis.diagnostics);
    }

    #[test]
    fn unsafe_conditions_carry_error_diagnostics() {
        let rule = ProductionRule::new(
            "bad",
            vec![Literal::neg(Term::var("X").isa("employee"))],
            vec![Action::Assert(Term::name("flagged").isa("seen"))],
        );
        let analysis = analyze_production_rules(&[rule], None);
        assert!(!analysis.no_errors());
        assert!(analysis.diagnostics.codes().contains(&DiagCode::UnsafeNegationVariable));
    }
}
