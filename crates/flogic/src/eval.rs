//! Bottom-up evaluation of flat programs over a [`Structure`].
//!
//! The evaluator is deliberately simple — it is the baseline the direct
//! PathLog engine is compared against: rule bodies are solved left-to-right
//! by joining one flat atom at a time against the fact tables, skolem terms
//! in heads are materialised as unnamed objects keyed by `(functor, args)`,
//! and the rule set is iterated to a fixpoint.

use std::collections::{BTreeMap, BTreeSet, HashMap};
use std::fmt;

use pathlog_core::builtins;
use pathlog_core::names::Var;
use pathlog_core::structure::{Oid, OidRun, Structure};

use crate::error::{FlogicError, Result};
use crate::flat::{FlatAtom, FlatLiteral, FlatProgram, FlatQuery, FlatTerm};

/// Options for the flat evaluator.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FlatEvalOptions {
    /// Maximum number of fixpoint iterations.
    pub max_iterations: usize,
    /// Maximum number of derived facts before giving up.
    pub max_derived: usize,
}

impl Default for FlatEvalOptions {
    fn default() -> Self {
        FlatEvalOptions {
            max_iterations: 100_000,
            max_derived: 10_000_000,
        }
    }
}

/// Statistics of one evaluation run.
#[derive(Debug, Default, Clone, Copy, PartialEq, Eq)]
pub struct FlatStats {
    /// Fixpoint iterations executed.
    pub iterations: usize,
    /// Rule/solution pairs whose heads were asserted.
    pub firings: usize,
    /// Scalar facts added.
    pub scalar_facts: usize,
    /// Set members added.
    pub set_members: usize,
    /// Class memberships added.
    pub isa_edges: usize,
    /// Objects created for skolem terms.
    pub skolem_objects: usize,
}

impl FlatStats {
    /// Total derived facts.
    pub fn derived(&self) -> usize {
        self.scalar_facts + self.set_members + self.isa_edges
    }
}

/// A variable valuation over flat terms.
#[derive(Debug, Clone, Default, PartialEq, Eq, PartialOrd, Ord)]
pub struct FlatBindings {
    map: BTreeMap<Var, Oid>,
}

impl FlatBindings {
    /// The empty valuation.
    pub fn new() -> Self {
        Self::default()
    }

    /// The object bound to `var`, if any.
    pub fn get(&self, var: &Var) -> Option<Oid> {
        self.map.get(var).copied()
    }

    /// Extend with `var = oid`; `None` if `var` is already bound to a
    /// different object.
    pub fn bind(&self, var: &Var, oid: Oid) -> Option<FlatBindings> {
        match self.map.get(var) {
            Some(&existing) if existing != oid => None,
            Some(_) => Some(self.clone()),
            None => {
                let mut next = self.clone();
                next.map.insert(var.clone(), oid);
                Some(next)
            }
        }
    }

    /// Number of bound variables.
    pub fn len(&self) -> usize {
        self.map.len()
    }

    /// `true` if nothing is bound.
    pub fn is_empty(&self) -> bool {
        self.map.is_empty()
    }

    /// Iterate over the bound pairs.
    pub fn iter(&self) -> impl Iterator<Item = (&Var, Oid)> + '_ {
        self.map.iter().map(|(v, &o)| (v, o))
    }

    /// Keep only the given variables (used to project query answers).
    pub fn project(&self, vars: &[Var]) -> FlatBindings {
        FlatBindings {
            map: self
                .map
                .iter()
                .filter(|(v, _)| vars.contains(v))
                .map(|(v, &o)| (v.clone(), o))
                .collect(),
        }
    }
}

impl fmt::Display for FlatBindings {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{{")?;
        for (i, (v, o)) in self.map.iter().enumerate() {
            if i > 0 {
                write!(f, ", ")?;
            }
            write!(f, "{v} = {o}")?;
        }
        write!(f, "}}")
    }
}

/// Key identifying a skolem object: functor plus resolved argument objects.
type SkolemKey = (String, Vec<Oid>);

/// The flat-program evaluator.
#[derive(Debug, Default, Clone)]
pub struct FlatEngine {
    options: FlatEvalOptions,
}

impl FlatEngine {
    /// An engine with default options.
    pub fn new() -> Self {
        Self::default()
    }

    /// An engine with the given options.
    pub fn with_options(options: FlatEvalOptions) -> Self {
        FlatEngine { options }
    }

    /// The options in use.
    pub fn options(&self) -> &FlatEvalOptions {
        &self.options
    }

    /// Run all rules of `program` to a fixpoint, mutating `structure`.
    pub fn run(&self, structure: &mut Structure, program: &FlatProgram) -> Result<FlatStats> {
        let mut stats = FlatStats::default();
        let mut skolems: HashMap<SkolemKey, Oid> = HashMap::new();
        loop {
            stats.iterations += 1;
            if stats.iterations > self.options.max_iterations {
                return Err(FlogicError::LimitExceeded(format!(
                    "no fixpoint after {} iterations",
                    self.options.max_iterations
                )));
            }
            let mut changed = false;
            for rule in &program.rules {
                let solutions = solve(structure, &rule.body, &FlatBindings::new())?;
                for solution in solutions {
                    let mut fired = false;
                    for atom in &rule.head {
                        if assert_atom(structure, atom, &solution, &mut skolems, &mut stats)? {
                            fired = true;
                        }
                    }
                    if fired {
                        stats.firings += 1;
                        changed = true;
                    }
                    if stats.derived() > self.options.max_derived {
                        return Err(FlogicError::LimitExceeded(format!(
                            "more than {} facts derived",
                            self.options.max_derived
                        )));
                    }
                }
            }
            if !changed {
                break;
            }
        }
        Ok(stats)
    }

    /// Answer a flat query against (the current state of) `structure`.
    /// Answers are projected to the query's answer variables and
    /// de-duplicated.
    pub fn query(&self, structure: &Structure, query: &FlatQuery) -> Result<Vec<FlatBindings>> {
        let solutions = solve(structure, &query.body, &FlatBindings::new())?;
        let mut seen = BTreeSet::new();
        let mut out = Vec::new();
        for solution in solutions {
            let projected = solution.project(&query.answer_variables);
            if seen.insert(projected.clone()) {
                out.push(projected);
            }
        }
        Ok(out)
    }
}

/// Solve a conjunction of flat literals, extending `seed` left to right.
pub fn solve(structure: &Structure, body: &[FlatLiteral], seed: &FlatBindings) -> Result<Vec<FlatBindings>> {
    let mut frontier = vec![seed.clone()];
    for literal in body {
        if frontier.is_empty() {
            return Ok(frontier);
        }
        let mut next = Vec::new();
        match literal {
            FlatLiteral::Pos(atom) => {
                for bindings in &frontier {
                    next.extend(match_atom(structure, atom, bindings)?);
                }
            }
            FlatLiteral::NegGroup(atoms) => {
                let positives: Vec<FlatLiteral> = atoms.iter().cloned().map(FlatLiteral::Pos).collect();
                for bindings in &frontier {
                    if solve(structure, &positives, bindings)?.is_empty() {
                        next.push(bindings.clone());
                    }
                }
            }
        }
        frontier = next;
    }
    Ok(frontier)
}

/// How a flat term relates to the structure under a valuation.
enum Resolution {
    /// Denotes this object.
    Known(Oid),
    /// Contains an unbound variable.
    Unknown,
    /// A name or skolem term that denotes nothing in the structure.
    NoMatch,
}

fn resolve(structure: &Structure, term: &FlatTerm, bindings: &FlatBindings) -> Resolution {
    match term {
        FlatTerm::Name(n) => match structure.lookup_name(n) {
            Some(o) => Resolution::Known(o),
            None => Resolution::NoMatch,
        },
        FlatTerm::Var(v) => match bindings.get(v) {
            Some(o) => Resolution::Known(o),
            None => Resolution::Unknown,
        },
        // Skolem terms only occur in rule heads; in body matching they denote
        // nothing (the translated program re-derives their facts instead).
        FlatTerm::Skolem(_) => Resolution::NoMatch,
    }
}

/// Unify a flat term with a concrete object.
fn unify(structure: &Structure, term: &FlatTerm, oid: Oid, bindings: &FlatBindings) -> Option<FlatBindings> {
    match term {
        FlatTerm::Name(n) => (structure.lookup_name(n) == Some(oid)).then(|| bindings.clone()),
        FlatTerm::Var(v) => bindings.bind(v, oid),
        FlatTerm::Skolem(_) => None,
    }
}

fn unify_all(structure: &Structure, terms: &[FlatTerm], oids: &[Oid], bindings: &FlatBindings) -> Option<FlatBindings> {
    if terms.len() != oids.len() {
        return None;
    }
    let mut current = bindings.clone();
    for (t, &o) in terms.iter().zip(oids.iter()) {
        current = unify(structure, t, o, &current)?;
    }
    Some(current)
}

/// All extensions of `bindings` under which `atom` holds in `structure`.
pub fn match_atom(structure: &Structure, atom: &FlatAtom, bindings: &FlatBindings) -> Result<Vec<FlatBindings>> {
    match atom {
        FlatAtom::Scalar {
            receiver,
            method,
            args,
            result,
        } => {
            if let FlatTerm::Name(n) = method {
                if let Some(atom_name) = n.as_atom() {
                    if atom_name == builtins::SELF_METHOD {
                        return Ok(match_self(structure, receiver, result, bindings));
                    }
                    if builtins::is_comparison(atom_name) {
                        return Ok(match_comparison(structure, atom_name, receiver, result, bindings));
                    }
                }
            }
            match_scalar(structure, receiver, method, args, result, bindings)
        }
        FlatAtom::SetMember {
            receiver,
            method,
            args,
            member,
        } => match_set_member(structure, receiver, method, args, member, bindings),
        FlatAtom::IsA { receiver, class } => Ok(match_isa(structure, receiver, class, bindings)),
    }
}

fn match_self(
    structure: &Structure,
    receiver: &FlatTerm,
    result: &FlatTerm,
    bindings: &FlatBindings,
) -> Vec<FlatBindings> {
    match (
        resolve(structure, receiver, bindings),
        resolve(structure, result, bindings),
    ) {
        (Resolution::Known(r), _) => unify(structure, result, r, bindings).into_iter().collect(),
        (_, Resolution::Known(r)) => unify(structure, receiver, r, bindings).into_iter().collect(),
        (Resolution::Unknown, Resolution::Unknown) => structure
            .objects()
            .filter_map(|o| unify(structure, receiver, o, bindings).and_then(|b| unify(structure, result, o, &b)))
            .collect(),
        _ => Vec::new(),
    }
}

fn match_comparison(
    structure: &Structure,
    builtin: &str,
    receiver: &FlatTerm,
    result: &FlatTerm,
    bindings: &FlatBindings,
) -> Vec<FlatBindings> {
    let (Resolution::Known(lhs), Resolution::Known(rhs)) = (
        resolve(structure, receiver, bindings),
        resolve(structure, result, bindings),
    ) else {
        return Vec::new();
    };
    let (Some(lhs), Some(rhs)) = (structure.name_of(lhs), structure.name_of(rhs)) else {
        return Vec::new();
    };
    match builtins::compare(builtin, lhs, rhs) {
        Some(true) => vec![bindings.clone()],
        _ => Vec::new(),
    }
}

fn match_scalar(
    structure: &Structure,
    receiver: &FlatTerm,
    method: &FlatTerm,
    args: &[FlatTerm],
    result: &FlatTerm,
    bindings: &FlatBindings,
) -> Result<Vec<FlatBindings>> {
    let mut out = Vec::new();
    match resolve(structure, method, bindings) {
        Resolution::NoMatch => {}
        Resolution::Known(m) => match resolve(structure, receiver, bindings) {
            Resolution::NoMatch => {}
            Resolution::Known(r) => {
                let all_args: Option<Vec<Oid>> = args
                    .iter()
                    .map(|a| match resolve(structure, a, bindings) {
                        Resolution::Known(o) => Some(o),
                        _ => None,
                    })
                    .collect();
                if let Some(arg_oids) = all_args {
                    if let Some(res) = structure.apply_scalar(m, r, &arg_oids) {
                        out.extend(unify(structure, result, res, bindings));
                    }
                } else {
                    for fact in structure.facts().scalar_facts_of_method(m) {
                        if fact.receiver != r {
                            continue;
                        }
                        if let Some(b) = unify_all(structure, args, fact.args, bindings) {
                            out.extend(unify(structure, result, fact.result, &b));
                        }
                    }
                }
            }
            Resolution::Unknown => {
                for fact in structure.facts().scalar_facts_of_method(m) {
                    if let Some(b) = unify(structure, receiver, fact.receiver, bindings) {
                        if let Some(b) = unify_all(structure, args, fact.args, &b) {
                            out.extend(unify(structure, result, fact.result, &b));
                        }
                    }
                }
            }
        },
        Resolution::Unknown => {
            for fact in structure.facts().scalar_facts() {
                if let Some(b) = unify(structure, method, fact.method, bindings) {
                    if let Some(b) = unify(structure, receiver, fact.receiver, &b) {
                        if let Some(b) = unify_all(structure, args, fact.args, &b) {
                            out.extend(unify(structure, result, fact.result, &b));
                        }
                    }
                }
            }
        }
    }
    Ok(out)
}

fn match_set_member(
    structure: &Structure,
    receiver: &FlatTerm,
    method: &FlatTerm,
    args: &[FlatTerm],
    member: &FlatTerm,
    bindings: &FlatBindings,
) -> Result<Vec<FlatBindings>> {
    let mut out = Vec::new();
    let mut emit = |fact_receiver: Oid, fact_args: &[Oid], members: &OidRun, b: &FlatBindings| {
        if let Some(b) = unify(structure, receiver, fact_receiver, b) {
            if let Some(b) = unify_all(structure, args, fact_args, &b) {
                for &m in members {
                    out.extend(unify(structure, member, m, &b));
                }
            }
        }
    };
    match resolve(structure, method, bindings) {
        Resolution::NoMatch => {}
        Resolution::Known(m) => {
            for fact in structure.facts().set_facts_of_method(m) {
                emit(fact.receiver, fact.args, fact.members, bindings);
            }
        }
        Resolution::Unknown => {
            for fact in structure.facts().set_facts() {
                if let Some(b) = unify(structure, method, fact.method, bindings) {
                    emit(fact.receiver, fact.args, fact.members, &b);
                }
            }
        }
    }
    Ok(out)
}

fn match_isa(
    structure: &Structure,
    receiver: &FlatTerm,
    class: &FlatTerm,
    bindings: &FlatBindings,
) -> Vec<FlatBindings> {
    match (
        resolve(structure, receiver, bindings),
        resolve(structure, class, bindings),
    ) {
        (Resolution::NoMatch, _) | (_, Resolution::NoMatch) => Vec::new(),
        (Resolution::Known(r), Resolution::Known(c)) => {
            if structure.in_class(r, c) {
                vec![bindings.clone()]
            } else {
                Vec::new()
            }
        }
        (Resolution::Unknown, Resolution::Known(c)) => structure
            .instances_of(c)
            .filter_map(|o| unify(structure, receiver, o, bindings))
            .collect(),
        (Resolution::Known(r), Resolution::Unknown) => structure
            .classes_of(r)
            .filter_map(|c| unify(structure, class, c, bindings))
            .collect(),
        (Resolution::Unknown, Resolution::Unknown) => {
            let mut out = Vec::new();
            for o in structure.objects() {
                for c in structure.classes_of(o) {
                    if let Some(b) = unify(structure, receiver, o, bindings) {
                        out.extend(unify(structure, class, c, &b));
                    }
                }
            }
            out
        }
    }
}

/// Resolve a head term for assertion, creating objects for new skolem terms.
fn resolve_for_assert(
    structure: &mut Structure,
    term: &FlatTerm,
    bindings: &FlatBindings,
    skolems: &mut HashMap<SkolemKey, Oid>,
    stats: &mut FlatStats,
) -> Result<Oid> {
    match term {
        FlatTerm::Name(n) => Ok(structure.ensure_name(n)),
        FlatTerm::Var(v) => bindings
            .get(v)
            .ok_or_else(|| FlogicError::InvalidHead(format!("head variable {v} is not bound by the body"))),
        FlatTerm::Skolem(sk) => {
            let mut arg_oids = Vec::with_capacity(sk.args.len());
            for a in &sk.args {
                arg_oids.push(resolve_for_assert(structure, a, bindings, skolems, stats)?);
            }
            let key = (sk.functor.clone(), arg_oids);
            if let Some(&oid) = skolems.get(&key) {
                return Ok(oid);
            }
            let oid = structure.new_virtual();
            stats.skolem_objects += 1;
            skolems.insert(key, oid);
            Ok(oid)
        }
    }
}

/// Assert one head atom under a valuation.  Returns `true` if new information
/// was added.
fn assert_atom(
    structure: &mut Structure,
    atom: &FlatAtom,
    bindings: &FlatBindings,
    skolems: &mut HashMap<SkolemKey, Oid>,
    stats: &mut FlatStats,
) -> Result<bool> {
    match atom {
        FlatAtom::Scalar {
            receiver,
            method,
            args,
            result,
        } => {
            let r = resolve_for_assert(structure, receiver, bindings, skolems, stats)?;
            let m = resolve_for_assert(structure, method, bindings, skolems, stats)?;
            let arg_oids: Vec<Oid> = args
                .iter()
                .map(|a| resolve_for_assert(structure, a, bindings, skolems, stats))
                .collect::<Result<_>>()?;
            let res = resolve_for_assert(structure, result, bindings, skolems, stats)?;
            let added = structure
                .assert_scalar(m, r, &arg_oids, res)
                .map_err(|e| FlogicError::InvalidHead(e.to_string()))?
                .is_new();
            if added {
                stats.scalar_facts += 1;
            }
            Ok(added)
        }
        FlatAtom::SetMember {
            receiver,
            method,
            args,
            member,
        } => {
            let r = resolve_for_assert(structure, receiver, bindings, skolems, stats)?;
            let m = resolve_for_assert(structure, method, bindings, skolems, stats)?;
            let arg_oids: Vec<Oid> = args
                .iter()
                .map(|a| resolve_for_assert(structure, a, bindings, skolems, stats))
                .collect::<Result<_>>()?;
            let mem = resolve_for_assert(structure, member, bindings, skolems, stats)?;
            let added = structure.assert_set_member(m, r, &arg_oids, mem).is_new();
            if added {
                stats.set_members += 1;
            }
            Ok(added)
        }
        FlatAtom::IsA { receiver, class } => {
            let r = resolve_for_assert(structure, receiver, bindings, skolems, stats)?;
            let c = resolve_for_assert(structure, class, bindings, skolems, stats)?;
            let added = structure.add_isa(r, c);
            if added {
                stats.isa_edges += 1;
            }
            Ok(added)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::flat::{FlatQuery, FlatRule};
    use pathlog_core::names::Name;

    fn name(s: &str) -> FlatTerm {
        FlatTerm::name(s)
    }

    fn var(s: &str) -> FlatTerm {
        FlatTerm::var(s)
    }

    /// A small company structure built directly through the core API.
    fn company() -> Structure {
        let mut s = Structure::new();
        let employee = s.atom("employee");
        let automobile = s.atom("automobile");
        let mary = s.atom("mary");
        let john = s.atom("john");
        let a1 = s.atom("a1");
        let v1 = s.atom("v1");
        let red = s.atom("red");
        let blue = s.atom("blue");
        let color = s.atom("color");
        let vehicles = s.atom("vehicles");
        let age = s.atom("age");
        let thirty = s.int(30);
        s.add_isa(mary, employee);
        s.add_isa(john, employee);
        s.add_isa(a1, automobile);
        s.assert_scalar(age, mary, &[], thirty).unwrap();
        s.assert_scalar(color, a1, &[], red).unwrap();
        s.assert_scalar(color, v1, &[], blue).unwrap();
        s.assert_set_member(vehicles, mary, &[], a1);
        s.assert_set_member(vehicles, john, &[], v1);
        s
    }

    #[test]
    fn bindings_bind_and_project() {
        let b = FlatBindings::new();
        assert!(b.is_empty());
        let b = b.bind(&Var::new("X"), Oid(3)).unwrap();
        let b = b.bind(&Var::new("Y"), Oid(4)).unwrap();
        assert_eq!(b.len(), 2);
        assert!(b.bind(&Var::new("X"), Oid(5)).is_none());
        assert!(b.bind(&Var::new("X"), Oid(3)).is_some());
        let p = b.project(&[Var::new("Y")]);
        assert_eq!(p.len(), 1);
        assert_eq!(p.get(&Var::new("Y")), Some(Oid(4)));
        assert!(p.to_string().contains("Y ="));
    }

    #[test]
    fn match_isa_enumerates_instances() {
        let s = company();
        let atom = FlatAtom::isa(var("X"), name("employee"));
        let answers = match_atom(&s, &atom, &FlatBindings::new()).unwrap();
        assert_eq!(answers.len(), 2);
    }

    #[test]
    fn match_isa_checks_a_ground_pair() {
        let s = company();
        let yes = FlatAtom::isa(name("mary"), name("employee"));
        let no = FlatAtom::isa(name("a1"), name("employee"));
        assert_eq!(match_atom(&s, &yes, &FlatBindings::new()).unwrap().len(), 1);
        assert!(match_atom(&s, &no, &FlatBindings::new()).unwrap().is_empty());
    }

    #[test]
    fn match_scalar_with_unbound_receiver_enumerates_facts() {
        let s = company();
        let atom = FlatAtom::scalar(var("V"), name("color"), var("C"));
        let answers = match_atom(&s, &atom, &FlatBindings::new()).unwrap();
        assert_eq!(answers.len(), 2);
    }

    #[test]
    fn match_scalar_with_everything_bound_uses_lookup() {
        let s = company();
        let atom = FlatAtom::scalar(name("a1"), name("color"), name("red"));
        assert_eq!(match_atom(&s, &atom, &FlatBindings::new()).unwrap().len(), 1);
        let wrong = FlatAtom::scalar(name("a1"), name("color"), name("blue"));
        assert!(match_atom(&s, &wrong, &FlatBindings::new()).unwrap().is_empty());
    }

    #[test]
    fn match_scalar_with_unknown_name_matches_nothing() {
        let s = company();
        let atom = FlatAtom::scalar(name("nobody"), name("color"), var("C"));
        assert!(match_atom(&s, &atom, &FlatBindings::new()).unwrap().is_empty());
    }

    #[test]
    fn match_set_member_enumerates_members() {
        let s = company();
        let atom = FlatAtom::member(name("mary"), name("vehicles"), var("V"));
        let answers = match_atom(&s, &atom, &FlatBindings::new()).unwrap();
        assert_eq!(answers.len(), 1);
        let all = FlatAtom::member(var("X"), name("vehicles"), var("V"));
        assert_eq!(match_atom(&s, &all, &FlatBindings::new()).unwrap().len(), 2);
    }

    #[test]
    fn self_builtin_equates_receiver_and_result() {
        let s = company();
        let atom = FlatAtom::scalar(name("mary"), name("self"), var("Z"));
        let answers = match_atom(&s, &atom, &FlatBindings::new()).unwrap();
        assert_eq!(answers.len(), 1);
        assert_eq!(
            answers[0].get(&Var::new("Z")),
            Some(s.lookup_name(&Name::atom("mary")).unwrap())
        );
    }

    #[test]
    fn comparison_builtins_compare_integers() {
        let mut s = company();
        s.int(20);
        let lt = FlatAtom::Scalar {
            receiver: FlatTerm::Name(Name::int(20)),
            method: name("lt"),
            args: vec![],
            result: FlatTerm::Name(Name::int(30)),
        };
        assert_eq!(match_atom(&s, &lt, &FlatBindings::new()).unwrap().len(), 1);
        let ge = FlatAtom::Scalar {
            receiver: FlatTerm::Name(Name::int(20)),
            method: name("ge"),
            args: vec![],
            result: FlatTerm::Name(Name::int(30)),
        };
        assert!(match_atom(&s, &ge, &FlatBindings::new()).unwrap().is_empty());
    }

    #[test]
    fn solve_joins_atoms_left_to_right() {
        let s = company();
        // X : employee, X[vehicles ->> {V}], V[color -> C]
        let body = vec![
            FlatLiteral::Pos(FlatAtom::isa(var("X"), name("employee"))),
            FlatLiteral::Pos(FlatAtom::member(var("X"), name("vehicles"), var("V"))),
            FlatLiteral::Pos(FlatAtom::scalar(var("V"), name("color"), var("C"))),
        ];
        let answers = solve(&s, &body, &FlatBindings::new()).unwrap();
        assert_eq!(answers.len(), 2);
    }

    #[test]
    fn negated_groups_filter_solutions() {
        let s = company();
        // employees without an age fact
        let body = vec![
            FlatLiteral::Pos(FlatAtom::isa(var("X"), name("employee"))),
            FlatLiteral::NegGroup(vec![FlatAtom::scalar(var("X"), name("age"), var("A"))]),
        ];
        let answers = solve(&s, &body, &FlatBindings::new()).unwrap();
        assert_eq!(answers.len(), 1);
        let john = s.lookup_name(&Name::atom("john")).unwrap();
        assert_eq!(answers[0].get(&Var::new("X")), Some(john));
    }

    #[test]
    fn run_derives_facts_and_reaches_a_fixpoint() {
        let mut s = company();
        // X[hasCar -> V] <- X[vehicles ->> {V}], V : automobile.
        let rule = FlatRule::new(
            vec![FlatAtom::scalar(var("X"), name("hasCar"), var("V"))],
            vec![
                FlatLiteral::Pos(FlatAtom::member(var("X"), name("vehicles"), var("V"))),
                FlatLiteral::Pos(FlatAtom::isa(var("V"), name("automobile"))),
            ],
        );
        let program = FlatProgram {
            rules: vec![rule],
            queries: vec![],
        };
        let stats = FlatEngine::new().run(&mut s, &program).unwrap();
        assert_eq!(stats.scalar_facts, 1);
        assert!(stats.iterations >= 2);
        let has_car = s.lookup_name(&Name::atom("hasCar")).unwrap();
        let mary = s.lookup_name(&Name::atom("mary")).unwrap();
        assert!(s.apply_scalar(has_car, mary, &[]).is_some());
    }

    #[test]
    fn skolem_heads_create_one_object_per_key() {
        let mut s = company();
        // X[address -> address(X)], address(X)[owner -> X] <- X : employee.
        let rule = FlatRule::new(
            vec![
                FlatAtom::scalar(var("X"), name("address"), FlatTerm::skolem("address", vec![var("X")])),
                FlatAtom::scalar(FlatTerm::skolem("address", vec![var("X")]), name("owner"), var("X")),
            ],
            vec![FlatLiteral::Pos(FlatAtom::isa(var("X"), name("employee")))],
        );
        let program = FlatProgram {
            rules: vec![rule],
            queries: vec![],
        };
        let stats = FlatEngine::new().run(&mut s, &program).unwrap();
        // one skolem object per employee, re-used across the two head atoms
        // and across fixpoint iterations.
        assert_eq!(stats.skolem_objects, 2);
        assert_eq!(stats.scalar_facts, 4);
    }

    #[test]
    fn transitive_closure_reaches_a_fixpoint() {
        let mut s = Structure::new();
        let kids = s.atom("kids");
        let desc = s.atom("desc");
        let peter = s.atom("peter");
        let tim = s.atom("tim");
        let mary = s.atom("mary");
        let sally = s.atom("sally");
        s.assert_set_member(kids, peter, &[], tim);
        s.assert_set_member(kids, peter, &[], mary);
        s.assert_set_member(kids, tim, &[], sally);
        let _ = desc;
        // X[desc ->> {Y}] <- X[kids ->> {Y}].
        // X[desc ->> {Y}] <- X[desc ->> {Z}], Z[kids ->> {Y}].
        let r1 = FlatRule::new(
            vec![FlatAtom::member(var("X"), name("desc"), var("Y"))],
            vec![FlatLiteral::Pos(FlatAtom::member(var("X"), name("kids"), var("Y")))],
        );
        let r2 = FlatRule::new(
            vec![FlatAtom::member(var("X"), name("desc"), var("Y"))],
            vec![
                FlatLiteral::Pos(FlatAtom::member(var("X"), name("desc"), var("Z"))),
                FlatLiteral::Pos(FlatAtom::member(var("Z"), name("kids"), var("Y"))),
            ],
        );
        let program = FlatProgram {
            rules: vec![r1, r2],
            queries: vec![],
        };
        let stats = FlatEngine::new().run(&mut s, &program).unwrap();
        assert_eq!(stats.set_members, 4); // tim, mary, sally from peter; sally from tim... = 3 + 1
        let desc = s.lookup_name(&Name::atom("desc")).unwrap();
        let peter = s.lookup_name(&Name::atom("peter")).unwrap();
        assert_eq!(s.apply_set(desc, peter, &[]).unwrap().len(), 3);
    }

    #[test]
    fn queries_project_and_deduplicate() {
        let s = company();
        let query = FlatQuery {
            body: vec![
                FlatLiteral::Pos(FlatAtom::isa(var("X"), name("employee"))),
                FlatLiteral::Pos(FlatAtom::member(var("X"), name("vehicles"), var("V"))),
            ],
            answer_variables: vec![Var::new("X")],
        };
        let answers = FlatEngine::new().query(&s, &query).unwrap();
        assert_eq!(answers.len(), 2);
        for a in &answers {
            assert_eq!(a.len(), 1);
        }
    }

    #[test]
    fn unbound_head_variables_are_an_error() {
        let mut s = company();
        let rule = FlatRule::new(
            vec![FlatAtom::scalar(var("X"), name("a"), var("Unbound"))],
            vec![FlatLiteral::Pos(FlatAtom::isa(var("X"), name("employee")))],
        );
        let program = FlatProgram {
            rules: vec![rule],
            queries: vec![],
        };
        let err = FlatEngine::new().run(&mut s, &program).unwrap_err();
        assert!(matches!(err, FlogicError::InvalidHead(_)));
    }

    #[test]
    fn conflicting_scalar_heads_are_an_error() {
        let mut s = company();
        let program = FlatProgram {
            rules: vec![
                FlatRule::fact(vec![FlatAtom::scalar(name("mary"), name("boss"), name("john"))]),
                FlatRule::fact(vec![FlatAtom::scalar(name("mary"), name("boss"), name("a1"))]),
            ],
            queries: vec![],
        };
        let err = FlatEngine::new().run(&mut s, &program).unwrap_err();
        assert!(matches!(err, FlogicError::InvalidHead(_)));
    }

    #[test]
    fn derived_fact_limit_is_enforced() {
        let mut s = Structure::new();
        let kids = s.atom("kids");
        let a = s.atom("a");
        let b = s.atom("b");
        s.assert_set_member(kids, a, &[], b);
        // Every pair of descendants becomes a kid again — quadratic blow-up,
        // here just used to trip a tiny limit.
        let rule = FlatRule::new(
            vec![FlatAtom::member(var("X"), name("other"), var("Y"))],
            vec![FlatLiteral::Pos(FlatAtom::member(var("X"), name("kids"), var("Y")))],
        );
        let program = FlatProgram {
            rules: vec![rule],
            queries: vec![],
        };
        let engine = FlatEngine::with_options(FlatEvalOptions {
            max_iterations: 100,
            max_derived: 0,
        });
        let err = engine.run(&mut s, &program).unwrap_err();
        assert!(matches!(err, FlogicError::LimitExceeded(_)));
    }
}
