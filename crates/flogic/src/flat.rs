//! Flat F-logic molecules.
//!
//! The target language of the translation has no nesting at all: every
//! position of an atom is a [`FlatTerm`] — a name, a variable or a skolem
//! function term.  This is the fragment of F-logic that XSQL's sketched
//! semantics reduces to, and it is what PathLog's direct semantics makes
//! unnecessary to spell out.

use std::collections::BTreeSet;
use std::fmt;

use pathlog_core::names::{Name, Var};

/// A skolem function term `f(t1, ..., tk)`.
///
/// F-logic needs these to give identity to view objects ("the view's name
/// simultaneously serves as a function symbol", Section 6 on XSQL's
/// `EmployeeBoss(p1)`); PathLog replaces them by methods.
#[derive(Debug, Clone, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct SkolemTerm {
    /// The function symbol.
    pub functor: String,
    /// The argument terms.
    pub args: Vec<FlatTerm>,
}

impl SkolemTerm {
    /// Build a skolem term.
    pub fn new(functor: impl Into<String>, args: Vec<FlatTerm>) -> Self {
        SkolemTerm {
            functor: functor.into(),
            args,
        }
    }
}

impl fmt::Display for SkolemTerm {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}(", self.functor)?;
        for (i, a) in self.args.iter().enumerate() {
            if i > 0 {
                write!(f, ", ")?;
            }
            write!(f, "{a}")?;
        }
        write!(f, ")")
    }
}

/// A position in a flat atom.
#[derive(Debug, Clone, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum FlatTerm {
    /// A constant name.
    Name(Name),
    /// A variable (either from the source reference or an auxiliary `_P<n>`
    /// variable introduced for a path step).
    Var(Var),
    /// A skolem function term.
    Skolem(Box<SkolemTerm>),
}

impl FlatTerm {
    /// A name term.
    pub fn name(n: impl Into<Name>) -> Self {
        FlatTerm::Name(n.into())
    }

    /// A variable term.
    pub fn var(v: impl Into<String>) -> Self {
        FlatTerm::Var(Var::new(v))
    }

    /// A skolem term.
    pub fn skolem(functor: impl Into<String>, args: Vec<FlatTerm>) -> Self {
        FlatTerm::Skolem(Box::new(SkolemTerm::new(functor, args)))
    }

    /// `true` if the term is (or contains) no variable.
    pub fn is_ground(&self) -> bool {
        match self {
            FlatTerm::Name(_) => true,
            FlatTerm::Var(_) => false,
            FlatTerm::Skolem(s) => s.args.iter().all(FlatTerm::is_ground),
        }
    }

    /// All variables occurring in the term, in order of first occurrence.
    pub fn variables(&self) -> Vec<Var> {
        let mut out = Vec::new();
        self.collect_variables(&mut out);
        out
    }

    fn collect_variables(&self, out: &mut Vec<Var>) {
        match self {
            FlatTerm::Name(_) => {}
            FlatTerm::Var(v) => {
                if !out.contains(v) {
                    out.push(v.clone());
                }
            }
            FlatTerm::Skolem(s) => {
                for a in &s.args {
                    a.collect_variables(out);
                }
            }
        }
    }
}

impl fmt::Display for FlatTerm {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            FlatTerm::Name(n) => write!(f, "{n}"),
            FlatTerm::Var(v) => write!(f, "{v}"),
            FlatTerm::Skolem(s) => write!(f, "{s}"),
        }
    }
}

impl From<Name> for FlatTerm {
    fn from(n: Name) -> Self {
        FlatTerm::Name(n)
    }
}

impl From<Var> for FlatTerm {
    fn from(v: Var) -> Self {
        FlatTerm::Var(v)
    }
}

/// One flat data molecule.
#[derive(Debug, Clone, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum FlatAtom {
    /// `receiver[method@(args) -> result]`.
    Scalar {
        /// Receiver position.
        receiver: FlatTerm,
        /// Method position.
        method: FlatTerm,
        /// Call arguments.
        args: Vec<FlatTerm>,
        /// The scalar result.
        result: FlatTerm,
    },
    /// `receiver[method@(args) ->> {member}]` — one member of the set result.
    SetMember {
        /// Receiver position.
        receiver: FlatTerm,
        /// Method position.
        method: FlatTerm,
        /// Call arguments.
        args: Vec<FlatTerm>,
        /// One member of the result set.
        member: FlatTerm,
    },
    /// `receiver : class`.
    IsA {
        /// The object whose membership is stated.
        receiver: FlatTerm,
        /// The class.
        class: FlatTerm,
    },
}

impl FlatAtom {
    /// A scalar atom without arguments.
    pub fn scalar(receiver: FlatTerm, method: FlatTerm, result: FlatTerm) -> Self {
        FlatAtom::Scalar {
            receiver,
            method,
            args: Vec::new(),
            result,
        }
    }

    /// A set-membership atom without arguments.
    pub fn member(receiver: FlatTerm, method: FlatTerm, member: FlatTerm) -> Self {
        FlatAtom::SetMember {
            receiver,
            method,
            args: Vec::new(),
            member,
        }
    }

    /// A class-membership atom.
    pub fn isa(receiver: FlatTerm, class: FlatTerm) -> Self {
        FlatAtom::IsA { receiver, class }
    }

    /// All variables of the atom, in order of first occurrence.
    pub fn variables(&self) -> Vec<Var> {
        let mut out = Vec::new();
        let mut push = |t: &FlatTerm| {
            for v in t.variables() {
                if !out.contains(&v) {
                    out.push(v);
                }
            }
        };
        match self {
            FlatAtom::Scalar {
                receiver,
                method,
                args,
                result,
            } => {
                push(receiver);
                push(method);
                args.iter().for_each(&mut push);
                push(result);
            }
            FlatAtom::SetMember {
                receiver,
                method,
                args,
                member,
            } => {
                push(receiver);
                push(method);
                args.iter().for_each(&mut push);
                push(member);
            }
            FlatAtom::IsA { receiver, class } => {
                push(receiver);
                push(class);
            }
        }
        out
    }

    /// `true` if no position contains a variable.
    pub fn is_ground(&self) -> bool {
        self.variables().is_empty()
    }
}

fn fmt_call(f: &mut fmt::Formatter<'_>, method: &FlatTerm, args: &[FlatTerm]) -> fmt::Result {
    write!(f, "{method}")?;
    if !args.is_empty() {
        write!(f, "@(")?;
        for (i, a) in args.iter().enumerate() {
            if i > 0 {
                write!(f, ", ")?;
            }
            write!(f, "{a}")?;
        }
        write!(f, ")")?;
    }
    Ok(())
}

impl fmt::Display for FlatAtom {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            FlatAtom::Scalar {
                receiver,
                method,
                args,
                result,
            } => {
                write!(f, "{receiver}[")?;
                fmt_call(f, method, args)?;
                write!(f, " -> {result}]")
            }
            FlatAtom::SetMember {
                receiver,
                method,
                args,
                member,
            } => {
                write!(f, "{receiver}[")?;
                fmt_call(f, method, args)?;
                write!(f, " ->> {{{member}}}]")
            }
            FlatAtom::IsA { receiver, class } => write!(f, "{receiver} : {class}"),
        }
    }
}

/// A body literal of a flat rule or query.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum FlatLiteral {
    /// A positive atom.
    Pos(FlatAtom),
    /// The negation of an existentially quantified *conjunction*.
    ///
    /// PathLog negates whole references; flattening one reference yields a
    /// conjunction of atoms, so its negation scopes over the group (auxiliary
    /// variables are existential inside the group).
    NegGroup(Vec<FlatAtom>),
}

impl FlatLiteral {
    /// Variables of the literal that are bound by matching it (negative
    /// groups bind nothing — they only test).
    pub fn binding_variables(&self) -> Vec<Var> {
        match self {
            FlatLiteral::Pos(a) => a.variables(),
            FlatLiteral::NegGroup(_) => Vec::new(),
        }
    }

    /// Number of atoms in the literal.
    pub fn atom_count(&self) -> usize {
        match self {
            FlatLiteral::Pos(_) => 1,
            FlatLiteral::NegGroup(g) => g.len(),
        }
    }
}

impl fmt::Display for FlatLiteral {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            FlatLiteral::Pos(a) => write!(f, "{a}"),
            FlatLiteral::NegGroup(g) => {
                write!(f, "not (")?;
                for (i, a) in g.iter().enumerate() {
                    if i > 0 {
                        write!(f, ", ")?;
                    }
                    write!(f, "{a}")?;
                }
                write!(f, ")")
            }
        }
    }
}

/// A flat rule: a conjunction of head atoms derived from a conjunction of
/// body literals.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FlatRule {
    /// Atoms asserted when the body holds.
    pub head: Vec<FlatAtom>,
    /// The body.
    pub body: Vec<FlatLiteral>,
}

impl FlatRule {
    /// A rule.
    pub fn new(head: Vec<FlatAtom>, body: Vec<FlatLiteral>) -> Self {
        FlatRule { head, body }
    }

    /// A fact (empty body).
    pub fn fact(head: Vec<FlatAtom>) -> Self {
        FlatRule { head, body: Vec::new() }
    }

    /// `true` if the body is empty.
    pub fn is_fact(&self) -> bool {
        self.body.is_empty()
    }

    /// Head variables that no positive body literal binds.  A well-formed
    /// translated rule has none (skolem arguments come from the body).
    pub fn unsafe_head_variables(&self) -> Vec<Var> {
        let bound: BTreeSet<Var> = self.body.iter().flat_map(|l| l.binding_variables()).collect();
        let mut out = Vec::new();
        for a in &self.head {
            for v in a.variables() {
                if !bound.contains(&v) && !out.contains(&v) {
                    out.push(v);
                }
            }
        }
        out
    }

    /// Total number of atoms (head + body).
    pub fn atom_count(&self) -> usize {
        self.head.len() + self.body.iter().map(FlatLiteral::atom_count).sum::<usize>()
    }
}

impl fmt::Display for FlatRule {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        for (i, a) in self.head.iter().enumerate() {
            if i > 0 {
                write!(f, ", ")?;
            }
            write!(f, "{a}")?;
        }
        if !self.body.is_empty() {
            write!(f, " <- ")?;
            for (i, l) in self.body.iter().enumerate() {
                if i > 0 {
                    write!(f, ", ")?;
                }
                write!(f, "{l}")?;
            }
        }
        write!(f, ".")
    }
}

/// A flat query.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FlatQuery {
    /// The body to satisfy.
    pub body: Vec<FlatLiteral>,
    /// The variables of the original PathLog query (auxiliary variables are
    /// projected away from answers).
    pub answer_variables: Vec<Var>,
}

impl FlatQuery {
    /// Total number of atoms in the body.
    pub fn atom_count(&self) -> usize {
        self.body.iter().map(FlatLiteral::atom_count).sum()
    }
}

impl fmt::Display for FlatQuery {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "?- ")?;
        for (i, l) in self.body.iter().enumerate() {
            if i > 0 {
                write!(f, ", ")?;
            }
            write!(f, "{l}")?;
        }
        write!(f, ".")
    }
}

/// A flat program: the translation image of a PathLog program.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct FlatProgram {
    /// The rules (including facts).
    pub rules: Vec<FlatRule>,
    /// The queries.
    pub queries: Vec<FlatQuery>,
}

impl FlatProgram {
    /// An empty program.
    pub fn new() -> Self {
        Self::default()
    }

    /// Total number of atoms across all rules and queries — the measure of
    /// how much a one-reference PathLog formulation expands when flattened.
    pub fn atom_count(&self) -> usize {
        self.rules.iter().map(FlatRule::atom_count).sum::<usize>()
            + self.queries.iter().map(FlatQuery::atom_count).sum::<usize>()
    }
}

impl fmt::Display for FlatProgram {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        for r in &self.rules {
            writeln!(f, "{r}")?;
        }
        for q in &self.queries {
            writeln!(f, "{q}")?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn x() -> FlatTerm {
        FlatTerm::var("X")
    }

    #[test]
    fn skolem_display_and_groundness() {
        let sk = FlatTerm::skolem("address", vec![FlatTerm::name("mary")]);
        assert_eq!(sk.to_string(), "address(mary)");
        assert!(sk.is_ground());
        let sk2 = FlatTerm::skolem("address", vec![x()]);
        assert!(!sk2.is_ground());
        assert_eq!(sk2.variables(), vec![Var::new("X")]);
    }

    #[test]
    fn atom_display_forms() {
        let a = FlatAtom::scalar(x(), FlatTerm::name("age"), FlatTerm::name(Name::int(30)));
        assert_eq!(a.to_string(), "X[age -> 30]");
        let b = FlatAtom::member(x(), FlatTerm::name("kids"), FlatTerm::var("Y"));
        assert_eq!(b.to_string(), "X[kids ->> {Y}]");
        let c = FlatAtom::isa(x(), FlatTerm::name("employee"));
        assert_eq!(c.to_string(), "X : employee");
    }

    #[test]
    fn atom_display_with_args() {
        let a = FlatAtom::Scalar {
            receiver: FlatTerm::name("john"),
            method: FlatTerm::name("salary"),
            args: vec![FlatTerm::name(Name::int(1994))],
            result: FlatTerm::var("S"),
        };
        assert_eq!(a.to_string(), "john[salary@(1994) -> S]");
    }

    #[test]
    fn atom_variables_in_order() {
        let a = FlatAtom::Scalar {
            receiver: FlatTerm::var("A"),
            method: FlatTerm::var("M"),
            args: vec![FlatTerm::var("B")],
            result: FlatTerm::skolem("f", vec![FlatTerm::var("A"), FlatTerm::var("C")]),
        };
        let vars: Vec<String> = a.variables().iter().map(|v| v.name().to_string()).collect();
        assert_eq!(vars, vec!["A", "M", "B", "C"]);
        assert!(!a.is_ground());
    }

    #[test]
    fn rule_display_and_safety() {
        let head = vec![FlatAtom::scalar(x(), FlatTerm::name("power"), FlatTerm::var("Y"))];
        let body = vec![
            FlatLiteral::Pos(FlatAtom::isa(x(), FlatTerm::name("automobile"))),
            FlatLiteral::Pos(FlatAtom::scalar(x(), FlatTerm::name("engine"), FlatTerm::var("E"))),
            FlatLiteral::Pos(FlatAtom::scalar(
                FlatTerm::var("E"),
                FlatTerm::name("power"),
                FlatTerm::var("Y"),
            )),
        ];
        let rule = FlatRule::new(head, body);
        assert_eq!(
            rule.to_string(),
            "X[power -> Y] <- X : automobile, X[engine -> E], E[power -> Y]."
        );
        assert!(rule.unsafe_head_variables().is_empty());
        assert_eq!(rule.atom_count(), 4);
    }

    #[test]
    fn unsafe_head_variables_are_detected() {
        let rule = FlatRule::new(
            vec![FlatAtom::scalar(x(), FlatTerm::name("a"), FlatTerm::var("Z"))],
            vec![FlatLiteral::Pos(FlatAtom::isa(x(), FlatTerm::name("c")))],
        );
        assert_eq!(rule.unsafe_head_variables(), vec![Var::new("Z")]);
    }

    #[test]
    fn negative_groups_bind_nothing() {
        let neg = FlatLiteral::NegGroup(vec![FlatAtom::scalar(
            x(),
            FlatTerm::name("spouse"),
            FlatTerm::var("S"),
        )]);
        assert!(neg.binding_variables().is_empty());
        assert_eq!(neg.atom_count(), 1);
        assert_eq!(neg.to_string(), "not (X[spouse -> S])");
    }

    #[test]
    fn facts_and_program_counts() {
        let fact = FlatRule::fact(vec![FlatAtom::isa(FlatTerm::name("p1"), FlatTerm::name("employee"))]);
        assert!(fact.is_fact());
        let mut prog = FlatProgram::new();
        prog.rules.push(fact);
        prog.queries.push(FlatQuery {
            body: vec![FlatLiteral::Pos(FlatAtom::isa(x(), FlatTerm::name("employee")))],
            answer_variables: vec![Var::new("X")],
        });
        assert_eq!(prog.atom_count(), 2);
        let text = prog.to_string();
        assert!(text.contains("p1 : employee."));
        assert!(text.contains("?- X : employee."));
    }
}
