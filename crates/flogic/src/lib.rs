//! # pathlog-flogic — the translation semantics PathLog argues against
//!
//! Section 2 of the paper contrasts PathLog's *direct* semantics with the way
//! XSQL handles path expressions: "semantics is only sketched by a
//! transformation into F-logic, while we will give a direct semantics in this
//! paper".  This crate implements that transformation as a comparison
//! baseline:
//!
//! * [`flat`] defines *flat molecules* — F-logic data atoms without any
//!   nesting: `o[m@(a1,..,ak) -> r]`, `o[m@(..) ->> {r}]` and `o : c`, where
//!   every position is a name, a variable or a *skolem function term*
//!   (`address(X)`), exactly the device F-logic and XSQL need where PathLog
//!   uses a method-denoted virtual object.
//! * [`translate`] rewrites PathLog references, rules and queries into
//!   conjunctions of flat molecules, introducing one auxiliary variable per
//!   path step in bodies and one skolem term per path step in rule heads.
//! * [`eval`] is a bottom-up evaluator for flat programs over the same
//!   [`Structure`](pathlog_core::structure::Structure) the direct engine
//!   uses, so answers can be compared one-to-one.
//!
//! Two properties of the paper are made measurable here:
//!
//! 1. **Compactness** — a single two-dimensional PathLog reference expands
//!    into a conjunction of flat atoms ([`translate::Translation::conjuncts`]
//!    counts them); this is the "second dimension" claim of Section 2.
//! 2. **Equivalence** — on the paper's examples the translated program derives
//!    exactly the answers of the direct semantics (integration test
//!    `tests/flogic_equivalence.rs`), confirming that the direct semantics is
//!    a conservative generalisation, not a different language.
//!
//! ```
//! use pathlog_core::structure::Structure;
//! use pathlog_core::term::Term;
//! use pathlog_flogic::translate::Translator;
//!
//! // mary.spouse[boss -> mary].age  — one reference, three flat atoms.
//! let reference = Term::name("mary")
//!     .scalar("spouse")
//!     .filter(pathlog_core::term::Filter::scalar("boss", Term::name("mary")))
//!     .scalar("age");
//! let translation = Translator::new().reference(&reference).unwrap();
//! assert_eq!(translation.conjuncts(), 3);
//! ```

#![warn(missing_docs)]

pub mod error;
pub mod eval;
pub mod flat;
pub mod translate;

pub use error::{FlogicError, Result};
pub use eval::{FlatBindings, FlatEngine, FlatEvalOptions, FlatStats};
pub use flat::{FlatAtom, FlatLiteral, FlatProgram, FlatQuery, FlatRule, FlatTerm, SkolemTerm};
pub use translate::{TranslationStats, Translator};
