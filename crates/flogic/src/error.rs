//! Error type shared by translation and evaluation.

use std::fmt;

/// Errors raised while translating PathLog into flat molecules or while
/// evaluating a flat program.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum FlogicError {
    /// The reference uses a construct the flat translation cannot express.
    ///
    /// The prominent case is a set-valued reference on the right-hand side of
    /// a `->>` filter *in a rule body* (the paper's stratification example in
    /// Section 6): the flat target language has no set-at-a-time comparison,
    /// which is precisely the expressiveness gap the direct semantics closes.
    Untranslatable(String),
    /// A rule head that is not assertable (set-valued, or a bare variable).
    InvalidHead(String),
    /// The fixpoint computation exceeded a resource limit.
    LimitExceeded(String),
    /// A query or rule body referenced a skolem term whose arguments are not
    /// all bound.
    UnboundSkolem(String),
}

impl fmt::Display for FlogicError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            FlogicError::Untranslatable(m) => write!(f, "untranslatable reference: {m}"),
            FlogicError::InvalidHead(m) => write!(f, "invalid rule head: {m}"),
            FlogicError::LimitExceeded(m) => write!(f, "limit exceeded: {m}"),
            FlogicError::UnboundSkolem(m) => write!(f, "unbound skolem term: {m}"),
        }
    }
}

impl std::error::Error for FlogicError {}

/// Result alias for this crate.
pub type Result<T> = std::result::Result<T, FlogicError>;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_mentions_the_kind() {
        assert!(FlogicError::Untranslatable("x".into())
            .to_string()
            .contains("untranslatable"));
        assert!(FlogicError::InvalidHead("x".into()).to_string().contains("head"));
        assert!(FlogicError::LimitExceeded("x".into()).to_string().contains("limit"));
        assert!(FlogicError::UnboundSkolem("x".into()).to_string().contains("skolem"));
    }

    #[test]
    fn errors_are_comparable() {
        assert_eq!(
            FlogicError::InvalidHead("a".into()),
            FlogicError::InvalidHead("a".into())
        );
        assert_ne!(
            FlogicError::InvalidHead("a".into()),
            FlogicError::InvalidHead("b".into())
        );
    }
}
