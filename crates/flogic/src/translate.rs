//! Translation of PathLog references, rules and queries into flat molecules.
//!
//! The translation follows the reduction the paper attributes to XSQL
//! (Section 2): every path step becomes one flat atom.  In *bodies* the
//! intermediate objects are named by fresh auxiliary variables (`_P1`,
//! `_P2`, ...); in *rule heads* they are named by skolem function terms —
//! the F-logic device (`address(X)`, `EmployeeBoss(p1)`) that PathLog's
//! method-based virtual objects render unnecessary.
//!
//! Two constructs cannot be expressed in the flat fragment and are rejected
//! with [`FlogicError::Untranslatable`]:
//!
//! * a set-valued reference as the right-hand side of a `->>` filter in a
//!   *body* (`... <- X[friends ->> p1..assistants]`) — this is the
//!   set-at-a-time comparison for which the paper requires stratification;
//! * signature declarations (`=>`, `=>>`) — a typing extension of this
//!   repository, outside the data fragment.

use pathlog_core::names::Var;
use pathlog_core::program::{Literal, Program, Query, Rule};
use pathlog_core::term::{Filter, FilterValue, Term};

use crate::error::{FlogicError, Result};
use crate::flat::{FlatAtom, FlatLiteral, FlatProgram, FlatQuery, FlatRule, FlatTerm};

/// Summary counters of one translation run.
#[derive(Debug, Default, Clone, Copy, PartialEq, Eq)]
pub struct TranslationStats {
    /// PathLog rules translated.
    pub rules: usize,
    /// PathLog queries translated.
    pub queries: usize,
    /// Flat atoms produced (head + body + query).
    pub flat_atoms: usize,
    /// Auxiliary variables introduced for path steps in bodies.
    pub aux_variables: usize,
    /// Skolem terms introduced for path steps in heads.
    pub skolem_terms: usize,
}

/// The flattening of one PathLog reference in body position.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Translation {
    /// The flat term denoting the objects the reference denotes.
    pub result: FlatTerm,
    /// The conjunction of flat atoms that constrains it.
    pub atoms: Vec<FlatAtom>,
}

impl Translation {
    /// Number of flat atoms the single reference expanded into.
    pub fn conjuncts(&self) -> usize {
        self.atoms.len()
    }
}

/// Stateful translator (generates fresh auxiliary variables).
#[derive(Debug, Default, Clone)]
pub struct Translator {
    counter: usize,
    skolems: usize,
}

impl Translator {
    /// A fresh translator.
    pub fn new() -> Self {
        Self::default()
    }

    /// Number of auxiliary variables generated so far.
    pub fn aux_variables(&self) -> usize {
        self.counter
    }

    /// Number of skolem terms generated so far.
    pub fn skolem_terms(&self) -> usize {
        self.skolems
    }

    fn fresh(&mut self) -> FlatTerm {
        self.counter += 1;
        FlatTerm::Var(Var::new(format!("_P{}", self.counter)))
    }

    /// Translate a reference in body position.
    pub fn reference(&mut self, term: &Term) -> Result<Translation> {
        let mut atoms = Vec::new();
        let result = self.body_term(term, &mut atoms)?;
        Ok(Translation { result, atoms })
    }

    /// Translate a body literal.  A positive literal contributes its atoms as
    /// positive literals; a negated literal contributes one negated group.
    pub fn literal(&mut self, literal: &Literal) -> Result<Vec<FlatLiteral>> {
        let translation = self.reference(&literal.term)?;
        if literal.positive {
            Ok(translation.atoms.into_iter().map(FlatLiteral::Pos).collect())
        } else if translation.atoms.is_empty() {
            Err(FlogicError::Untranslatable(format!(
                "negated simple reference `{}` carries no atom to negate",
                literal.term
            )))
        } else {
            Ok(vec![FlatLiteral::NegGroup(translation.atoms)])
        }
    }

    /// Translate a rule.  Head paths become skolem terms; head filter values
    /// that are themselves paths become body look-ups.
    pub fn rule(&mut self, rule: &Rule) -> Result<FlatRule> {
        let mut body = Vec::new();
        for literal in &rule.body {
            body.extend(self.literal(literal)?);
        }
        let mut head_atoms = Vec::new();
        let mut extra_body = Vec::new();
        self.head_term(&rule.head, &mut head_atoms, &mut extra_body)?;
        if head_atoms.is_empty() {
            return Err(FlogicError::InvalidHead(format!(
                "head `{}` asserts nothing (a bare name or variable cannot be a head)",
                rule.head
            )));
        }
        body.extend(extra_body.into_iter().map(FlatLiteral::Pos));
        Ok(FlatRule { head: head_atoms, body })
    }

    /// Translate a query.
    pub fn query(&mut self, query: &Query) -> Result<FlatQuery> {
        let mut body = Vec::new();
        for literal in &query.body {
            body.extend(self.literal(literal)?);
        }
        Ok(FlatQuery {
            body,
            answer_variables: query.variables(),
        })
    }

    /// Translate a whole program and report counters.
    pub fn program(&mut self, program: &Program) -> Result<(FlatProgram, TranslationStats)> {
        let mut flat = FlatProgram::new();
        for rule in &program.rules {
            flat.rules.push(self.rule(rule)?);
        }
        for query in &program.queries {
            flat.queries.push(self.query(query)?);
        }
        let stats = TranslationStats {
            rules: flat.rules.len(),
            queries: flat.queries.len(),
            flat_atoms: flat.atom_count(),
            aux_variables: self.counter,
            skolem_terms: self.skolems,
        };
        Ok((flat, stats))
    }

    // ------------------------------------------------------------------ body

    fn body_term(&mut self, term: &Term, atoms: &mut Vec<FlatAtom>) -> Result<FlatTerm> {
        match term {
            Term::Name(n) => Ok(FlatTerm::Name(n.clone())),
            Term::Var(v) => Ok(FlatTerm::Var(v.clone())),
            Term::Paren(t) => self.body_term(t, atoms),
            Term::Path(p) => {
                let receiver = self.body_term(&p.receiver, atoms)?;
                let method = self.body_term(&p.method, atoms)?;
                let args = p
                    .args
                    .iter()
                    .map(|a| self.body_term(a, atoms))
                    .collect::<Result<Vec<_>>>()?;
                let result = self.fresh();
                if p.set_valued {
                    atoms.push(FlatAtom::SetMember {
                        receiver,
                        method,
                        args,
                        member: result.clone(),
                    });
                } else {
                    atoms.push(FlatAtom::Scalar {
                        receiver,
                        method,
                        args,
                        result: result.clone(),
                    });
                }
                Ok(result)
            }
            Term::IsA(i) => {
                let receiver = self.body_term(&i.receiver, atoms)?;
                let class = self.body_term(&i.class, atoms)?;
                atoms.push(FlatAtom::IsA {
                    receiver: receiver.clone(),
                    class,
                });
                Ok(receiver)
            }
            Term::Molecule(m) => {
                let receiver = self.body_term(&m.receiver, atoms)?;
                for filter in &m.filters {
                    self.body_filter(&receiver, filter, atoms)?;
                }
                Ok(receiver)
            }
        }
    }

    fn body_filter(&mut self, receiver: &FlatTerm, filter: &Filter, atoms: &mut Vec<FlatAtom>) -> Result<()> {
        let method = self.body_term(&filter.method, atoms)?;
        let args = filter
            .args
            .iter()
            .map(|a| self.body_term(a, atoms))
            .collect::<Result<Vec<_>>>()?;
        match &filter.value {
            FilterValue::Scalar(t) => {
                let value = self.body_term(t, atoms)?;
                atoms.push(FlatAtom::Scalar {
                    receiver: receiver.clone(),
                    method,
                    args,
                    result: value,
                });
            }
            FilterValue::SetExplicit(ts) => {
                for t in ts {
                    let value = self.body_term(t, atoms)?;
                    atoms.push(FlatAtom::SetMember {
                        receiver: receiver.clone(),
                        method: method.clone(),
                        args: args.clone(),
                        member: value,
                    });
                }
            }
            FilterValue::SetRef(t) => {
                return Err(FlogicError::Untranslatable(format!(
                    "set-valued reference `{t}` as the value of a `->>` filter needs a set-at-a-time \
                     comparison; the flat fragment has none (the paper handles this case with \
                     stratification in the direct semantics)"
                )));
            }
            FilterValue::SigScalar(_) | FilterValue::SigSet(_) => {
                return Err(FlogicError::Untranslatable(
                    "signature declarations are a typing extension outside the flat data fragment".into(),
                ));
            }
        }
        Ok(())
    }

    // ------------------------------------------------------------------ head

    /// Translate a head reference.  Returns the flat term denoting the object
    /// the head describes; pushes head atoms and (for filter-value look-ups)
    /// extra body atoms.
    fn head_term(&mut self, term: &Term, head: &mut Vec<FlatAtom>, body: &mut Vec<FlatAtom>) -> Result<FlatTerm> {
        match term {
            Term::Name(n) => Ok(FlatTerm::Name(n.clone())),
            Term::Var(v) => Ok(FlatTerm::Var(v.clone())),
            Term::Paren(t) => self.head_term(t, head, body),
            Term::Path(p) => {
                if p.set_valued {
                    return Err(FlogicError::InvalidHead(format!(
                        "set-valued path `{term}` cannot be asserted in a rule head"
                    )));
                }
                let receiver = self.head_term(&p.receiver, head, body)?;
                let method = self.head_term(&p.method, head, body)?;
                let args = p
                    .args
                    .iter()
                    .map(|a| self.body_term(a, body))
                    .collect::<Result<Vec<_>>>()?;
                let skolem = self.skolemize(&method, &receiver, &args);
                head.push(FlatAtom::Scalar {
                    receiver,
                    method,
                    args,
                    result: skolem.clone(),
                });
                Ok(skolem)
            }
            Term::IsA(i) => {
                let receiver = self.head_term(&i.receiver, head, body)?;
                let class = self.head_term(&i.class, head, body)?;
                head.push(FlatAtom::IsA {
                    receiver: receiver.clone(),
                    class,
                });
                Ok(receiver)
            }
            Term::Molecule(m) => {
                let receiver = self.head_term(&m.receiver, head, body)?;
                for filter in &m.filters {
                    self.head_filter(&receiver, filter, head, body)?;
                }
                Ok(receiver)
            }
        }
    }

    fn head_filter(
        &mut self,
        receiver: &FlatTerm,
        filter: &Filter,
        head: &mut Vec<FlatAtom>,
        body: &mut Vec<FlatAtom>,
    ) -> Result<()> {
        let method = self.head_term(&filter.method, head, body)?;
        let args = filter
            .args
            .iter()
            .map(|a| self.body_term(a, body))
            .collect::<Result<Vec<_>>>()?;
        match &filter.value {
            FilterValue::Scalar(t) => {
                let value = self.head_value(t, body)?;
                head.push(FlatAtom::Scalar {
                    receiver: receiver.clone(),
                    method,
                    args,
                    result: value,
                });
            }
            FilterValue::SetExplicit(ts) => {
                for t in ts {
                    let value = self.head_value(t, body)?;
                    head.push(FlatAtom::SetMember {
                        receiver: receiver.clone(),
                        method: method.clone(),
                        args: args.clone(),
                        member: value,
                    });
                }
            }
            FilterValue::SetRef(t) => {
                // `p2[friends ->> p1..assistants].`  —  every object the inner
                // reference denotes becomes a member; the inner reference is a
                // body look-up whose auxiliary result variable appears in the
                // head (formula (4.4)).
                let member = self.body_term(t, body)?;
                head.push(FlatAtom::SetMember {
                    receiver: receiver.clone(),
                    method,
                    args,
                    member,
                });
            }
            FilterValue::SigScalar(_) | FilterValue::SigSet(_) => {
                return Err(FlogicError::Untranslatable(
                    "signature declarations are a typing extension outside the flat data fragment".into(),
                ));
            }
        }
        Ok(())
    }

    /// A filter *value* inside a head is a look-up, not a definition: names
    /// and variables pass through, anything composite is translated in body
    /// mode (`street -> X.street` reads the existing street).
    fn head_value(&mut self, term: &Term, body: &mut Vec<FlatAtom>) -> Result<FlatTerm> {
        match term {
            Term::Name(n) => Ok(FlatTerm::Name(n.clone())),
            Term::Var(v) => Ok(FlatTerm::Var(v.clone())),
            Term::Paren(t) => self.head_value(t, body),
            _ => self.body_term(term, body),
        }
    }

    /// The skolem term naming the object a head path denotes: `m(t0, a1..ak)`
    /// when the method is a name, `apply(m, t0, a1..ak)` when the method is
    /// itself a complex term (HiLog-style, needed e.g. for `(M.tc)`).
    fn skolemize(&mut self, method: &FlatTerm, receiver: &FlatTerm, args: &[FlatTerm]) -> FlatTerm {
        self.skolems += 1;
        let mut sk_args = Vec::with_capacity(args.len() + 2);
        let functor = match method {
            FlatTerm::Name(n) => n.to_string(),
            other => {
                sk_args.push(other.clone());
                "apply".to_string()
            }
        };
        sk_args.push(receiver.clone());
        sk_args.extend(args.iter().cloned());
        FlatTerm::skolem(functor, sk_args)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pathlog_core::program::{Literal, Program, Query, Rule};

    fn name(s: &str) -> Term {
        Term::name(s)
    }

    #[test]
    fn simple_references_translate_to_themselves() {
        let mut tr = Translator::new();
        let t = tr.reference(&name("mary")).unwrap();
        assert_eq!(t.result, FlatTerm::name("mary"));
        assert!(t.atoms.is_empty());
        let t = tr.reference(&Term::var("X")).unwrap();
        assert_eq!(t.result, FlatTerm::var("X"));
        assert!(t.atoms.is_empty());
    }

    #[test]
    fn a_path_step_becomes_one_atom_with_an_aux_variable() {
        let mut tr = Translator::new();
        let t = tr.reference(&name("mary").scalar("spouse")).unwrap();
        assert_eq!(t.conjuncts(), 1);
        assert_eq!(t.atoms[0].to_string(), "mary[spouse -> _P1]");
        assert_eq!(t.result, FlatTerm::var("_P1"));
    }

    #[test]
    fn nested_reference_expands_into_a_conjunction() {
        // mary.spouse[boss -> mary].age — 3 atoms.
        let mut tr = Translator::new();
        let reference = name("mary")
            .scalar("spouse")
            .filter(Filter::scalar("boss", name("mary")))
            .scalar("age");
        let t = tr.reference(&reference).unwrap();
        assert_eq!(t.conjuncts(), 3);
        assert_eq!(t.atoms[0].to_string(), "mary[spouse -> _P1]");
        assert_eq!(t.atoms[1].to_string(), "_P1[boss -> mary]");
        assert_eq!(t.atoms[2].to_string(), "_P1[age -> _P2]");
    }

    #[test]
    fn the_paper_2_1_reference_expands_into_six_atoms() {
        // X:employee[age->30; city->newYork]..vehicles:automobile[cylinders->4].color[Z]
        let reference = Term::var("X")
            .isa("employee")
            .filters(vec![
                Filter::scalar("age", Term::int(30)),
                Filter::scalar("city", name("newYork")),
            ])
            .set("vehicles")
            .isa("automobile")
            .filter(Filter::scalar("cylinders", Term::int(4)))
            .scalar("color")
            .selector(Term::var("Z"));
        let mut tr = Translator::new();
        let t = tr.reference(&reference).unwrap();
        // isa(X, employee), age, city, vehicles-member, isa(automobile),
        // cylinders, color, self-selector = 8 atoms.
        assert_eq!(t.conjuncts(), 8);
        let rendered: Vec<String> = t.atoms.iter().map(|a| a.to_string()).collect();
        assert!(rendered.contains(&"X : employee".to_string()));
        assert!(rendered.contains(&"X[age -> 30]".to_string()));
        assert!(rendered.iter().any(|a| a.contains("[vehicles ->> {")));
        assert!(rendered.iter().any(|a| a.contains("[cylinders -> 4]")));
        assert!(rendered.iter().any(|a| a.contains("[self -> Z]")));
    }

    #[test]
    fn set_ref_filters_in_bodies_are_untranslatable() {
        // ... <- X[friends ->> p1..assistants]
        let body_term = Term::var("X").filter(Filter::set_ref("friends", name("p1").set("assistants")));
        let rule = Rule::new(Term::var("X").isa("popular"), vec![Literal::pos(body_term)]);
        let err = Translator::new().rule(&rule).unwrap_err();
        assert!(matches!(err, FlogicError::Untranslatable(_)));
    }

    #[test]
    fn signatures_are_untranslatable() {
        let sig = Term::name("person").filter(Filter {
            method: name("age"),
            args: vec![],
            value: FilterValue::SigScalar(vec![name("integer")]),
        });
        let err = Translator::new().reference(&sig).unwrap_err();
        assert!(matches!(err, FlogicError::Untranslatable(_)));
    }

    #[test]
    fn head_paths_become_skolem_terms() {
        // X.address[street -> X.street; city -> X.city] <- X : person.
        let head = Term::var("X").scalar("address").filters(vec![
            Filter::scalar("street", Term::var("X").scalar("street")),
            Filter::scalar("city", Term::var("X").scalar("city")),
        ]);
        let rule = Rule::new(head, vec![Literal::pos(Term::var("X").isa("person"))]);
        let flat = Translator::new().rule(&rule).unwrap();
        // head: X[address -> address(X)], address(X)[street -> _], address(X)[city -> _]
        assert_eq!(flat.head.len(), 3);
        assert_eq!(flat.head[0].to_string(), "X[address -> address(X)]");
        assert!(flat.head[1].to_string().starts_with("address(X)[street -> "));
        // body: X : person plus the two look-ups for X.street / X.city.
        assert_eq!(flat.body.len(), 3);
        assert!(flat.unsafe_head_variables().is_empty());
    }

    #[test]
    fn head_set_filters_with_set_ref_move_the_member_into_the_body() {
        // p2[friends ->> p1..assistants].
        let head = name("p2").filter(Filter::set_ref("friends", name("p1").set("assistants")));
        let rule = Rule::fact(head);
        let flat = Translator::new().rule(&rule).unwrap();
        assert_eq!(flat.head.len(), 1);
        assert!(flat.head[0].to_string().starts_with("p2[friends ->> {"));
        assert_eq!(flat.body.len(), 1);
        assert!(flat.body[0].to_string().starts_with("p1[assistants ->> {"));
    }

    #[test]
    fn generic_tc_head_uses_an_apply_skolem() {
        // X[(M.tc) ->> {Y}] <- X[M ->> {Y}].
        let head = Term::var("X").filter(Filter::set(Term::var("M").scalar("tc").paren(), vec![Term::var("Y")]));
        let body = Term::var("X").filter(Filter::set(Term::var("M"), vec![Term::var("Y")]));
        let rule = Rule::new(head, vec![Literal::pos(body)]);
        let flat = Translator::new().rule(&rule).unwrap();
        // The method position `(M.tc)` is itself a head path: the skolem is
        // tc(M), linked by a head atom M[tc -> tc(M)].
        let rendered: Vec<String> = flat.head.iter().map(|a| a.to_string()).collect();
        assert!(
            rendered.contains(&"M[tc -> tc(M)]".to_string()),
            "head was {rendered:?}"
        );
        assert!(
            rendered.contains(&"X[tc(M) ->> {Y}]".to_string()),
            "head was {rendered:?}"
        );
    }

    #[test]
    fn negated_literals_become_negated_groups() {
        let rule = Rule::new(
            Term::var("X").isa("bachelor"),
            vec![
                Literal::pos(Term::var("X").isa("person")),
                Literal::neg(Term::var("X").scalar("spouse")),
            ],
        );
        let flat = Translator::new().rule(&rule).unwrap();
        assert_eq!(flat.body.len(), 2);
        assert!(matches!(flat.body[1], FlatLiteral::NegGroup(_)));
    }

    #[test]
    fn negating_a_bare_name_is_rejected() {
        let err = Translator::new().literal(&Literal::neg(name("mary"))).unwrap_err();
        assert!(matches!(err, FlogicError::Untranslatable(_)));
    }

    #[test]
    fn bare_variable_heads_are_rejected() {
        let rule = Rule::new(Term::var("X"), vec![Literal::pos(Term::var("X").isa("person"))]);
        let err = Translator::new().rule(&rule).unwrap_err();
        assert!(matches!(err, FlogicError::InvalidHead(_)));
    }

    #[test]
    fn set_valued_head_paths_are_rejected() {
        let rule = Rule::new(
            Term::var("X").set("kids"),
            vec![Literal::pos(Term::var("X").isa("person"))],
        );
        let err = Translator::new().rule(&rule).unwrap_err();
        assert!(matches!(err, FlogicError::InvalidHead(_)));
    }

    #[test]
    fn program_translation_reports_stats() {
        let mut program = Program::new();
        program.push_rule(Rule::fact(name("p1").isa("employee")));
        program.push_rule(Rule::new(
            Term::var("X")
                .scalar("boss")
                .filter(Filter::scalar("worksFor", Term::var("D"))),
            vec![Literal::pos(
                Term::var("X")
                    .isa("employee")
                    .filter(Filter::scalar("worksFor", Term::var("D"))),
            )],
        ));
        program.push_query(Query::single(Term::var("X").isa("employee")));
        let (flat, stats) = Translator::new().program(&program).unwrap();
        assert_eq!(stats.rules, 2);
        assert_eq!(stats.queries, 1);
        assert_eq!(stats.skolem_terms, 1);
        assert_eq!(stats.flat_atoms, flat.atom_count());
        assert!(stats.flat_atoms >= 5);
    }

    #[test]
    fn query_answer_variables_exclude_aux_variables() {
        let q = Query::single(
            Term::var("X")
                .isa("employee")
                .set("vehicles")
                .scalar("color")
                .selector(Term::var("Z")),
        );
        let flat = Translator::new().query(&q).unwrap();
        assert_eq!(flat.answer_variables, vec![Var::new("X"), Var::new("Z")]);
        assert!(flat.atom_count() >= 3);
    }

    #[test]
    fn method_arguments_are_translated_in_paths() {
        // john.salary@(1994)
        let reference = name("john").scalar_args("salary", vec![Term::int(1994)]);
        let t = Translator::new().reference(&reference).unwrap();
        assert_eq!(t.atoms[0].to_string(), "john[salary@(1994) -> _P1]");
    }

    #[test]
    fn translation_struct_counts_conjuncts() {
        let t = Translation {
            result: FlatTerm::name("x"),
            atoms: vec![],
        };
        assert_eq!(t.conjuncts(), 0);
    }
}
