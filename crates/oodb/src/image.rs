//! A maintained PathLog image of an [`ObjectStore`](crate::ObjectStore).
//!
//! Both the constraint guard's shadow and the serving layer's published
//! snapshots need the same thing: a [`Structure`] that starts as
//! [`ObjectStore::to_structure`](crate::ObjectStore::to_structure) and is
//! then kept in sync by replaying transaction logs instead of being rebuilt
//! from scratch.  [`StoreImage`] is that replay logic, extracted from the
//! guard so there is exactly one implementation of the `Change` → structure
//! mapping (and one interning convention for the pseudo value classes).

use pathlog_core::prelude::*;

use crate::store::ObjectStore;
use crate::txn::Change;
use crate::Value;

/// A [`Structure`] image of an object store, kept current by replaying
/// transaction undo logs (the crate-private `Change` records).
///
/// The image's facts are always exactly those of
/// [`ObjectStore::to_structure`] at the same store version — oid
/// *assignment* may differ after replays (interning order is append-only),
/// but `canonical_dump()` is insertion-order invariant, so images built by
/// different replay histories are bit-identical at the dump level.
#[derive(Debug, Clone)]
pub struct StoreImage {
    structure: Structure,
}

impl StoreImage {
    /// Build the image of `store`'s current contents from scratch.
    pub fn of_store(store: &ObjectStore) -> Self {
        StoreImage {
            structure: store.to_structure(),
        }
    }

    /// The image structure.
    pub fn structure(&self) -> &Structure {
        &self.structure
    }

    /// Mutable access for checkers that thread watermarks through the
    /// image (the guard's incremental `ConstraintChecker`).
    pub(crate) fn structure_mut(&mut self) -> &mut Structure {
        &mut self.structure
    }

    /// Intern a store value, classifying literals into the pseudo value
    /// classes exactly like [`ObjectStore::to_structure`].
    pub(crate) fn intern(&mut self, value: &Value) -> Oid {
        let oid = self.structure.ensure_name(&value.to_name());
        let class = match value {
            Value::Int(_) => Some("integer"),
            Value::Str(_) => Some("string"),
            Value::Atom(_) => Some("atom"),
            Value::Ref(_) => None,
        };
        if let Some(class) = class {
            let c = self.structure.atom(class);
            self.structure.add_isa(oid, c);
        }
        oid
    }

    /// Intern a plain atom (method or receiver name).
    pub(crate) fn atom(&mut self, name: &str) -> Oid {
        self.structure.atom(name)
    }

    /// Replay a transaction's undo log onto the image, in order.
    pub(crate) fn apply(&mut self, log: &[Change]) {
        for change in log {
            match change {
                Change::ScalarSet {
                    obj,
                    attr,
                    value,
                    previous,
                } => {
                    let m = self.structure.atom(attr);
                    let r = self.structure.atom(obj);
                    let v = self.intern(value);
                    if previous.is_some() {
                        self.structure.retract_scalar(m, r, &[]);
                    }
                    self.structure
                        .assert_scalar(m, r, &[], v)
                        .expect("previous scalar value was just retracted");
                }
                Change::SetAdded { obj, attr, value } => {
                    let m = self.structure.atom(attr);
                    let r = self.structure.atom(obj);
                    let v = self.intern(value);
                    self.structure.assert_set_member(m, r, &[], v);
                }
                Change::SetRemoved { obj, attr, value } => {
                    let m = self.structure.atom(attr);
                    let r = self.structure.atom(obj);
                    let v = self.intern(value);
                    self.structure.retract_set_member(m, r, &[], v);
                }
                Change::ScalarCleared { obj, attr, .. } => {
                    let m = self.structure.atom(attr);
                    let r = self.structure.atom(obj);
                    self.structure.retract_scalar(m, r, &[]);
                }
            }
        }
    }

    /// Undo [`StoreImage::apply`]: inverse operations in reverse order,
    /// mirroring the transaction's own rollback.
    pub(crate) fn revert(&mut self, log: &[Change]) {
        for change in log.iter().rev() {
            match change {
                Change::ScalarSet {
                    obj, attr, previous, ..
                } => {
                    let m = self.structure.atom(attr);
                    let r = self.structure.atom(obj);
                    self.structure.retract_scalar(m, r, &[]);
                    if let Some(previous) = previous {
                        let v = self.intern(previous);
                        self.structure
                            .assert_scalar(m, r, &[], v)
                            .expect("restoring a previously valid image value");
                    }
                }
                Change::SetAdded { obj, attr, value } => {
                    let m = self.structure.atom(attr);
                    let r = self.structure.atom(obj);
                    let v = self.intern(value);
                    self.structure.retract_set_member(m, r, &[], v);
                }
                Change::SetRemoved { obj, attr, value } => {
                    let m = self.structure.atom(attr);
                    let r = self.structure.atom(obj);
                    let v = self.intern(value);
                    self.structure.assert_set_member(m, r, &[], v);
                }
                Change::ScalarCleared { obj, attr, previous } => {
                    let m = self.structure.atom(attr);
                    let r = self.structure.atom(obj);
                    let v = self.intern(previous);
                    self.structure
                        .assert_scalar(m, r, &[], v)
                        .expect("restoring a previously cleared image value");
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Schema;

    fn store() -> ObjectStore {
        let mut db = ObjectStore::with_schema(Schema::company());
        db.create("ann", "person").unwrap();
        db.create("bob", "person").unwrap();
        db.set("ann", "age", Value::Int(30)).unwrap();
        db
    }

    /// Two images with the same replay history are bit-identical — the
    /// invariant the serving cross-checks build on.  (Replay is *not*
    /// dump-identical to a fresh `to_structure` rebuild: interning is
    /// append-only, so superseded value names stay in the table.  Identity
    /// is between identical histories, which is exactly what a sequential
    /// oracle replays.)
    #[test]
    fn identical_histories_are_dump_identical() {
        let mut db = store();
        let mut a = StoreImage::of_store(&db);
        let b0 = a.clone();
        let mut txn = db.begin();
        txn.set("ann", "age", Value::Int(31)).unwrap();
        txn.add("ann", "friends", Value::obj("bob")).unwrap();
        let log = txn.log_snapshot();
        txn.commit().unwrap();
        // one bulk apply vs change-by-change
        a.apply(&log);
        let mut b = b0;
        for change in &log {
            b.apply(std::slice::from_ref(change));
        }
        assert_eq!(a.structure().canonical_dump(), b.structure().canonical_dump());
        // and the replayed facts match the store semantically
        let engine = pathlog_core::engine::Engine::new();
        let q = pathlog_core::program::Query::single(pathlog_core::term::Term::name("ann").filter(
            pathlog_core::term::Filter::scalar(
                pathlog_core::term::Term::name("age"),
                pathlog_core::term::Term::var("A"),
            ),
        ));
        let sols = engine.query(a.structure(), &q).unwrap();
        assert_eq!(sols.len(), 1, "ann has exactly one (updated) age in the image");
    }

    #[test]
    fn revert_undoes_apply_at_the_fact_level() {
        let mut db = store();
        let mut once = StoreImage::of_store(&db);
        let mut round_trip = once.clone();
        let mut txn = db.begin();
        txn.set("ann", "age", Value::Int(40)).unwrap();
        txn.add("bob", "friends", Value::obj("ann")).unwrap();
        txn.remove("bob", "friends", &Value::obj("ann")).unwrap();
        txn.clear("ann", "age").unwrap();
        txn.set("ann", "age", Value::Int(41)).unwrap();
        let log = txn.log_snapshot();
        drop(txn); // roll back the store too
        once.apply(&log);
        round_trip.apply(&log);
        round_trip.revert(&log);
        round_trip.apply(&log);
        // revert + re-apply converges on the single-apply image exactly
        assert_eq!(
            round_trip.structure().canonical_dump(),
            once.structure().canonical_dump()
        );
    }
}
