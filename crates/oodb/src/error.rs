//! Errors of the object store.

use std::fmt;

/// Errors raised by schema definition, object manipulation, integrity
/// checking and persistence.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum StoreError {
    /// A class, attribute or object name was defined twice.
    Duplicate(String),
    /// A referenced class, attribute or object does not exist.
    Unknown(String),
    /// An operation violates the schema (wrong scalarity, wrong domain or
    /// range class).
    SchemaViolation(String),
    /// The persistence format could not be parsed.
    Format(String),
}

impl fmt::Display for StoreError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            StoreError::Duplicate(m) => write!(f, "duplicate definition: {m}"),
            StoreError::Unknown(m) => write!(f, "unknown name: {m}"),
            StoreError::SchemaViolation(m) => write!(f, "schema violation: {m}"),
            StoreError::Format(m) => write!(f, "format error: {m}"),
        }
    }
}

impl std::error::Error for StoreError {}

/// Result alias for store operations.
pub type Result<T> = std::result::Result<T, StoreError>;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_variants() {
        assert!(StoreError::Duplicate("employee".into())
            .to_string()
            .contains("duplicate"));
        assert!(StoreError::Unknown("x".into()).to_string().contains("unknown"));
        assert!(StoreError::SchemaViolation("y".into()).to_string().contains("schema"));
        assert!(StoreError::Format("line 3".into()).to_string().contains("format"));
    }
}
