//! Errors of the object store.

use std::fmt;

/// Errors raised by schema definition, object manipulation, integrity
/// checking and persistence.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum StoreError {
    /// A class, attribute or object name was defined twice.
    Duplicate(String),
    /// A referenced class, attribute or object does not exist.
    Unknown(String),
    /// An operation violates the schema (wrong scalarity, wrong domain or
    /// range class).
    SchemaViolation(String),
    /// A [`DeleteMode::Restrict`](crate::DeleteMode::Restrict) delete was
    /// refused because the object is still referenced.  Carries the object
    /// and every referrer, sorted, so callers can report (or cascade)
    /// precisely instead of parsing a message.
    StillReferenced {
        /// The object whose deletion was refused.
        object: String,
        /// The objects whose attributes still reference it.
        referrers: Vec<String>,
    },
    /// Integrity-constraint machinery failed to evaluate (e.g. a resource
    /// limit was hit while solving a constraint body).
    Constraint(String),
    /// The persistence format could not be parsed.
    Format(String),
}

impl fmt::Display for StoreError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            StoreError::Duplicate(m) => write!(f, "duplicate definition: {m}"),
            StoreError::Unknown(m) => write!(f, "unknown name: {m}"),
            StoreError::SchemaViolation(m) => write!(f, "schema violation: {m}"),
            StoreError::StillReferenced { object, referrers } => write!(
                f,
                "cannot delete {object}: still referenced by {}",
                referrers.join(", ")
            ),
            StoreError::Constraint(m) => write!(f, "constraint evaluation failed: {m}"),
            StoreError::Format(m) => write!(f, "format error: {m}"),
        }
    }
}

impl std::error::Error for StoreError {}

/// Result alias for store operations.
pub type Result<T> = std::result::Result<T, StoreError>;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_variants() {
        assert!(StoreError::Duplicate("employee".into())
            .to_string()
            .contains("duplicate"));
        assert!(StoreError::Unknown("x".into()).to_string().contains("unknown"));
        assert!(StoreError::SchemaViolation("y".into()).to_string().contains("schema"));
        assert!(StoreError::Format("line 3".into()).to_string().contains("format"));
        let e = StoreError::StillReferenced {
            object: "a1".into(),
            referrers: vec!["e1".into(), "e2".into()],
        };
        assert_eq!(e.to_string(), "cannot delete a1: still referenced by e1, e2");
        assert!(StoreError::Constraint("limit".into())
            .to_string()
            .contains("constraint"));
    }
}
