//! Text persistence for [`ObjectStore`].
//!
//! The format is a simple line-oriented dump, stable under round-tripping:
//!
//! ```text
//! class employee : person
//! attr  vehicles set person -> class vehicle
//! obj   e1 employee
//! set   e1 age int 30
//! add   e1 vehicles ref a1
//! ```
//!
//! Values are tagged (`ref`, `int`, `str`, `atom`); strings are quoted with
//! the same escaping the PathLog lexer uses.  Lines starting with `#` and
//! blank lines are ignored.

use std::fmt::Write as _;

use crate::error::{Result, StoreError};
use crate::schema::{AttrKind, Range, Schema};
use crate::store::{ObjectStore, Value};

/// Serialise a store (schema, objects, values) to the text format.
pub fn dump(store: &ObjectStore) -> String {
    let mut out = String::new();
    let schema = store.schema();
    for class in schema.classes() {
        if class.superclasses.is_empty() {
            let _ = writeln!(out, "class {}", class.name);
        } else {
            let _ = writeln!(out, "class {} : {}", class.name, class.superclasses.join(" "));
        }
    }
    for attr in schema.attrs() {
        let kind = match attr.kind {
            AttrKind::Scalar => "scalar",
            AttrKind::Set => "set",
        };
        let range = match &attr.range {
            Range::Class(c) => format!("class {c}"),
            Range::Integer => "int".to_string(),
            Range::Str => "str".to_string(),
            Range::Atom => "atom".to_string(),
            Range::Any => "any".to_string(),
        };
        let _ = writeln!(out, "attr {} {} {} -> {}", attr.name, kind, attr.domain, range);
    }
    for (_, obj) in store.objects() {
        let _ = writeln!(out, "obj {} {}", obj.name, obj.class);
    }
    for (_, obj) in store.objects() {
        for attr in schema.attrs() {
            if attr.kind == AttrKind::Scalar {
                if let Some(v) = store.get(&obj.name, &attr.name) {
                    let _ = writeln!(out, "set {} {} {}", obj.name, attr.name, value_text(v));
                }
            } else if let Some(vs) = store.get_set(&obj.name, &attr.name) {
                for v in vs {
                    let _ = writeln!(out, "add {} {} {}", obj.name, attr.name, value_text(v));
                }
            }
        }
    }
    out
}

/// Parse the text format back into a store.
pub fn load(text: &str) -> Result<ObjectStore> {
    let mut schema = Schema::new();
    let mut pending_objects: Vec<(String, String)> = Vec::new();
    let mut pending_scalar: Vec<(String, String, Value)> = Vec::new();
    let mut pending_set: Vec<(String, String, Value)> = Vec::new();

    for (lineno, raw) in text.lines().enumerate() {
        let line = raw.trim();
        if line.is_empty() || line.starts_with('#') {
            continue;
        }
        let mut words = line.split_whitespace();
        let keyword = words.next().unwrap_or_default();
        let rest: Vec<&str> = words.collect();
        let err = |msg: &str| StoreError::Format(format!("line {}: {msg}: {line}", lineno + 1));
        match keyword {
            "class" => {
                let name = rest.first().ok_or_else(|| err("missing class name"))?;
                let supers: Vec<&str> = if rest.len() > 2 && rest[1] == ":" {
                    rest[2..].to_vec()
                } else {
                    Vec::new()
                };
                schema.class(name, &supers).map_err(|e| err(&e.to_string()))?;
            }
            "attr" => {
                if rest.len() < 5 || rest[3] != "->" {
                    return Err(err("expected `attr <name> <scalar|set> <domain> -> <range>`"));
                }
                let kind = match rest[1] {
                    "scalar" => AttrKind::Scalar,
                    "set" => AttrKind::Set,
                    other => return Err(err(&format!("unknown attribute kind {other}"))),
                };
                let range = match rest[4] {
                    "int" => Range::Integer,
                    "str" => Range::Str,
                    "atom" => Range::Atom,
                    "any" => Range::Any,
                    "class" => Range::Class(rest.get(5).ok_or_else(|| err("missing range class"))?.to_string()),
                    other => return Err(err(&format!("unknown range {other}"))),
                };
                schema
                    .attr(rest[0], kind, rest[2], range)
                    .map_err(|e| err(&e.to_string()))?;
            }
            "obj" => {
                if rest.len() != 2 {
                    return Err(err("expected `obj <name> <class>`"));
                }
                pending_objects.push((rest[0].to_string(), rest[1].to_string()));
            }
            "set" | "add" => {
                if rest.len() < 4 {
                    return Err(err("expected `<set|add> <obj> <attr> <tag> <value>`"));
                }
                let value = parse_value(rest[2], &rest[3..]).ok_or_else(|| err("bad value"))?;
                if keyword == "set" {
                    pending_scalar.push((rest[0].to_string(), rest[1].to_string(), value));
                } else {
                    pending_set.push((rest[0].to_string(), rest[1].to_string(), value));
                }
            }
            other => return Err(err(&format!("unknown keyword {other}"))),
        }
    }

    schema.validate()?;
    let mut store = ObjectStore::with_schema(schema);
    for (name, class) in pending_objects {
        store.create(&name, &class)?;
    }
    for (obj, attr, value) in pending_scalar {
        store.set(&obj, &attr, value)?;
    }
    for (obj, attr, value) in pending_set {
        store.add(&obj, &attr, value)?;
    }
    Ok(store)
}

fn value_text(v: &Value) -> String {
    match v {
        Value::Ref(s) => format!("ref {s}"),
        Value::Int(i) => format!("int {i}"),
        Value::Atom(s) => format!("atom {s}"),
        Value::Str(s) => format!("str \"{}\"", s.replace('\\', "\\\\").replace('"', "\\\"")),
    }
}

fn parse_value(tag: &str, rest: &[&str]) -> Option<Value> {
    match tag {
        "ref" => Some(Value::Ref(rest.first()?.to_string())),
        "atom" => Some(Value::Atom(rest.first()?.to_string())),
        "int" => rest.first()?.parse().ok().map(Value::Int),
        "str" => {
            let joined = rest.join(" ");
            let inner = joined.strip_prefix('"')?.strip_suffix('"')?;
            Some(Value::Str(inner.replace("\\\"", "\"").replace("\\\\", "\\")))
        }
        _ => None,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::schema::Schema;

    fn sample() -> ObjectStore {
        let mut db = ObjectStore::with_schema(Schema::company());
        db.create("e1", "employee").unwrap();
        db.create("a1", "automobile").unwrap();
        db.set("e1", "age", Value::Int(30)).unwrap();
        db.set("e1", "street", Value::Str("Main \"St\"".into())).unwrap();
        db.set("e1", "city", Value::Atom("newYork".into())).unwrap();
        db.add("e1", "vehicles", Value::obj("a1")).unwrap();
        db.set("a1", "color", Value::Atom("red".into())).unwrap();
        db
    }

    #[test]
    fn dump_load_roundtrip() {
        let db = sample();
        let text = dump(&db);
        let loaded = load(&text).unwrap();
        assert_eq!(loaded.len(), db.len());
        assert_eq!(loaded.get("e1", "age"), Some(&Value::Int(30)));
        assert_eq!(loaded.get("e1", "street"), Some(&Value::Str("Main \"St\"".into())));
        assert_eq!(loaded.get_set("e1", "vehicles").unwrap().len(), 1);
        assert_eq!(loaded.get("a1", "color"), Some(&Value::Atom("red".into())));
        assert!(loaded.integrity_check().is_ok());
        // a second round-trip is byte-identical
        assert_eq!(dump(&loaded), text);
    }

    #[test]
    fn comments_and_blank_lines_are_ignored() {
        let text = "# a comment\n\nclass person\nobj p person\n";
        let db = load(text).unwrap();
        assert_eq!(db.len(), 1);
    }

    #[test]
    fn format_errors_are_reported_with_line_numbers() {
        let err = load("clazz person").unwrap_err();
        assert!(err.to_string().contains("line 1"));
        let err = load("class person\nattr age wrong person -> int").unwrap_err();
        assert!(err.to_string().contains("line 2"));
        assert!(load("class person\nobj p").is_err());
        assert!(load("class person\nobj p person\nset p age int notanumber").is_err());
    }

    #[test]
    fn loading_checks_schema() {
        // value references an unknown object
        let text = "class person\nattr friend scalar person -> class person\nobj p person\nset p friend ref ghost";
        assert!(load(text).is_err());
    }
}
