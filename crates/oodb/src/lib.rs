//! # pathlog-oodb
//!
//! The extensional object-oriented database substrate assumed by the paper:
//! a schema (classes, subclass hierarchy, typed scalar/set attributes), an
//! in-memory [`ObjectStore`] with integrity checking and text persistence,
//! and conversion into the semantic structures
//! ([`pathlog_core::structure::Structure`]) that PathLog's direct semantics
//! and rule engine evaluate against.
//!
//! ```
//! use pathlog_oodb::{ObjectStore, Schema, Value};
//!
//! let mut db = ObjectStore::with_schema(Schema::company());
//! db.create("e1", "employee").unwrap();
//! db.create("a1", "automobile").unwrap();
//! db.set("e1", "age", Value::Int(30)).unwrap();
//! db.add("e1", "vehicles", Value::obj("a1")).unwrap();
//! db.set("a1", "color", Value::Atom("red".into())).unwrap();
//! db.integrity_check().unwrap();
//!
//! let structure = db.to_structure();
//! assert!(structure.stats().scalar_facts >= 2);
//! ```

#![warn(missing_docs)]
#![forbid(unsafe_code)]

mod error;
mod guard;
mod image;
mod persist;
mod schema;
mod session;
mod store;
mod txn;

pub use error::{Result, StoreError};
pub use guard::{CommitError, CommitReceipt, ConstraintGuard};
pub use image::StoreImage;
pub use persist::{dump, load};
pub use schema::{AttrDef, AttrKind, ClassDef, Range, Schema};
pub use session::Session;
pub use store::{ObjId, ObjectStore, StoreStats, StoredObject, Value};
pub use txn::{DeleteMode, Transaction};
