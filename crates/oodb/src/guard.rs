//! Check-on-commit integrity constraints over the object store.
//!
//! [`ConstraintGuard`] is installed into an [`ObjectStore`] via
//! [`ObjectStore::set_constraints`] and consulted by every
//! [`Transaction::commit`](crate::Transaction::commit).  It keeps a
//! **shadow** [`Structure`] — the PathLog image of the store, as produced by
//! [`ObjectStore::to_structure`] — permanently in sync, so constraint
//! checking is *incremental*: the shadow's watermarks survive across
//! commits, and each check re-solves only the constraints whose read keys
//! intersect the facts the transaction actually changed (see
//! [`pathlog_core::constraints`]).
//!
//! ## Commit protocol
//!
//! A commit is **atomic with respect to constraints**: either every change
//! in the transaction's undo log becomes durable, or none does.
//!
//! 1. The transaction's log is replayed onto the shadow (or, if the store
//!    was mutated out-of-band since the last sync, the shadow is rebuilt
//!    from scratch — sound, just not incremental).
//! 2. The checker re-solves the affected constraints.  Violations that were
//!    already *accepted* — present at install time, or warned/quarantined by
//!    an earlier commit and still standing — do not block anything: the
//!    guard is inconsistency-tolerant and polices **new** damage only.
//! 3. New violations are dispatched per the violated constraint's
//!    [`ConstraintPolicy`]:
//!    * **Reject** — the shadow is reverted, the commit fails with
//!      [`CommitError::Rejected`], and the transaction's `Drop` rolls the
//!      store back.  `rolled_back` in the error is the full log length: the
//!      committed/rolled-back boundary is all-or-nothing by construction.
//!    * **Warn** — the commit succeeds; the violations are listed in
//!      [`CommitReceipt::warnings`].
//!    * **Quarantine** — the commit succeeds; the transaction's facts that
//!      feed the violated constraint are tagged in the guard's
//!      [`Quarantine`] ledger (not removed), and
//!      [`ObjectStore::tolerant_query`] degrades gracefully: answers
//!      depending on tagged facts carry a tainted consistency status.

use std::collections::BTreeSet;
use std::fmt;
use std::sync::Arc;

use pathlog_core::analysis::{AnalysisInput, Diagnostics};
use pathlog_core::constraints::{
    tolerant_query, CheckStats, ConstraintChecker, ConstraintPolicy, ConstraintSet, ConstraintViolation, Quarantine,
    TolerantAnswers,
};
use pathlog_core::engine::Engine;
use pathlog_core::names::Name;
use pathlog_core::program::{DepKey, Query};
use pathlog_core::structure::Structure;

use crate::image::StoreImage;
use crate::store::{ObjectStore, Value};
use crate::txn::Change;

/// Proof of a successful commit, making the committed/rolled-back boundary
/// explicit: `committed` changes became durable, zero were rolled back.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CommitReceipt {
    /// Number of undo-log changes made durable (the whole transaction —
    /// commits are atomic).
    pub committed: usize,
    /// `true` if a constraint guard was installed and the commit was
    /// checked against it.
    pub checked: bool,
    /// New violations of `Warn`-policy constraints.  The commit stands;
    /// these are advisory.
    pub warnings: Vec<ConstraintViolation>,
    /// New violations of `Quarantine`-policy constraints.  The commit
    /// stands; the transaction's facts feeding each violated constraint
    /// were tagged in the quarantine ledger.
    pub quarantined: Vec<ConstraintViolation>,
    /// The epoch this commit published to the store's snapshot serving
    /// layer — the store `version` after the commit, one version authority
    /// shared with the guard's out-of-band detection.  `None` when serving
    /// is inactive (no reader session ever started on the store).
    pub epoch: Option<u64>,
}

impl CommitReceipt {
    /// Receipt of a commit that no guard inspected.
    pub(crate) fn unchecked(committed: usize) -> Self {
        CommitReceipt {
            committed,
            checked: false,
            warnings: Vec::new(),
            quarantined: Vec::new(),
            epoch: None,
        }
    }

    /// `true` if the commit passed with neither warnings nor quarantines.
    pub fn is_clean(&self) -> bool {
        self.warnings.is_empty() && self.quarantined.is_empty()
    }
}

/// Why a commit did not go through.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum CommitError {
    /// The transaction would introduce new violations of `Reject`-policy
    /// constraints.  Nothing was committed: all `rolled_back` changes were
    /// undone (the boundary is all-or-nothing).
    Rejected {
        /// The new violations, grouped by constraint in declaration order.
        violations: Vec<ConstraintViolation>,
        /// Number of undo-log changes rolled back (the whole transaction).
        rolled_back: usize,
    },
    /// Constraint evaluation itself failed (e.g. a resource limit); the
    /// transaction was rolled back because it could not be checked.
    Check(String),
}

impl fmt::Display for CommitError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CommitError::Rejected {
                violations,
                rolled_back,
            } => write!(
                f,
                "commit rejected, {rolled_back} change(s) rolled back: {}",
                violations.iter().map(|v| v.to_string()).collect::<Vec<_>>().join("; ")
            ),
            CommitError::Check(m) => write!(f, "commit could not be checked: {m}"),
        }
    }
}

impl std::error::Error for CommitError {}

/// A quarantined fact remembered by name, so the ledger survives shadow
/// rebuilds (oids are not stable across [`ObjectStore::to_structure`]).
#[derive(Debug, Clone, PartialEq, Eq)]
enum TaggedFact {
    Scalar {
        obj: String,
        attr: String,
        constraint: Arc<str>,
    },
    Member {
        obj: String,
        attr: String,
        value: Value,
        constraint: Arc<str>,
    },
}

/// The installed guard: checker + shadow + quarantine ledger.
#[derive(Debug, Clone)]
pub struct ConstraintGuard {
    checker: ConstraintChecker,
    /// The PathLog image of the store, kept in sync change-by-change (via
    /// [`StoreImage`]'s log replay) so the checker's watermarks stay valid
    /// across commits.
    shadow: StoreImage,
    /// Violations that do not block commits: present at install time, or
    /// admitted by an earlier commit under Warn/Quarantine.  Pruned to the
    /// still-standing ones after every successful commit, so a violation
    /// that gets fixed and later reintroduced counts as new again.
    accepted: BTreeSet<ConstraintViolation>,
    /// Oid-level quarantine ledger over the current shadow.
    quarantine: Quarantine,
    /// Name-level mirror of the ledger, used to rebuild `quarantine` when
    /// the shadow is rebuilt.
    tagged: Vec<TaggedFact>,
    /// Install-time static-analysis report over the constraint set
    /// (safety of denial bodies, always-empty reads against the store's
    /// image).  Advisory: installation proceeds regardless.
    diagnostics: Diagnostics,
    /// [`ObjectStore::version`] at the last moment shadow == store.  This
    /// is the *same* counter the serving layer publishes as the snapshot
    /// epoch ([`CommitReceipt::epoch`]) — one version authority, so a
    /// reader session starting between two commits can never make the
    /// guard look out-of-sync (no shadow-rebuild false positive).
    synced_version: u64,
}

impl ConstraintGuard {
    /// Build a guard over the store's current contents and check it fully
    /// once.  Returns the guard and the install-time violations (accepted,
    /// not fatal — see the module docs).
    pub(crate) fn install(
        constraints: ConstraintSet,
        engine: Engine,
        store: &ObjectStore,
    ) -> pathlog_core::error::Result<(Self, Vec<ConstraintViolation>)> {
        let mut shadow = StoreImage::of_store(store);
        let diagnostics = AnalysisInput::new()
            .constraints(&constraints)
            .structure(shadow.structure())
            .run()
            .diagnostics;
        let mut checker = ConstraintChecker::new(constraints, engine);
        let baseline = checker.check_full(shadow.structure_mut())?;
        let guard = ConstraintGuard {
            checker,
            shadow,
            accepted: baseline.iter().cloned().collect(),
            quarantine: Quarantine::new(),
            tagged: Vec::new(),
            diagnostics,
            synced_version: store.version(),
        };
        Ok((guard, baseline))
    }

    /// The constraints being enforced.
    pub fn constraints(&self) -> &ConstraintSet {
        self.checker.constraints()
    }

    /// Lifetime checker counters (incremental vs full solves).
    pub fn stats(&self) -> CheckStats {
        self.checker.stats()
    }

    /// The quarantine ledger.
    pub fn quarantine(&self) -> &Quarantine {
        &self.quarantine
    }

    /// The install-time static-analysis report over the constraint set:
    /// safety diagnostics for each denial body plus always-empty-read
    /// warnings judged against the store's contents at install time.
    /// Advisory — a diagnostic here never blocks installation or commits.
    pub fn diagnostics(&self) -> &Diagnostics {
        &self.diagnostics
    }

    /// The shadow structure (the store's PathLog image, post last sync).
    pub fn shadow(&self) -> &Structure {
        self.shadow.structure()
    }

    /// Violations currently tolerated (install-time baseline plus
    /// warned/quarantined ones still standing).
    pub fn accepted(&self) -> &BTreeSet<ConstraintViolation> {
        &self.accepted
    }

    pub(crate) fn synced_version(&self) -> u64 {
        self.synced_version
    }

    pub(crate) fn set_synced_version(&mut self, version: u64) {
        self.synced_version = version;
    }

    /// Answer `query` over the shadow in the guard engine's tolerance mode.
    pub fn tolerant_query(&self, query: &Query) -> pathlog_core::error::Result<TolerantAnswers> {
        tolerant_query(self.checker.engine(), self.shadow.structure(), &self.quarantine, query)
    }

    /// The commit protocol (see the module docs).  `store` already contains
    /// the transaction's mutations; `log` is its undo log;
    /// `begin_version` is the store version when the transaction began.
    pub(crate) fn check_commit(
        &mut self,
        store: &ObjectStore,
        log: &[Change],
        begin_version: u64,
    ) -> Result<CommitReceipt, CommitError> {
        let in_sync = self.synced_version == begin_version;
        if in_sync {
            self.shadow.apply(log);
        } else {
            // Out-of-band mutations since the last sync: the incremental
            // window is unsound, rebuild the shadow (which already includes
            // the transaction's changes) and re-tag the quarantine ledger.
            self.shadow = StoreImage::of_store(store);
            self.rebuild_quarantine();
        }
        let current = if in_sync {
            self.checker.check(self.shadow.structure_mut())
        } else {
            self.checker.check_full(self.shadow.structure_mut())
        };
        let current = match current {
            Ok(v) => v,
            Err(e) => {
                if in_sync {
                    self.shadow.revert(log);
                }
                return Err(CommitError::Check(e.to_string()));
            }
        };

        let mut rejected = Vec::new();
        let mut warnings = Vec::new();
        let mut quarantined = Vec::new();
        for violation in &current {
            if self.accepted.contains(violation) {
                continue;
            }
            let policy = self
                .checker
                .constraints()
                .get(&violation.constraint)
                .map(|c| c.policy())
                .unwrap_or(ConstraintPolicy::Reject);
            match policy {
                ConstraintPolicy::Reject => rejected.push(violation.clone()),
                ConstraintPolicy::Warn => warnings.push(violation.clone()),
                ConstraintPolicy::Quarantine => quarantined.push(violation.clone()),
            }
        }

        if !rejected.is_empty() {
            // Whether applied incrementally or baked into a rebuild, the
            // shadow holds the transaction's changes; undo them so it
            // matches the store the transaction's `Drop` will roll back to.
            self.shadow.revert(log);
            return Err(CommitError::Rejected {
                violations: rejected,
                rolled_back: log.len(),
            });
        }

        // Quarantine: tag the transaction's facts that feed each violated
        // constraint (matched on the constraint's read keys).
        for violation in &quarantined {
            self.tag_transaction_facts(log, violation);
        }

        // The commit stands: newly admitted violations join the accepted
        // set; accepted violations that no longer hold are pruned (their
        // quarantine tags are released too).
        let standing: BTreeSet<ConstraintViolation> = current.iter().cloned().collect();
        self.accepted = self
            .accepted
            .intersection(&standing)
            .cloned()
            .chain(warnings.iter().cloned())
            .chain(quarantined.iter().cloned())
            .collect();
        self.release_cleared_quarantines();
        self.synced_version = store.version();
        Ok(CommitReceipt {
            committed: log.len(),
            checked: true,
            warnings,
            quarantined,
            epoch: None,
        })
    }

    /// Tag the transaction's own additions that feed `violation`'s
    /// constraint: every logged fact whose attribute is one of the
    /// constraint's read keys.
    fn tag_transaction_facts(&mut self, log: &[Change], violation: &ConstraintViolation) {
        let Some(constraint) = self.checker.constraints().get(&violation.constraint) else {
            return;
        };
        let reads: BTreeSet<&str> = constraint
            .reads()
            .iter()
            .filter_map(|key| match key {
                DepKey::Known(Name::Atom(s)) => Some(s.as_str()),
                _ => None,
            })
            .collect();
        let name = violation.constraint.clone();
        let mut new_tags = Vec::new();
        for change in log {
            match change {
                Change::ScalarSet { obj, attr, .. } if reads.contains(attr.as_str()) => {
                    new_tags.push(TaggedFact::Scalar {
                        obj: obj.clone(),
                        attr: attr.clone(),
                        constraint: name.clone(),
                    });
                }
                Change::SetAdded { obj, attr, value } if reads.contains(attr.as_str()) => {
                    new_tags.push(TaggedFact::Member {
                        obj: obj.clone(),
                        attr: attr.clone(),
                        value: value.clone(),
                        constraint: name.clone(),
                    });
                }
                _ => {}
            }
        }
        for tag in new_tags {
            self.apply_tag(&tag);
            if !self.tagged.contains(&tag) {
                self.tagged.push(tag);
            }
        }
    }

    /// Mirror one name-level tag into the oid-level ledger.
    fn apply_tag(&mut self, tag: &TaggedFact) {
        match tag {
            TaggedFact::Scalar { obj, attr, constraint } => {
                let m = self.shadow.atom(attr);
                let r = self.shadow.atom(obj);
                self.quarantine.tag_scalar(m, r, Vec::new(), constraint.clone());
            }
            TaggedFact::Member {
                obj,
                attr,
                value,
                constraint,
            } => {
                let m = self.shadow.atom(attr);
                let r = self.shadow.atom(obj);
                let v = self.shadow.intern(value);
                self.quarantine.tag_set_member(m, r, Vec::new(), v, constraint.clone());
            }
        }
    }

    /// Rebuild the oid-level ledger from the name-level mirror after a
    /// shadow rebuild.
    fn rebuild_quarantine(&mut self) {
        self.quarantine = Quarantine::new();
        for tag in std::mem::take(&mut self.tagged) {
            self.apply_tag(&tag);
            self.tagged.push(tag);
        }
    }

    /// Drop quarantine tags of constraints whose violations all cleared.
    fn release_cleared_quarantines(&mut self) {
        let still_violated: BTreeSet<&Arc<str>> = self.accepted.iter().map(|v| &v.constraint).collect();
        let cleared: Vec<Arc<str>> = self
            .quarantine
            .constraints()
            .into_iter()
            .filter(|c| !still_violated.contains(c))
            .collect();
        for constraint in cleared {
            self.quarantine.clear_constraint(&constraint);
            self.tagged.retain(|tag| match tag {
                TaggedFact::Scalar { constraint: c, .. } | TaggedFact::Member { constraint: c, .. } => {
                    **c != *constraint
                }
            });
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::schema::Schema;
    use pathlog_core::builtins::LT;
    use pathlog_core::constraints::{ConsistencyStatus, Constraint};
    use pathlog_core::engine::{EvalOptions, Tolerance};
    use pathlog_core::program::Literal;
    use pathlog_core::term::{Filter, FilterValue, Term};

    /// `ic :- X : manager, X[salary -> S], S < 1000` — no manager may earn
    /// below 1000.
    fn underpaid(policy: ConstraintPolicy) -> Constraint {
        Constraint::new(
            "manager_underpaid",
            vec![
                Literal::pos(Term::var("X").isa("manager")),
                Literal::pos(Term::var("X").filter(Filter::scalar("salary", Term::var("S")))),
                Literal::pos(Term::var("S").filter(Filter {
                    method: Term::name(LT),
                    args: vec![Term::int(1000)],
                    value: FilterValue::Scalar(Term::var("S")),
                })),
            ],
            policy,
        )
        .unwrap()
    }

    /// `ic :- X[kids ->> {Y}], Y : manager` — kids must not be managers.
    fn kid_manager() -> Constraint {
        Constraint::new(
            "kid_manager",
            vec![
                Literal::pos(Term::var("X").filter(Filter::set("kids", vec![Term::var("Y")]))),
                Literal::pos(Term::var("Y").isa("manager")),
            ],
            ConstraintPolicy::Reject,
        )
        .unwrap()
    }

    /// Two managers above the line, plus `bench` whose salary interns the
    /// 1000 threshold into the shadow (comparison builtins relate interned
    /// integers).
    fn company() -> ObjectStore {
        let mut db = ObjectStore::with_schema(Schema::company());
        db.create("m1", "manager").unwrap();
        db.create("m2", "manager").unwrap();
        db.create("m3", "manager").unwrap();
        db.create("bench", "employee").unwrap();
        db.set("m1", "salary", Value::Int(1500)).unwrap();
        db.set("m2", "salary", Value::Int(1200)).unwrap();
        db.set("bench", "salary", Value::Int(1000)).unwrap();
        db
    }

    fn manager_salaries() -> Query {
        Query::new(vec![
            Literal::pos(Term::var("X").isa("manager")),
            Literal::pos(Term::var("X").filter(Filter::scalar("salary", Term::var("S")))),
        ])
    }

    #[test]
    fn rejected_commit_rolls_back_everything() {
        let mut db = company();
        let baseline = db
            .set_constraints(
                [underpaid(ConstraintPolicy::Reject)].into_iter().collect(),
                Engine::new(),
            )
            .unwrap();
        assert!(baseline.is_empty(), "{baseline:?}");

        let err = {
            let mut txn = db.begin();
            txn.set("m1", "salary", Value::Int(900)).unwrap();
            txn.set("m2", "salary", Value::Int(1300)).unwrap();
            txn.commit().unwrap_err()
        };
        match err {
            CommitError::Rejected {
                violations,
                rolled_back,
            } => {
                assert_eq!(rolled_back, 2, "the whole transaction is the boundary");
                assert_eq!(violations.len(), 1);
                assert_eq!(&*violations[0].constraint, "manager_underpaid");
            }
            other => panic!("expected rejection, got {other:?}"),
        }
        // nothing committed — including the change that was itself legal
        assert_eq!(db.get("m1", "salary"), Some(&Value::Int(1500)));
        assert_eq!(db.get("m2", "salary"), Some(&Value::Int(1200)));

        // the guard recovered: a clean commit passes afterwards
        let receipt = {
            let mut txn = db.begin();
            txn.set("m1", "salary", Value::Int(1600)).unwrap();
            txn.commit().unwrap()
        };
        assert!(receipt.checked);
        assert!(receipt.is_clean());
        assert_eq!(db.get("m1", "salary"), Some(&Value::Int(1600)));
    }

    #[test]
    fn install_time_violations_are_accepted_not_fatal() {
        let mut db = company();
        db.set("m2", "salary", Value::Int(800)).unwrap();
        let baseline = db
            .set_constraints(
                [underpaid(ConstraintPolicy::Reject)].into_iter().collect(),
                Engine::new(),
            )
            .unwrap();
        assert_eq!(baseline.len(), 1, "pre-existing damage is reported");

        // an unrelated commit passes: the old violation does not block it
        let receipt = {
            let mut txn = db.begin();
            txn.add("m1", "assistants", Value::obj("bench")).unwrap();
            txn.commit().unwrap()
        };
        assert!(receipt.is_clean());

        // but *new* damage is still rejected
        let err = {
            let mut txn = db.begin();
            txn.set("m1", "salary", Value::Int(700)).unwrap();
            txn.commit().unwrap_err()
        };
        assert!(matches!(err, CommitError::Rejected { .. }));
        assert_eq!(db.get("m1", "salary"), Some(&Value::Int(1500)));
        assert_eq!(db.get("m2", "salary"), Some(&Value::Int(800)), "old damage untouched");
    }

    #[test]
    fn warn_policy_commits_and_reports() {
        let mut db = company();
        db.set_constraints([underpaid(ConstraintPolicy::Warn)].into_iter().collect(), Engine::new())
            .unwrap();
        let receipt = {
            let mut txn = db.begin();
            txn.set("m1", "salary", Value::Int(900)).unwrap();
            txn.commit().unwrap()
        };
        assert_eq!(receipt.committed, 1);
        assert_eq!(receipt.warnings.len(), 1);
        assert!(receipt.quarantined.is_empty());
        assert_eq!(db.get("m1", "salary"), Some(&Value::Int(900)), "warned, not blocked");

        // the admitted violation does not warn again on the next commit
        let receipt = {
            let mut txn = db.begin();
            txn.add("m1", "assistants", Value::obj("bench")).unwrap();
            txn.commit().unwrap()
        };
        assert!(receipt.is_clean());
    }

    #[test]
    fn quarantine_policy_tags_facts_and_tolerant_queries_degrade() {
        let mut db = company();
        let engine = Engine::with_options(EvalOptions {
            tolerance: Tolerance::Tolerant,
            ..EvalOptions::default()
        });
        db.set_constraints([underpaid(ConstraintPolicy::Quarantine)].into_iter().collect(), engine)
            .unwrap();
        let receipt = {
            let mut txn = db.begin();
            txn.set("m1", "salary", Value::Int(900)).unwrap();
            txn.commit().unwrap()
        };
        assert_eq!(receipt.quarantined.len(), 1);
        assert!(receipt.warnings.is_empty());
        let guard = db.constraint_guard().unwrap();
        assert!(!guard.quarantine().is_empty(), "violating facts were tagged");

        let out = db.tolerant_query(&manager_salaries()).unwrap();
        assert!(out.any_tainted());
        for answer in &out.answers {
            let is_m1 = answer
                .bindings
                .iter()
                .any(|(var, oid)| var.name() == "X" && guard.shadow().display_name(oid) == "m1");
            match (&answer.status, is_m1) {
                (ConsistencyStatus::Tainted(by), true) => {
                    assert!(by.iter().any(|c| &**c == "manager_underpaid"));
                }
                (ConsistencyStatus::Clean, false) => {}
                other => panic!("unexpected answer status {other:?}"),
            }
        }
    }

    #[test]
    fn incremental_commits_skip_unaffected_constraints() {
        let mut db = company();
        db.set_constraints(
            [underpaid(ConstraintPolicy::Reject), kid_manager()]
                .into_iter()
                .collect(),
            Engine::new(),
        )
        .unwrap();
        let after_install = db.constraint_guard().unwrap().stats();
        assert_eq!(after_install.condition_solves, 2, "install solves everything once");

        // a commit touching neither constraint's reads solves nothing
        {
            let mut txn = db.begin();
            txn.add("m1", "assistants", Value::obj("bench")).unwrap();
            txn.commit().unwrap();
        }
        let stats = db.constraint_guard().unwrap().stats();
        assert_eq!(stats.condition_solves, after_install.condition_solves, "both skipped");
        assert_eq!(stats.constraints_skipped, after_install.constraints_skipped + 2);

        // a fresh salary fact re-solves only the salary constraint
        {
            let mut txn = db.begin();
            txn.set("m3", "salary", Value::Int(1200)).unwrap();
            txn.commit().unwrap();
        }
        let stats = db.constraint_guard().unwrap().stats();
        assert_eq!(stats.condition_solves, after_install.condition_solves + 1);
        assert_eq!(stats.constraints_skipped, after_install.constraints_skipped + 3);
        assert_eq!(
            stats.full_checks, after_install.full_checks,
            "no full re-check happened"
        );
    }

    #[test]
    fn install_reports_static_diagnostics() {
        let mut db = company();
        // `fortune` is stored nowhere, so this denial can never fire —
        // the analyzer flags the read, installation still succeeds.
        let ghost = Constraint::new(
            "ghost_read",
            vec![Literal::pos(
                Term::var("X").filter(Filter::scalar("fortune", Term::var("F"))),
            )],
            ConstraintPolicy::Warn,
        )
        .unwrap();
        db.set_constraints(
            [underpaid(ConstraintPolicy::Reject), ghost].into_iter().collect(),
            Engine::new(),
        )
        .unwrap();
        let guard = db.constraint_guard().unwrap();
        let diags = guard.diagnostics();
        assert!(diags.no_errors(), "{diags}");
        assert!(
            diags
                .codes()
                .contains(&pathlog_core::analysis::DiagCode::AlwaysEmptyLiteral),
            "{diags}"
        );
        assert!(
            diags.iter().any(|d| d.subject.contains("ghost_read")),
            "diagnostic names the offending constraint: {diags}"
        );
    }

    #[test]
    fn aborted_transactions_keep_the_guard_in_sync() {
        let mut db = company();
        db.set_constraints(
            [underpaid(ConstraintPolicy::Reject)].into_iter().collect(),
            Engine::new(),
        )
        .unwrap();
        let installed = db.constraint_guard().unwrap().stats();
        {
            let mut txn = db.begin();
            txn.set("m1", "salary", Value::Int(100)).unwrap();
            // dropped uncommitted: rolls back
        }
        assert_eq!(db.get("m1", "salary"), Some(&Value::Int(1500)));
        {
            let mut txn = db.begin();
            txn.add("m1", "assistants", Value::obj("bench")).unwrap();
            txn.commit().unwrap();
        }
        let stats = db.constraint_guard().unwrap().stats();
        assert_eq!(
            stats.full_checks, installed.full_checks,
            "rollback fast-forwarded the sync point; no rebuild was needed"
        );
    }

    #[test]
    fn out_of_band_mutations_force_a_sound_rebuild() {
        let mut db = company();
        db.set_constraints(
            [underpaid(ConstraintPolicy::Reject)].into_iter().collect(),
            Engine::new(),
        )
        .unwrap();
        let installed = db.constraint_guard().unwrap().stats();

        // mutate the store directly, bypassing transactions
        db.set("m1", "age", Value::Int(55)).unwrap();

        let receipt = {
            let mut txn = db.begin();
            txn.set("m1", "salary", Value::Int(1700)).unwrap();
            txn.commit().unwrap()
        };
        assert!(receipt.is_clean());
        let stats = db.constraint_guard().unwrap().stats();
        assert_eq!(
            stats.full_checks,
            installed.full_checks + 1,
            "rebuild re-checked everything"
        );

        // the rebuilt shadow reflects both mutations and still rejects damage
        let err = {
            let mut txn = db.begin();
            txn.set("m2", "salary", Value::Int(400)).unwrap();
            txn.commit().unwrap_err()
        };
        assert!(matches!(err, CommitError::Rejected { .. }));
        assert_eq!(db.get("m2", "salary"), Some(&Value::Int(1200)));
        assert_eq!(
            db.get("m1", "age"),
            Some(&Value::Int(55)),
            "out-of-band change survives"
        );
    }
}
