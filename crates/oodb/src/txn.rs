//! Updates, deletion and undo-log transactions for the object store.
//!
//! The paper treats the extensional database as given, but any system built
//! on the store needs to change it: correct a scalar value, retract a set
//! member, delete an object (only when nothing references it, or cascading
//! the removal of the references).  A lightweight undo log provides
//! transactional grouping: every mutation performed through a [`Transaction`]
//! is rolled back unless the transaction is committed.

use std::collections::BTreeSet;

use crate::error::{Result, StoreError};
use crate::guard::{CommitError, CommitReceipt};
use crate::store::{ObjectStore, Value};

/// How [`ObjectStore::delete_object`] treats incoming references.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DeleteMode {
    /// Refuse to delete an object that is still referenced.
    Restrict,
    /// Also remove every attribute value referencing the object.
    Cascade,
}

/// One undoable change.  Also the unit of shadow synchronisation: the
/// constraint guard replays these onto its shadow structure at commit time.
#[derive(Debug, Clone, PartialEq)]
pub(crate) enum Change {
    /// A scalar attribute was set to `value`; `previous` restores the old
    /// state.
    ScalarSet {
        obj: String,
        attr: String,
        value: Value,
        previous: Option<Value>,
    },
    /// A member was added to a set attribute.
    SetAdded { obj: String, attr: String, value: Value },
    /// A member was removed from a set attribute.
    SetRemoved { obj: String, attr: String, value: Value },
    /// A scalar attribute was cleared.
    ScalarCleared { obj: String, attr: String, previous: Value },
}

impl Change {
    fn undo(self, store: &mut ObjectStore) {
        match self {
            Change::ScalarSet {
                obj, attr, previous, ..
            } => {
                let id = store.id_of(&obj).expect("object still exists during rollback");
                match previous {
                    Some(v) => {
                        store.set(&obj, &attr, v).expect("restoring a previously valid value");
                    }
                    None => {
                        store.take_scalar(id, &attr);
                    }
                }
            }
            Change::SetAdded { obj, attr, value } => {
                let id = store.id_of(&obj).expect("object still exists during rollback");
                store.remove_set_member(id, &attr, &value);
            }
            Change::SetRemoved { obj, attr, value }
            | Change::ScalarCleared {
                obj,
                attr,
                previous: value,
            } => {
                // re-adding / re-setting a previously valid value cannot fail
                match store.schema().attr_def(&attr).map(|a| a.kind) {
                    Some(crate::schema::AttrKind::Set) => store
                        .add(&obj, &attr, value)
                        .expect("restoring a previously valid member"),
                    _ => store
                        .set(&obj, &attr, value)
                        .expect("restoring a previously valid value"),
                }
            }
        }
    }
}

impl ObjectStore {
    /// Remove the value of a scalar attribute.  Returns the removed value.
    pub fn clear(&mut self, obj: &str, attr: &str) -> Result<Option<Value>> {
        let id = self
            .id_of(obj)
            .ok_or_else(|| StoreError::Unknown(format!("object {obj}")))?;
        Ok(self.take_scalar(id, attr))
    }

    /// Remove one member from a set-valued attribute.  Returns `true` if the
    /// member was present.
    pub fn remove(&mut self, obj: &str, attr: &str, value: &Value) -> Result<bool> {
        let id = self
            .id_of(obj)
            .ok_or_else(|| StoreError::Unknown(format!("object {obj}")))?;
        Ok(self.remove_set_member(id, attr, value))
    }

    /// Objects whose attributes reference `name`.
    pub fn referrers_of(&self, name: &str) -> BTreeSet<String> {
        let mut out = BTreeSet::new();
        for (_, obj) in self.objects() {
            for attr in self.schema().attrs() {
                let hit = match attr.kind {
                    crate::schema::AttrKind::Scalar => {
                        matches!(self.get(&obj.name, &attr.name), Some(Value::Ref(r)) if r == name)
                    }
                    crate::schema::AttrKind::Set => self
                        .get_set(&obj.name, &attr.name)
                        .is_some_and(|vs| vs.contains(&Value::Ref(name.to_owned()))),
                };
                if hit {
                    out.insert(obj.name.clone());
                    break;
                }
            }
        }
        out
    }

    /// Delete an object.  With [`DeleteMode::Restrict`] the object must not
    /// be referenced; with [`DeleteMode::Cascade`] referencing attribute
    /// values are removed first.  The object's own attribute values are
    /// always removed.
    pub fn delete_object(&mut self, name: &str, mode: DeleteMode) -> Result<()> {
        let id = self
            .id_of(name)
            .ok_or_else(|| StoreError::Unknown(format!("object {name}")))?;
        let referrers = self.referrers_of(name);
        if !referrers.is_empty() {
            match mode {
                DeleteMode::Restrict => {
                    return Err(StoreError::StillReferenced {
                        object: name.to_owned(),
                        referrers: referrers.into_iter().collect(),
                    })
                }
                DeleteMode::Cascade => {
                    let attrs: Vec<(String, crate::schema::AttrKind)> =
                        self.schema().attrs().map(|a| (a.name.clone(), a.kind)).collect();
                    for referrer in &referrers {
                        let rid = self.id_of(referrer).expect("referrer exists");
                        for (attr, kind) in &attrs {
                            match kind {
                                crate::schema::AttrKind::Scalar => {
                                    if matches!(self.get(referrer, attr), Some(Value::Ref(r)) if r == name) {
                                        self.take_scalar(rid, attr);
                                    }
                                }
                                crate::schema::AttrKind::Set => {
                                    self.remove_set_member(rid, attr, &Value::Ref(name.to_owned()));
                                }
                            }
                        }
                    }
                }
            }
        }
        self.remove_object_record(id);
        Ok(())
    }

    /// Start a transaction; mutations through it are undone on drop unless
    /// [`Transaction::commit`] is called (and succeeds).
    pub fn begin(&mut self) -> Transaction<'_> {
        Transaction {
            begin_version: self.version(),
            store: self,
            log: Vec::new(),
            committed: false,
        }
    }
}

/// An undo-log transaction over an [`ObjectStore`].
#[derive(Debug)]
pub struct Transaction<'a> {
    store: &'a mut ObjectStore,
    log: Vec<Change>,
    committed: bool,
    /// [`ObjectStore::version`] when the transaction began; the constraint
    /// guard compares it against its own sync point to decide between
    /// incremental checking and a full shadow rebuild.
    begin_version: u64,
}

impl<'a> Transaction<'a> {
    /// Read access to the underlying store.
    pub fn store(&self) -> &ObjectStore {
        self.store
    }

    /// Set a scalar attribute (undoable).
    pub fn set(&mut self, obj: &str, attr: &str, value: Value) -> Result<()> {
        let previous = self.store.get(obj, attr).cloned();
        self.store.set(obj, attr, value.clone())?;
        self.log.push(Change::ScalarSet {
            obj: obj.to_owned(),
            attr: attr.to_owned(),
            value,
            previous,
        });
        Ok(())
    }

    /// Add a set member (undoable).
    pub fn add(&mut self, obj: &str, attr: &str, value: Value) -> Result<()> {
        let already = self.store.get_set(obj, attr).is_some_and(|vs| vs.contains(&value));
        self.store.add(obj, attr, value.clone())?;
        if !already {
            self.log.push(Change::SetAdded {
                obj: obj.to_owned(),
                attr: attr.to_owned(),
                value,
            });
        }
        Ok(())
    }

    /// Remove a set member (undoable).
    pub fn remove(&mut self, obj: &str, attr: &str, value: &Value) -> Result<bool> {
        let removed = self.store.remove(obj, attr, value)?;
        if removed {
            self.log.push(Change::SetRemoved {
                obj: obj.to_owned(),
                attr: attr.to_owned(),
                value: value.clone(),
            });
        }
        Ok(removed)
    }

    /// Clear a scalar attribute (undoable).
    pub fn clear(&mut self, obj: &str, attr: &str) -> Result<Option<Value>> {
        let previous = self.store.clear(obj, attr)?;
        if let Some(previous) = previous.clone() {
            self.log.push(Change::ScalarCleared {
                obj: obj.to_owned(),
                attr: attr.to_owned(),
                previous,
            });
        }
        Ok(previous)
    }

    /// Try to keep all changes.
    ///
    /// Without a constraint guard installed this always succeeds and simply
    /// makes the log durable.  With a guard (see
    /// [`ObjectStore::set_constraints`]) the commit is checked first:
    ///
    /// * no *new* violations — the commit stands; the
    ///   [`CommitReceipt`] records how many changes were committed and any
    ///   warned/quarantined violations that were admitted;
    /// * a new violation of a `Reject`-policy constraint — **nothing** is
    ///   kept: the transaction rolls back in full and
    ///   [`CommitError::Rejected`] reports the violations and the number of
    ///   changes rolled back (the boundary is all-or-nothing).
    ///
    /// A successful commit also publishes the post-commit image as a new
    /// snapshot epoch when reader sessions are active (see
    /// [`ObjectStore::begin_session`]); the receipt's
    /// [`epoch`](CommitReceipt::epoch) records it.
    pub fn commit(mut self) -> std::result::Result<CommitReceipt, CommitError> {
        let Some(mut guard) = self.store.take_guard() else {
            self.committed = true;
            let mut receipt = CommitReceipt::unchecked(self.log.len());
            receipt.epoch = self.store.publish_after_commit(&self.log, self.begin_version);
            return Ok(receipt);
        };
        let outcome = guard.check_commit(self.store, &self.log, self.begin_version);
        self.store.restore_guard(guard);
        match outcome {
            Ok(mut receipt) => {
                self.committed = true;
                receipt.epoch = self.store.publish_after_commit(&self.log, self.begin_version);
                Ok(receipt)
            }
            // on Err: `committed` stays false, so dropping `self` rolls back
            Err(e) => Err(e),
        }
    }

    /// Number of undoable changes recorded so far.
    pub fn len(&self) -> usize {
        self.log.len()
    }

    /// A copy of the undo log (for replay tests of [`crate::StoreImage`]).
    #[cfg(test)]
    pub(crate) fn log_snapshot(&self) -> Vec<Change> {
        self.log.clone()
    }

    /// `true` if nothing was changed yet.
    pub fn is_empty(&self) -> bool {
        self.log.is_empty()
    }
}

impl Drop for Transaction<'_> {
    fn drop(&mut self) {
        if self.committed {
            return;
        }
        // roll back in reverse order
        for change in self.log.drain(..).rev().collect::<Vec<_>>() {
            change.undo(self.store);
        }
        // The store is back in its pre-transaction state; if the guard's
        // shadow (or the serving layer's published snapshot) matched it
        // then — untouched abort, or reverted by a rejected commit —
        // fast-forward the sync points past the rollback mutations so the
        // next commit stays incremental.
        self.store.resync_guard_after_rollback(self.begin_version);
        self.store.resync_serving_after_rollback(self.begin_version);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::schema::Schema;

    fn sample() -> ObjectStore {
        let mut db = ObjectStore::with_schema(Schema::company());
        db.create("e1", "employee").unwrap();
        db.create("e2", "employee").unwrap();
        db.create("a1", "automobile").unwrap();
        db.set("e1", "age", Value::Int(30)).unwrap();
        db.add("e1", "vehicles", Value::obj("a1")).unwrap();
        db.set("e1", "boss", Value::obj("e2")).unwrap();
        db
    }

    #[test]
    fn clear_and_remove() {
        let mut db = sample();
        assert_eq!(db.clear("e1", "age").unwrap(), Some(Value::Int(30)));
        assert_eq!(db.get("e1", "age"), None);
        assert_eq!(db.clear("e1", "age").unwrap(), None);
        assert!(db.remove("e1", "vehicles", &Value::obj("a1")).unwrap());
        assert!(!db.remove("e1", "vehicles", &Value::obj("a1")).unwrap());
        assert!(db.clear("ghost", "age").is_err());
    }

    #[test]
    fn referrers_and_restrict_delete() {
        let mut db = sample();
        assert_eq!(db.referrers_of("a1"), ["e1".to_string()].into_iter().collect());
        assert_eq!(db.referrers_of("e2"), ["e1".to_string()].into_iter().collect());
        assert_eq!(
            db.delete_object("a1", DeleteMode::Restrict),
            Err(StoreError::StillReferenced {
                object: "a1".into(),
                referrers: vec!["e1".into()],
            }),
            "restrict deletes report the referrers, typed"
        );
        // unreferenced objects delete fine
        assert!(db.delete_object("e1", DeleteMode::Restrict).is_ok());
        assert!(db.id_of("e1").is_none());
        // e1's references died with it
        assert!(db.referrers_of("a1").is_empty());
    }

    #[test]
    fn cascade_delete_removes_references() {
        let mut db = sample();
        db.delete_object("a1", DeleteMode::Cascade).unwrap();
        assert!(db.id_of("a1").is_none());
        assert!(db.get_set("e1", "vehicles").is_none_or(|vs| vs.is_empty()));
        db.integrity_check().unwrap();
        // deleting the boss cascades the scalar reference away
        db.delete_object("e2", DeleteMode::Cascade).unwrap();
        assert_eq!(db.get("e1", "boss"), None);
        db.integrity_check().unwrap();
    }

    #[test]
    fn transaction_rolls_back_on_drop() {
        let mut db = sample();
        {
            let mut txn = db.begin();
            txn.set("e1", "age", Value::Int(31)).unwrap();
            txn.set("e2", "age", Value::Int(55)).unwrap();
            txn.add("e2", "vehicles", Value::obj("a1")).unwrap();
            txn.remove("e1", "vehicles", &Value::obj("a1")).unwrap();
            txn.clear("e1", "boss").unwrap();
            assert_eq!(txn.len(), 5);
            assert!(!txn.is_empty());
            // dropped without commit
        }
        assert_eq!(db.get("e1", "age"), Some(&Value::Int(30)));
        assert_eq!(db.get("e2", "age"), None);
        assert!(db.get_set("e2", "vehicles").is_none_or(|vs| vs.is_empty()));
        assert!(db.get_set("e1", "vehicles").unwrap().contains(&Value::obj("a1")));
        assert_eq!(db.get("e1", "boss"), Some(&Value::obj("e2")));
        db.integrity_check().unwrap();
    }

    #[test]
    fn transaction_commit_keeps_changes() {
        let mut db = sample();
        {
            let mut txn = db.begin();
            txn.set("e1", "age", Value::Int(31)).unwrap();
            assert_eq!(txn.store().get("e1", "age"), Some(&Value::Int(31)));
            let receipt = txn.commit().unwrap();
            assert_eq!(receipt.committed, 1);
            assert!(!receipt.checked, "no constraints installed");
            assert!(receipt.is_clean());
        }
        assert_eq!(db.get("e1", "age"), Some(&Value::Int(31)));
    }

    #[test]
    fn failed_mutations_do_not_pollute_the_log() {
        let mut db = sample();
        {
            let mut txn = db.begin();
            assert!(txn.set("e1", "cylinders", Value::Int(4)).is_err(), "wrong domain");
            assert!(txn.is_empty());
        }
        db.integrity_check().unwrap();
    }
}
