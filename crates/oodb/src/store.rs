//! The in-memory object store — the extensional database underneath PathLog.
//!
//! The store holds named objects assigned to classes and their scalar /
//! set-valued attribute values, checks them against a [`Schema`], and
//! converts everything into a [`pathlog_core::structure::Structure`] (the
//! extensional part of the semantic structure `I`), including signature
//! declarations derived from the schema.

use std::collections::{BTreeMap, BTreeSet, HashMap};

use pathlog_core::names::Name;
use pathlog_core::structure::{Oid, Signature, Structure};

use crate::error::{Result, StoreError};
use crate::schema::{AttrKind, Range, Schema};

/// A value stored in an attribute.
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum Value {
    /// A reference to another stored object, by name.
    Ref(String),
    /// An integer.
    Int(i64),
    /// A string.
    Str(String),
    /// A symbolic constant (e.g. `red`, `detroit`) that is not itself a
    /// stored object.
    Atom(String),
}

impl Value {
    /// Reference to a stored object.
    pub fn obj(name: impl Into<String>) -> Self {
        Value::Ref(name.into())
    }

    pub(crate) fn to_name(&self) -> Name {
        match self {
            Value::Ref(s) | Value::Atom(s) => Name::Atom(s.clone()),
            Value::Int(i) => Name::Int(*i),
            Value::Str(s) => Name::Str(s.clone()),
        }
    }
}

/// Dense identifier of a stored object.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct ObjId(pub u32);

/// One stored object.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct StoredObject {
    /// The (unique) external name of the object.
    pub name: String,
    /// The class the object belongs to.
    pub class: String,
}

/// Summary statistics of a store.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct StoreStats {
    /// Number of objects.
    pub objects: usize,
    /// Number of scalar attribute values.
    pub scalar_values: usize,
    /// Number of set attribute members.
    pub set_values: usize,
    /// Snapshot epochs published by the serving layer (0 while no reader
    /// session ever started — see [`ObjectStore::begin_session`]).
    pub epochs_published: usize,
    /// Reader sessions pinned (cumulative pin events, not a live count).
    pub snapshots_pinned: usize,
    /// Snapshot retention entries reclaimed after their last session
    /// dropped.
    pub snapshots_reclaimed: usize,
}

impl StoreStats {
    /// Fold another store's counters into this one with saturating adds
    /// (same contract as `EvalStats::merge`).
    pub fn merge(&mut self, other: &StoreStats) {
        self.objects = self.objects.saturating_add(other.objects);
        self.scalar_values = self.scalar_values.saturating_add(other.scalar_values);
        self.set_values = self.set_values.saturating_add(other.set_values);
        self.epochs_published = self.epochs_published.saturating_add(other.epochs_published);
        self.snapshots_pinned = self.snapshots_pinned.saturating_add(other.snapshots_pinned);
        self.snapshots_reclaimed = self.snapshots_reclaimed.saturating_add(other.snapshots_reclaimed);
    }
}

/// The in-memory object store.
#[derive(Debug, Clone, Default)]
pub struct ObjectStore {
    schema: Schema,
    objects: Vec<StoredObject>,
    by_name: HashMap<String, ObjId>,
    by_class: BTreeMap<String, Vec<ObjId>>,
    scalar: HashMap<(ObjId, String), Value>,
    sets: HashMap<(ObjId, String), BTreeSet<Value>>,
    /// Tombstones of deleted objects (object ids stay stable).
    deleted: BTreeSet<ObjId>,
    /// Monotone mutation counter, bumped on every effective change.  The
    /// constraint guard uses it to detect out-of-band mutations (anything
    /// not routed through the transaction whose commit it is checking) and
    /// fall back to a full shadow rebuild instead of trusting stale
    /// watermarks.
    version: u64,
    /// Check-on-commit integrity constraints, if installed (see
    /// [`ObjectStore::set_constraints`]).
    constraints: Option<Box<crate::guard::ConstraintGuard>>,
    /// MVCC snapshot serving state, activated lazily by
    /// [`ObjectStore::begin_session`](crate::session).  Not shared across
    /// clones (each clone is its own single-writer domain).
    pub(crate) serving: Option<Box<crate::session::ServingState>>,
}

impl ObjectStore {
    /// An empty store with an empty schema.
    pub fn new() -> Self {
        Self::default()
    }

    /// A store over the given schema.
    pub fn with_schema(schema: Schema) -> Self {
        ObjectStore {
            schema,
            ..Self::default()
        }
    }

    /// The schema.
    pub fn schema(&self) -> &Schema {
        &self.schema
    }

    /// Mutable access to the schema (for incremental schema definition).
    pub fn schema_mut(&mut self) -> &mut Schema {
        &mut self.schema
    }

    /// Create an object of a class.  The name must be fresh and the class
    /// defined in the schema.
    pub fn create(&mut self, name: &str, class: &str) -> Result<ObjId> {
        if self.by_name.contains_key(name) {
            return Err(StoreError::Duplicate(format!("object {name}")));
        }
        if self.schema.class_def(class).is_none() {
            return Err(StoreError::Unknown(format!("class {class}")));
        }
        let id = ObjId(self.objects.len() as u32);
        self.objects.push(StoredObject {
            name: name.to_owned(),
            class: class.to_owned(),
        });
        self.by_name.insert(name.to_owned(), id);
        self.by_class.entry(class.to_owned()).or_default().push(id);
        self.version += 1;
        Ok(id)
    }

    /// The current value of the monotone mutation counter.
    pub fn version(&self) -> u64 {
        self.version
    }

    /// The id of a named object.
    pub fn id_of(&self, name: &str) -> Option<ObjId> {
        self.by_name.get(name).copied()
    }

    /// The stored object behind an id (`None` for deleted objects).
    pub fn object(&self, id: ObjId) -> Option<&StoredObject> {
        if self.deleted.contains(&id) {
            return None;
        }
        self.objects.get(id.0 as usize)
    }

    /// Number of (live) objects.
    pub fn len(&self) -> usize {
        self.objects.len() - self.deleted.len()
    }

    /// Is the store empty?
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Iterate over all live objects.
    pub fn objects(&self) -> impl Iterator<Item = (ObjId, &StoredObject)> + '_ {
        self.objects
            .iter()
            .enumerate()
            .map(|(i, o)| (ObjId(i as u32), o))
            .filter(|(id, _)| !self.deleted.contains(id))
    }

    // -- crate-internal mutation helpers used by the transaction layer ------

    /// Remove a scalar attribute value, returning it.
    pub(crate) fn take_scalar(&mut self, id: ObjId, attr: &str) -> Option<Value> {
        let taken = self.scalar.remove(&(id, attr.to_owned()));
        if taken.is_some() {
            self.version += 1;
        }
        taken
    }

    /// Remove one member from a set attribute; `true` if it was present.
    pub(crate) fn remove_set_member(&mut self, id: ObjId, attr: &str, value: &Value) -> bool {
        let removed = self
            .sets
            .get_mut(&(id, attr.to_owned()))
            .is_some_and(|s| s.remove(value));
        if removed {
            self.version += 1;
        }
        removed
    }

    /// Remove an object record and all of its own attribute values.
    pub(crate) fn remove_object_record(&mut self, id: ObjId) {
        if let Some(obj) = self.objects.get(id.0 as usize) {
            self.by_name.remove(&obj.name);
            if let Some(ids) = self.by_class.get_mut(&obj.class) {
                ids.retain(|&x| x != id);
            }
        }
        self.scalar.retain(|(oid, _), _| *oid != id);
        self.sets.retain(|(oid, _), _| *oid != id);
        self.deleted.insert(id);
        self.version += 1;
    }

    /// Objects whose class is exactly `class` or a subclass of it.
    pub fn members_of(&self, class: &str) -> Vec<ObjId> {
        let mut out = Vec::new();
        for (c, ids) in &self.by_class {
            if self.schema.is_subclass(c, class) {
                out.extend(ids.iter().copied());
            }
        }
        out.sort();
        out
    }

    fn attr_check(&self, id: ObjId, attr: &str, expected: AttrKind, value: &Value) -> Result<()> {
        let obj = self
            .object(id)
            .ok_or_else(|| StoreError::Unknown(format!("object #{id:?}")))?;
        let Some(def) = self.schema.attr_def(attr) else {
            return Err(StoreError::Unknown(format!("attribute {attr}")));
        };
        if def.kind != expected {
            return Err(StoreError::SchemaViolation(format!(
                "attribute {attr} is {:?} but was used as {:?}",
                def.kind, expected
            )));
        }
        if !self.schema.is_subclass(&obj.class, &def.domain) {
            return Err(StoreError::SchemaViolation(format!(
                "attribute {attr} is defined for {} but {} is a {}",
                def.domain, obj.name, obj.class
            )));
        }
        match (&def.range, value) {
            (Range::Any, _) => Ok(()),
            (Range::Integer, Value::Int(_)) => Ok(()),
            (Range::Str, Value::Str(_)) => Ok(()),
            (Range::Atom, Value::Atom(_)) => Ok(()),
            (Range::Class(rc), Value::Ref(target)) => {
                let t = self
                    .id_of(target)
                    .and_then(|tid| self.object(tid))
                    .ok_or_else(|| StoreError::Unknown(format!("object {target}")))?;
                if self.schema.is_subclass(&t.class, rc) {
                    Ok(())
                } else {
                    Err(StoreError::SchemaViolation(format!(
                        "value {target} of {attr} must be a {rc}, but it is a {}",
                        t.class
                    )))
                }
            }
            (range, value) => Err(StoreError::SchemaViolation(format!(
                "value {value:?} does not match the declared range {range:?} of {attr}"
            ))),
        }
    }

    /// Set a scalar attribute.
    pub fn set(&mut self, obj: &str, attr: &str, value: Value) -> Result<()> {
        let id = self
            .id_of(obj)
            .ok_or_else(|| StoreError::Unknown(format!("object {obj}")))?;
        self.attr_check(id, attr, AttrKind::Scalar, &value)?;
        self.scalar.insert((id, attr.to_owned()), value);
        self.version += 1;
        Ok(())
    }

    /// Add a member to a set-valued attribute.
    pub fn add(&mut self, obj: &str, attr: &str, value: Value) -> Result<()> {
        let id = self
            .id_of(obj)
            .ok_or_else(|| StoreError::Unknown(format!("object {obj}")))?;
        self.attr_check(id, attr, AttrKind::Set, &value)?;
        if self.sets.entry((id, attr.to_owned())).or_default().insert(value) {
            self.version += 1;
        }
        Ok(())
    }

    /// The value of a scalar attribute.
    pub fn get(&self, obj: &str, attr: &str) -> Option<&Value> {
        let id = self.id_of(obj)?;
        self.scalar.get(&(id, attr.to_owned()))
    }

    /// The members of a set-valued attribute.
    pub fn get_set(&self, obj: &str, attr: &str) -> Option<&BTreeSet<Value>> {
        let id = self.id_of(obj)?;
        self.sets.get(&(id, attr.to_owned()))
    }

    /// Summary statistics, including the serving-layer snapshot counters.
    pub fn stats(&self) -> StoreStats {
        let snap = self.serving_stats();
        StoreStats {
            objects: self.objects.len(),
            scalar_values: self.scalar.len(),
            set_values: self.sets.values().map(BTreeSet::len).sum(),
            epochs_published: snap.epochs_published,
            snapshots_pinned: snap.snapshots_pinned,
            snapshots_reclaimed: snap.snapshots_reclaimed,
        }
    }

    /// Check referential integrity: every `Value::Ref` must name an existing
    /// object and every stored value must (still) satisfy the schema.
    pub fn integrity_check(&self) -> Result<()> {
        self.schema.validate()?;
        for ((id, attr), value) in &self.scalar {
            self.attr_check(*id, attr, AttrKind::Scalar, value)?;
        }
        for ((id, attr), values) in &self.sets {
            for value in values {
                self.attr_check(*id, attr, AttrKind::Set, value)?;
            }
        }
        Ok(())
    }

    // -- check-on-commit integrity constraints ------------------------------

    /// Install integrity constraints, checked on every
    /// [`Transaction::commit`](crate::Transaction::commit).
    ///
    /// The guard keeps a shadow [`Structure`] in sync with the store and
    /// re-checks **incrementally**: after a transaction, only constraints
    /// whose read keys intersect the delta are re-solved (see
    /// [`pathlog_core::constraints`]).  Constraint solving runs on (a clone
    /// of) `engine`, so pooled engines share worker threads with query
    /// evaluation; give the engine
    /// [`Tolerance::Tolerant`](pathlog_core::engine::Tolerance) options if
    /// [`ObjectStore::tolerant_query`] should degrade instead of answering
    /// classically.
    ///
    /// Returns the violations already present at install time.  Those are
    /// *accepted*: the guard is inconsistency-tolerant and only blocks
    /// commits that introduce **new** violations.
    pub fn set_constraints(
        &mut self,
        constraints: pathlog_core::constraints::ConstraintSet,
        engine: pathlog_core::engine::Engine,
    ) -> Result<Vec<pathlog_core::constraints::ConstraintViolation>> {
        let (guard, baseline) = crate::guard::ConstraintGuard::install(constraints, engine, self)
            .map_err(|e| StoreError::Constraint(e.to_string()))?;
        self.constraints = Some(Box::new(guard));
        Ok(baseline)
    }

    /// The installed constraint guard, if any.
    pub fn constraint_guard(&self) -> Option<&crate::guard::ConstraintGuard> {
        self.constraints.as_deref()
    }

    /// Uninstall the constraint guard; commits stop being checked.
    pub fn clear_constraints(&mut self) {
        self.constraints = None;
    }

    /// Answer a query in inconsistency-tolerant mode: evaluate over the
    /// guard's shadow structure, flagging answers that depend on quarantined
    /// facts (see [`pathlog_core::constraints::tolerant_query`]).  Requires
    /// constraints to be installed.
    pub fn tolerant_query(
        &self,
        query: &pathlog_core::program::Query,
    ) -> Result<pathlog_core::constraints::TolerantAnswers> {
        let guard = self
            .constraints
            .as_deref()
            .ok_or_else(|| StoreError::Unknown("constraint guard (none installed)".into()))?;
        guard
            .tolerant_query(query)
            .map_err(|e| StoreError::Constraint(e.to_string()))
    }

    /// Detach the guard for the duration of a commit check (borrow dance:
    /// the guard needs `&ObjectStore` while being mutated itself).
    pub(crate) fn take_guard(&mut self) -> Option<Box<crate::guard::ConstraintGuard>> {
        self.constraints.take()
    }

    /// Re-attach a guard detached by [`ObjectStore::take_guard`].
    pub(crate) fn restore_guard(&mut self, guard: Box<crate::guard::ConstraintGuard>) {
        self.constraints = Some(guard);
    }

    /// After a transaction rollback the store is back in its pre-transaction
    /// state.  If the guard was in sync when the transaction began, its
    /// shadow (never touched, or reverted by a rejected commit) still
    /// matches — fast-forward its synced version so the next commit keeps
    /// the incremental path instead of rebuilding.
    pub(crate) fn resync_guard_after_rollback(&mut self, begin_version: u64) {
        let version = self.version;
        if let Some(guard) = self.constraints.as_deref_mut() {
            if guard.synced_version() == begin_version {
                guard.set_synced_version(version);
            }
        }
    }

    /// Convert the store into a PathLog semantic structure: objects with
    /// their class memberships, every attribute value as a method fact, and
    /// one signature declaration per schema attribute.
    ///
    /// The subclass hierarchy is *flattened* into the memberships: an object
    /// of class `manager` becomes a member of `manager`, `employee` and
    /// `person`.  The alternative — adding `manager isa employee` edges
    /// between the class objects — would make the class objects themselves
    /// members of their superclasses (the paper collapses membership and
    /// subclassing into one relation), so that `X : employee` would also bind
    /// the class object `manager`; flattening avoids that artifact while
    /// preserving every membership the paper's queries rely on.
    pub fn to_structure(&self) -> Structure {
        let mut s = Structure::new();

        // register the class objects
        let class_names: Vec<String> = self.schema.classes().map(|c| c.name.clone()).collect();
        for class in &class_names {
            s.atom(class);
        }

        // objects and their (flattened) memberships
        for (_, obj) in self.objects() {
            let o = s.atom(&obj.name);
            for class in &class_names {
                if self.schema.is_subclass(&obj.class, class) {
                    let c = s.atom(class);
                    s.add_isa(o, c);
                }
            }
        }

        // attribute values; value objects are made members of the pseudo
        // value classes (`integer`, `string`, `atom`) so that the signatures
        // derived from the schema below are checkable.
        let (integer_class, string_class, atom_class) = (s.atom("integer"), s.atom("string"), s.atom("atom"));
        let classify_value = |s: &mut Structure, v: Oid, value: &Value| match value {
            Value::Int(_) => {
                s.add_isa(v, integer_class);
            }
            Value::Str(_) => {
                s.add_isa(v, string_class);
            }
            Value::Atom(_) => {
                s.add_isa(v, atom_class);
            }
            Value::Ref(_) => {}
        };
        // Deterministic iteration (sorted by object id, then attribute):
        // the interning order — and with it `canonical_dump()` — must be a
        // pure function of the store contents, so that two stores with the
        // same history publish bit-identical snapshots (the serving layer's
        // sequential-oracle cross-checks depend on this).
        let mut scalars: Vec<(&(ObjId, String), &Value)> = self.scalar.iter().collect();
        scalars.sort_by(|a, b| a.0.cmp(b.0));
        for ((id, attr), value) in scalars {
            let receiver = s.atom(&self.objects[id.0 as usize].name);
            let method = s.atom(attr);
            let v = s.ensure_name(&value.to_name());
            classify_value(&mut s, v, value);
            s.assert_scalar(method, receiver, &[], v)
                .expect("scalar attributes are single-valued in the store");
        }
        let mut sets: Vec<(&(ObjId, String), &BTreeSet<Value>)> = self.sets.iter().collect();
        sets.sort_by(|a, b| a.0.cmp(b.0));
        for ((id, attr), values) in sets {
            let receiver = s.atom(&self.objects[id.0 as usize].name);
            let method = s.atom(attr);
            for value in values {
                let v = s.ensure_name(&value.to_name());
                classify_value(&mut s, v, value);
                s.assert_set_member(method, receiver, &[], v);
            }
        }

        // signatures from the schema
        for attr in self.schema.attrs() {
            let class = s.atom(&attr.domain);
            let method = s.atom(&attr.name);
            let result = match &attr.range {
                Range::Class(c) => Some(s.atom(c)),
                Range::Integer => Some(s.atom("integer")),
                Range::Str => Some(s.atom("string")),
                Range::Atom => Some(s.atom("atom")),
                Range::Any => None,
            };
            if let Some(result) = result {
                s.add_signature(Signature {
                    class,
                    method,
                    arg_classes: Box::new([]),
                    result_classes: vec![result],
                    set_valued: attr.kind == AttrKind::Set,
                });
            }
        }
        s
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small_company() -> ObjectStore {
        let mut db = ObjectStore::with_schema(Schema::company());
        db.create("e1", "employee").unwrap();
        db.create("a1", "automobile").unwrap();
        db.set("e1", "age", Value::Int(30)).unwrap();
        db.set("e1", "city", Value::Atom("newYork".into())).unwrap();
        db.add("e1", "vehicles", Value::obj("a1")).unwrap();
        db.set("a1", "color", Value::Atom("red".into())).unwrap();
        db.set("a1", "cylinders", Value::Int(4)).unwrap();
        db
    }

    #[test]
    fn create_and_read_back() {
        let db = small_company();
        assert_eq!(db.len(), 2);
        assert!(!db.is_empty());
        assert_eq!(db.get("e1", "age"), Some(&Value::Int(30)));
        assert_eq!(db.get_set("e1", "vehicles").unwrap().len(), 1);
        assert_eq!(db.object(db.id_of("a1").unwrap()).unwrap().class, "automobile");
        assert_eq!(db.stats().scalar_values, 4);
        assert_eq!(db.stats().set_values, 1);
    }

    #[test]
    fn duplicate_and_unknown_objects() {
        let mut db = small_company();
        assert!(matches!(db.create("e1", "employee"), Err(StoreError::Duplicate(_))));
        assert!(matches!(db.create("x", "nosuchclass"), Err(StoreError::Unknown(_))));
        assert!(db.set("ghost", "age", Value::Int(1)).is_err());
        assert!(db.get("ghost", "age").is_none());
    }

    #[test]
    fn schema_violations_are_rejected() {
        let mut db = small_company();
        // age is scalar, not set
        assert!(matches!(
            db.add("e1", "age", Value::Int(31)),
            Err(StoreError::SchemaViolation(_))
        ));
        // cylinders is only defined for automobiles
        db.create("e2", "employee").unwrap();
        assert!(db.set("e2", "cylinders", Value::Int(4)).is_err());
        // range violation: age must be an integer
        assert!(db.set("e2", "age", Value::Atom("old".into())).is_err());
        // range violation: vehicles must reference vehicles
        db.create("e3", "employee").unwrap();
        assert!(db.add("e1", "vehicles", Value::obj("e3")).is_err());
        // unknown attribute
        assert!(db.set("e1", "nickname", Value::Str("x".into())).is_err());
    }

    #[test]
    fn members_of_respects_subclasses() {
        let mut db = ObjectStore::with_schema(Schema::company());
        db.create("m1", "manager").unwrap();
        db.create("e1", "employee").unwrap();
        db.create("a1", "automobile").unwrap();
        assert_eq!(db.members_of("employee").len(), 2);
        assert_eq!(db.members_of("person").len(), 2);
        assert_eq!(db.members_of("manager").len(), 1);
        assert_eq!(db.members_of("vehicle").len(), 1);
    }

    #[test]
    fn integrity_check_passes_and_fails() {
        let db = small_company();
        assert!(db.integrity_check().is_ok());
    }

    #[test]
    fn conversion_to_structure() {
        let db = small_company();
        let s = db.to_structure();
        let e1 = s.lookup_name(&Name::atom("e1")).unwrap();
        let employee = s.lookup_name(&Name::atom("employee")).unwrap();
        let person = s.lookup_name(&Name::atom("person")).unwrap();
        assert!(s.in_class(e1, employee));
        assert!(s.in_class(e1, person), "subclass edges are carried over");
        let age = s.lookup_name(&Name::atom("age")).unwrap();
        let thirty = s.lookup_name(&Name::Int(30)).unwrap();
        assert_eq!(s.apply_scalar(age, e1, &[]), Some(thirty));
        let vehicles = s.lookup_name(&Name::atom("vehicles")).unwrap();
        assert_eq!(s.apply_set(vehicles, e1, &[]).unwrap().len(), 1);
        assert!(s.signatures().len() >= 15, "schema attributes become signatures");
    }

    #[test]
    fn structure_from_store_type_checks() {
        let db = small_company();
        let mut s = db.to_structure();
        // integers/atoms/strings are not members of the pseudo value classes
        // by default, so only class-ranged signatures are checkable; make the
        // value classes explicit for a full check.
        let integer = s.atom("integer");
        let atom_class = s.atom("atom");
        let string_class = s.atom("string");
        for (name, oid) in s.names().map(|(n, o)| (n.clone(), o)).collect::<Vec<_>>() {
            match name {
                Name::Int(_) => {
                    s.add_isa(oid, integer);
                }
                Name::Str(_) => {
                    s.add_isa(oid, string_class);
                }
                Name::Atom(_) => {
                    let _ = atom_class;
                }
            }
        }
        let atoms: Vec<_> = ["red", "newYork"].iter().map(|a| s.atom(a)).collect();
        for a in atoms {
            s.add_isa(a, atom_class);
        }
        let errors = pathlog_core::typing::type_check(&s);
        assert!(errors.is_empty(), "{errors:?}");
    }
}
