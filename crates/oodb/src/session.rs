//! MVCC reader sessions over an [`ObjectStore`].
//!
//! [`ObjectStore::begin_session`] hands out cheap pinned-snapshot
//! [`Session`]s: each session holds an immutable, epoch-stamped
//! [`Snapshot`] of the store's PathLog image and answers queries against it
//! **without any store lock** — sessions are `Send`, so any number of
//! reader threads can query concurrently while the single writer (the
//! `&mut ObjectStore` holder) keeps committing [`Transaction`] batches
//! through the constraint guard.  Every successful commit publishes a new
//! epoch to the store's [`SnapshotRegistry`]; sessions opened earlier keep
//! seeing their pinned epoch bit-identically (`canonical_dump()`-stable)
//! until dropped, at which point the registry reclaims snapshots nobody
//! pins anymore.
//!
//! One version authority: the published epoch **is** the store's `version`
//! counter — the same number the constraint guard uses for out-of-band
//! mutation detection.  Starting a session never bumps it, so a session
//! start racing a commit can never push the guard onto the
//! full-shadow-rebuild path.
//!
//! [`Transaction`]: crate::Transaction
//! [`SnapshotRegistry`]: pathlog_core::snapshot::SnapshotRegistry

use std::sync::Arc;

use pathlog_core::constraints::{tolerant_query, Quarantine, TolerantAnswers};
use pathlog_core::engine::Engine;
use pathlog_core::program::Query;
use pathlog_core::semantics::{Answer, Bindings};
use pathlog_core::snapshot::{Epoch, PinnedSnapshot, Snapshot, SnapshotRegistry, SnapshotStats};
use pathlog_core::structure::Structure;
use pathlog_core::term::Term;

use crate::image::StoreImage;
use crate::store::ObjectStore;
use crate::txn::Change;

/// The store side of the serving layer: the snapshot registry plus the
/// bookkeeping needed to publish cheaply (an incrementally maintained
/// [`StoreImage`] when no guard is installed; the guard's shadow is reused
/// directly when one is).
#[derive(Debug, Default)]
pub(crate) struct ServingState {
    registry: Arc<SnapshotRegistry>,
    /// PathLog image replayed commit-by-commit — maintained only while no
    /// constraint guard is installed (the guard's shadow already is that
    /// image, so publishing clones it instead of keeping a second copy).
    image: Option<StoreImage>,
    /// Quarantine ledger aligned with the *current* published snapshot
    /// (cloned from the guard at publish time).  `None` when the snapshot
    /// was built without a synced guard; sessions then answer tolerant
    /// queries with an empty ledger, i.e. everything clean.
    quarantine: Option<Arc<Quarantine>>,
    /// Store `version` the current published snapshot reflects.  `None`
    /// until the first publish.
    synced_version: Option<u64>,
}

/// Serving state is deliberately **not** carried across store clones: a
/// clone is a new single-writer domain and must not publish into the
/// original's registry (readers would see epochs from two histories).
impl Clone for ServingState {
    fn clone(&self) -> Self {
        ServingState::default()
    }
}

impl ServingState {
    /// Publish the store's current image at `version`, preferring the
    /// guard's shadow (quarantine-aligned) when it is in sync.
    fn publish(&mut self, store: &ObjectStore, version: u64, log: Option<(&[Change], u64)>) {
        match store.constraint_guard() {
            Some(guard) if guard_synced(guard, version) => {
                self.image = None;
                self.quarantine = Some(Arc::new(guard.quarantine().clone()));
                self.registry.publish(version, Arc::new(guard.shadow().clone()));
            }
            _ => {
                let image = match (self.image.take(), log) {
                    (Some(mut image), Some((log, begin_version))) if self.synced_version == Some(begin_version) => {
                        image.apply(log);
                        image
                    }
                    _ => StoreImage::of_store(store),
                };
                self.quarantine = None;
                self.registry.publish(version, Arc::new(image.structure().clone()));
                self.image = Some(image);
            }
        }
        self.synced_version = Some(version);
    }

    fn registry(&self) -> &Arc<SnapshotRegistry> {
        &self.registry
    }
}

fn guard_synced(guard: &crate::guard::ConstraintGuard, version: u64) -> bool {
    guard.synced_version() == version
}

impl ObjectStore {
    /// Start a pinned-snapshot reader session with a default [`Engine`].
    ///
    /// See [`ObjectStore::begin_session_with`].
    pub fn begin_session(&mut self) -> Session {
        self.begin_session_with(Engine::new())
    }

    /// Start a pinned-snapshot reader session that answers queries with
    /// `engine` (clones of a pooled engine share its worker pool).
    ///
    /// The session pins the store's **current** epoch: it sees every commit
    /// up to now and none after, bit-identically, for as long as it lives.
    /// Sessions are `Send` and lock-free on the read path — hand them to as
    /// many reader threads as you like while this `&mut self` writer keeps
    /// committing.  Needs `&mut self` only to lazily build/refresh the
    /// published snapshot; the store `version` is **not** bumped (one
    /// version authority — see the module docs).
    pub fn begin_session_with(&mut self, engine: Engine) -> Session {
        let version = self.version();
        let mut serving = self.serving.take().unwrap_or_default();
        if serving.synced_version != Some(version) {
            serving.publish(self, version, None);
        }
        let pin = serving.registry().pin().expect("a snapshot was just published");
        let quarantine = serving.quarantine.clone();
        self.serving = Some(serving);
        Session {
            pin,
            quarantine,
            engine,
        }
    }

    /// Publish the post-commit image as a new epoch.  Returns the epoch
    /// (the store `version` after the commit), or `None` while serving is
    /// inactive (no session ever started).
    pub(crate) fn publish_after_commit(&mut self, log: &[Change], begin_version: u64) -> Option<Epoch> {
        let mut serving = self.serving.take()?;
        let version = self.version();
        serving.publish(self, version, Some((log, begin_version)));
        self.serving = Some(serving);
        Some(version)
    }

    /// After a rollback the store content is back at its `begin_version`
    /// state; if the published snapshot reflected that state, fast-forward
    /// the serving sync point past the rollback's version bumps so the next
    /// session/commit publishes incrementally instead of rebuilding.
    pub(crate) fn resync_serving_after_rollback(&mut self, begin_version: u64) {
        let version = self.version();
        if let Some(serving) = self.serving.as_deref_mut() {
            if serving.synced_version == Some(begin_version) {
                serving.synced_version = Some(version);
            }
        }
    }

    /// Lifetime snapshot-serving counters (zeros while serving is
    /// inactive): epochs published, sessions pinned, snapshots reclaimed.
    pub fn serving_stats(&self) -> SnapshotStats {
        self.serving.as_deref().map(|s| s.registry.stats()).unwrap_or_default()
    }

    /// Number of epochs currently retained by live sessions — the MVCC
    /// window.  Zero at rest; a non-zero value after all sessions were
    /// dropped would be an epoch leak.
    pub fn pinned_epochs(&self) -> usize {
        self.serving.as_deref().map(|s| s.registry.pinned_epochs()).unwrap_or(0)
    }
}

/// A pinned-snapshot reader session (see [`ObjectStore::begin_session`]).
///
/// Holds an epoch-stamped immutable view of the store's PathLog image and
/// an [`Engine`] to answer queries with.  All reads are lock-free; the
/// session keeps its epoch alive in the registry until dropped.
#[derive(Debug)]
pub struct Session {
    pin: PinnedSnapshot,
    quarantine: Option<Arc<Quarantine>>,
    engine: Engine,
}

impl Session {
    /// The epoch this session is pinned to (the store `version` at the
    /// last commit it sees).
    pub fn epoch(&self) -> Epoch {
        self.pin.epoch()
    }

    /// The pinned snapshot.
    pub fn snapshot(&self) -> &Snapshot {
        self.pin.snapshot()
    }

    /// The frozen structure of the pinned epoch.
    pub fn structure(&self) -> &Structure {
        self.pin.structure()
    }

    /// The query engine this session answers with.
    pub fn engine(&self) -> &Engine {
        &self.engine
    }

    /// The byte-stable dump of the pinned image — the bit-identity oracle
    /// used by the serving cross-checks.
    pub fn canonical_dump(&self) -> String {
        self.structure().canonical_dump()
    }

    /// Answer a query against the pinned snapshot.
    pub fn query(&self, query: &Query) -> pathlog_core::error::Result<Vec<Bindings>> {
        self.engine.query(self.structure(), query)
    }

    /// Enumerate the answers of a reference term against the pinned
    /// snapshot.
    pub fn query_term(&self, term: &Term) -> pathlog_core::error::Result<Vec<Answer>> {
        self.engine.query_term(self.structure(), term)
    }

    /// Answer a query in inconsistency-tolerant mode against the pinned
    /// snapshot, flagging answers that depend on quarantined facts.
    ///
    /// The quarantine ledger is the one aligned with this session's epoch
    /// (cloned from the constraint guard at publish time).  Sessions whose
    /// snapshot was built without a synced guard carry an empty ledger, so
    /// every answer reports clean.
    pub fn tolerant_query(&self, query: &Query) -> pathlog_core::error::Result<TolerantAnswers> {
        static EMPTY: std::sync::OnceLock<Quarantine> = std::sync::OnceLock::new();
        let quarantine = match self.quarantine.as_deref() {
            Some(q) => q,
            None => EMPTY.get_or_init(Quarantine::default),
        };
        tolerant_query(&self.engine, self.structure(), quarantine, query)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{Schema, Value};
    use pathlog_core::term::Filter;

    fn store() -> ObjectStore {
        let mut db = ObjectStore::with_schema(Schema::company());
        db.create("d1", "department").unwrap();
        for i in 0..4 {
            let name = format!("e{i}");
            db.create(&name, "employee").unwrap();
            db.set(&name, "salary", Value::Int(1000 + i)).unwrap();
            db.set(&name, "worksFor", Value::obj("d1")).unwrap();
        }
        db
    }

    fn salary_query() -> Query {
        Query::single(
            Term::var("X")
                .isa("employee")
                .filter(Filter::scalar("salary", Term::var("S"))),
        )
    }

    #[test]
    fn sessions_pin_their_epoch_across_commits() {
        let mut db = store();
        let s0 = db.begin_session();
        let dump0 = s0.canonical_dump();
        assert_eq!(s0.query(&salary_query()).unwrap().len(), 4);

        let mut txn = db.begin();
        txn.set("e0", "salary", Value::Int(9999)).unwrap();
        let receipt = txn.commit().unwrap();
        assert_eq!(
            receipt.epoch,
            Some(db.version()),
            "commit publishes at the store version"
        );

        // The old session still sees the pre-commit image, bit-identically.
        assert_eq!(s0.canonical_dump(), dump0);
        // A new session sees the commit.
        let s1 = db.begin_session();
        assert!(s1.epoch() > s0.epoch());
        assert_ne!(s1.canonical_dump(), dump0);
        assert_eq!(s1.query(&salary_query()).unwrap().len(), 4);

        // Bit-identity against a sequential oracle: a second store replaying
        // the identical history publishes byte-identical snapshots.
        let mut oracle = store();
        let o0 = oracle.begin_session();
        assert_eq!(o0.canonical_dump(), dump0);
        let mut txn = oracle.begin();
        txn.set("e0", "salary", Value::Int(9999)).unwrap();
        txn.commit().unwrap();
        assert_eq!(oracle.begin_session().canonical_dump(), s1.canonical_dump());
    }

    #[test]
    fn sessions_are_send_and_queryable_from_threads() {
        let mut db = store();
        let sessions: Vec<Session> = (0..4).map(|_| db.begin_session()).collect();
        let expected = db.to_structure().canonical_dump();
        let handles: Vec<_> = sessions
            .into_iter()
            .map(|s| {
                let expected = expected.clone();
                std::thread::spawn(move || {
                    assert_eq!(s.canonical_dump(), expected);
                    s.query(&salary_query()).unwrap().len()
                })
            })
            .collect();
        for h in handles {
            assert_eq!(h.join().unwrap(), 4);
        }
    }

    #[test]
    fn dropping_last_session_reclaims_the_epoch() {
        let mut db = store();
        let s0 = db.begin_session();
        let weak = Arc::downgrade(s0.snapshot().structure_arc());
        let mut txn = db.begin();
        txn.set("e1", "salary", Value::Int(2)).unwrap();
        txn.commit().unwrap();
        assert!(weak.upgrade().is_some(), "pinned epoch retained");
        drop(s0);
        assert!(weak.upgrade().is_none(), "superseded epoch freed with its last session");
        let stats = db.serving_stats();
        assert_eq!(stats.snapshots_pinned, 1);
        assert_eq!(stats.snapshots_reclaimed, 1);
        assert_eq!(db.pinned_epochs(), 0, "no epoch leak");
    }

    #[test]
    fn session_start_does_not_bump_the_version() {
        let mut db = store();
        let before = db.version();
        let _s = db.begin_session();
        let _t = db.begin_session();
        assert_eq!(db.version(), before, "sessions must not mutate the version authority");
    }

    #[test]
    fn rollback_keeps_serving_incremental() {
        let mut db = store();
        let _s = db.begin_session();
        {
            let mut txn = db.begin();
            txn.set("e2", "salary", Value::Int(1)).unwrap();
            // dropped: rolled back
        }
        let s = db.begin_session();
        assert_eq!(s.canonical_dump(), db.to_structure().canonical_dump());
        // The rollback fast-forwarded the sync point; the second session
        // re-pinned the existing snapshot instead of publishing a new one.
        assert_eq!(db.serving_stats().epochs_published, 1);
    }

    #[test]
    fn cloned_store_serves_independently() {
        let mut db = store();
        let _s = db.begin_session();
        let mut copy = db.clone();
        assert_eq!(copy.serving_stats(), SnapshotStats::default(), "clone starts fresh");
        let s2 = copy.begin_session();
        assert_eq!(s2.canonical_dump(), db.to_structure().canonical_dump());
    }
}
