//! Schema: classes, a subclass hierarchy, and attribute (method) signatures.
//!
//! PathLog itself is schema-less — objects, classes and methods are all just
//! objects — but the extensional databases the paper's examples assume (an
//! employee/vehicle world, a person/address world, a genealogy) have obvious
//! schemas.  This module provides them: classes with single or multiple
//! inheritance, and typed scalar/set-valued attributes.  The schema is
//! translated into PathLog signature declarations by
//! [`ObjectStore::to_structure`](crate::store::ObjectStore::to_structure) so
//! the paper's type-checking claim can be exercised end to end.

use std::collections::BTreeMap;

use crate::error::{Result, StoreError};

/// Is an attribute scalar (at most one value) or set-valued?
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum AttrKind {
    /// Scalar attribute (`I_->`).
    Scalar,
    /// Set-valued attribute (`I_->>`).
    Set,
}

/// The range of an attribute.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Range {
    /// Values must be members of this class.
    Class(String),
    /// Values are integers.
    Integer,
    /// Values are strings.
    Str,
    /// Values are atoms (symbolic constants such as `red`).
    Atom,
    /// No restriction.
    Any,
}

/// A class definition.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ClassDef {
    /// Class name.
    pub name: String,
    /// Direct superclasses.
    pub superclasses: Vec<String>,
}

/// An attribute definition.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct AttrDef {
    /// Attribute (method) name.
    pub name: String,
    /// Scalar or set-valued.
    pub kind: AttrKind,
    /// The class whose members carry the attribute.
    pub domain: String,
    /// The range of the attribute's values.
    pub range: Range,
}

/// A database schema.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct Schema {
    classes: BTreeMap<String, ClassDef>,
    attrs: BTreeMap<String, AttrDef>,
}

impl Schema {
    /// An empty schema.
    pub fn new() -> Self {
        Self::default()
    }

    /// Define a class with its direct superclasses.
    pub fn class(&mut self, name: &str, superclasses: &[&str]) -> Result<&mut Self> {
        if self.classes.contains_key(name) {
            return Err(StoreError::Duplicate(format!("class {name}")));
        }
        self.classes.insert(
            name.to_owned(),
            ClassDef {
                name: name.to_owned(),
                superclasses: superclasses.iter().map(|s| s.to_string()).collect(),
            },
        );
        Ok(self)
    }

    /// Define an attribute.
    pub fn attr(&mut self, name: &str, kind: AttrKind, domain: &str, range: Range) -> Result<&mut Self> {
        if self.attrs.contains_key(name) {
            return Err(StoreError::Duplicate(format!("attribute {name}")));
        }
        self.attrs.insert(
            name.to_owned(),
            AttrDef {
                name: name.to_owned(),
                kind,
                domain: domain.to_owned(),
                range,
            },
        );
        Ok(self)
    }

    /// Look up a class.
    pub fn class_def(&self, name: &str) -> Option<&ClassDef> {
        self.classes.get(name)
    }

    /// Look up an attribute.
    pub fn attr_def(&self, name: &str) -> Option<&AttrDef> {
        self.attrs.get(name)
    }

    /// All classes.
    pub fn classes(&self) -> impl Iterator<Item = &ClassDef> + '_ {
        self.classes.values()
    }

    /// All attributes.
    pub fn attrs(&self) -> impl Iterator<Item = &AttrDef> + '_ {
        self.attrs.values()
    }

    /// Is `sub` equal to or a (transitive) subclass of `sup`?
    pub fn is_subclass(&self, sub: &str, sup: &str) -> bool {
        if sub == sup {
            return true;
        }
        let mut stack = vec![sub];
        let mut seen = std::collections::BTreeSet::new();
        while let Some(c) = stack.pop() {
            if !seen.insert(c.to_owned()) {
                continue;
            }
            if let Some(def) = self.classes.get(c) {
                for s in &def.superclasses {
                    if s == sup {
                        return true;
                    }
                    stack.push(s);
                }
            }
        }
        false
    }

    /// Check internal consistency: every superclass and every domain/range
    /// class must be defined, and the hierarchy must be acyclic.
    pub fn validate(&self) -> Result<()> {
        for c in self.classes.values() {
            for s in &c.superclasses {
                if !self.classes.contains_key(s) {
                    return Err(StoreError::Unknown(format!("superclass {s} of class {}", c.name)));
                }
            }
        }
        for a in self.attrs.values() {
            if !self.classes.contains_key(&a.domain) {
                return Err(StoreError::Unknown(format!(
                    "domain class {} of attribute {}",
                    a.domain, a.name
                )));
            }
            if let Range::Class(r) = &a.range {
                if !self.classes.contains_key(r) {
                    return Err(StoreError::Unknown(format!("range class {r} of attribute {}", a.name)));
                }
            }
        }
        // cycle check: a class must not be a strict subclass of itself
        for c in self.classes.keys() {
            for s in &self.classes[c].superclasses {
                if self.is_subclass(s, c) {
                    return Err(StoreError::SchemaViolation(format!(
                        "class hierarchy cycle through {c}"
                    )));
                }
            }
        }
        Ok(())
    }

    /// The schema of the company/vehicle world used by Sections 1 and 2 of
    /// the paper (employees and managers owning vehicles and automobiles
    /// produced by companies).
    pub fn company() -> Schema {
        let mut s = Schema::new();
        s.class("person", &[]).unwrap();
        s.class("employee", &["person"]).unwrap();
        s.class("manager", &["employee"]).unwrap();
        s.class("vehicle", &[]).unwrap();
        s.class("automobile", &["vehicle"]).unwrap();
        s.class("company", &[]).unwrap();
        s.class("department", &[]).unwrap();
        s.class("engine", &[]).unwrap();
        s.attr("age", AttrKind::Scalar, "person", Range::Integer).unwrap();
        s.attr("city", AttrKind::Scalar, "person", Range::Atom).unwrap();
        s.attr("street", AttrKind::Scalar, "person", Range::Str).unwrap();
        s.attr("salary", AttrKind::Scalar, "employee", Range::Integer).unwrap();
        s.attr("boss", AttrKind::Scalar, "employee", Range::Class("employee".into()))
            .unwrap();
        s.attr(
            "worksFor",
            AttrKind::Scalar,
            "employee",
            Range::Class("department".into()),
        )
        .unwrap();
        s.attr("assistants", AttrKind::Set, "employee", Range::Class("employee".into()))
            .unwrap();
        s.attr("vehicles", AttrKind::Set, "person", Range::Class("vehicle".into()))
            .unwrap();
        s.attr("friends", AttrKind::Set, "person", Range::Class("person".into()))
            .unwrap();
        s.attr("kids", AttrKind::Set, "person", Range::Class("person".into()))
            .unwrap();
        s.attr("color", AttrKind::Scalar, "vehicle", Range::Atom).unwrap();
        s.attr("cylinders", AttrKind::Scalar, "automobile", Range::Integer)
            .unwrap();
        s.attr(
            "engineOf",
            AttrKind::Scalar,
            "automobile",
            Range::Class("engine".into()),
        )
        .unwrap();
        s.attr("power", AttrKind::Scalar, "engine", Range::Integer).unwrap();
        s.attr(
            "producedBy",
            AttrKind::Scalar,
            "vehicle",
            Range::Class("company".into()),
        )
        .unwrap();
        s.attr("cityOf", AttrKind::Scalar, "company", Range::Atom).unwrap();
        s.attr("president", AttrKind::Scalar, "company", Range::Class("person".into()))
            .unwrap();
        debug_assert!(s.validate().is_ok());
        s
    }

    /// The genealogy schema of Section 6 (persons and their kids).
    pub fn genealogy() -> Schema {
        let mut s = Schema::new();
        s.class("person", &[]).unwrap();
        s.attr("kids", AttrKind::Set, "person", Range::Class("person".into()))
            .unwrap();
        s.attr("age", AttrKind::Scalar, "person", Range::Integer).unwrap();
        debug_assert!(s.validate().is_ok());
        s
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn build_and_query_schema() {
        let s = Schema::company();
        assert!(s.validate().is_ok());
        assert!(s.class_def("manager").is_some());
        assert!(s.attr_def("vehicles").is_some());
        assert_eq!(s.attr_def("vehicles").unwrap().kind, AttrKind::Set);
        assert!(s.classes().count() >= 8);
        assert!(s.attrs().count() >= 15);
    }

    #[test]
    fn subclass_relation_is_transitive_and_reflexive() {
        let s = Schema::company();
        assert!(s.is_subclass("manager", "person"));
        assert!(s.is_subclass("manager", "employee"));
        assert!(s.is_subclass("employee", "employee"));
        assert!(!s.is_subclass("person", "manager"));
        assert!(!s.is_subclass("vehicle", "person"));
    }

    #[test]
    fn duplicates_are_rejected() {
        let mut s = Schema::new();
        s.class("a", &[]).unwrap();
        assert!(s.class("a", &[]).is_err());
        s.attr("x", AttrKind::Scalar, "a", Range::Any).unwrap();
        assert!(s.attr("x", AttrKind::Set, "a", Range::Any).is_err());
    }

    #[test]
    fn validation_finds_unknown_references() {
        let mut s = Schema::new();
        s.class("a", &["ghost"]).unwrap();
        assert!(matches!(s.validate(), Err(StoreError::Unknown(_))));

        let mut s = Schema::new();
        s.class("a", &[]).unwrap();
        s.attr("x", AttrKind::Scalar, "nowhere", Range::Any).unwrap();
        assert!(s.validate().is_err());

        let mut s = Schema::new();
        s.class("a", &[]).unwrap();
        s.attr("x", AttrKind::Scalar, "a", Range::Class("ghost".into()))
            .unwrap();
        assert!(s.validate().is_err());
    }

    #[test]
    fn hierarchy_cycles_are_rejected() {
        let mut s = Schema::new();
        s.class("a", &["b"]).unwrap();
        s.class("b", &["a"]).unwrap();
        assert!(matches!(s.validate(), Err(StoreError::SchemaViolation(_))));
    }

    #[test]
    fn genealogy_schema() {
        let s = Schema::genealogy();
        assert!(s.validate().is_ok());
        assert_eq!(s.attr_def("kids").unwrap().kind, AttrKind::Set);
    }
}
