//! Compilation of object-SQL statements into PathLog queries and rules.
//!
//! This is the constructive half of the paper's conclusion — "we have shown
//! by several examples how to adopt path expressions generalized in this way
//! to object oriented SQL dialects": every SELECT query becomes one PathLog
//! [`Query`] whose body literals are references, and every XSQL-style
//! `CREATE VIEW ... OID FUNCTION OF X` becomes the corresponding PathLog
//! rule `X.view[attr -> ...] <- X : class, ...` that defines the view
//! objects through a *method* instead of a function symbol (Section 6).

use pathlog_core::builtins::SELF_METHOD;
use pathlog_core::names::Var;
use pathlog_core::program::{Literal, Query, Rule};
use pathlog_core::term::{Filter, Term};

use crate::ast::{Condition, CreateView, FromRange, SelectQuery, SqlExpr, Statement};
use crate::catalog::Catalog;
use crate::error::{Result, SqlError};

/// A SELECT query compiled to PathLog.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CompiledQuery {
    /// The PathLog query whose answers are the SQL result rows.
    pub query: Query,
    /// The result columns: label and the variable that carries the value.
    pub columns: Vec<(String, Var)>,
}

impl CompiledQuery {
    /// The PathLog concrete syntax of the compiled query (`?- ...`).
    pub fn pathlog_text(&self) -> String {
        self.query.to_string()
    }
}

/// The result of compiling one statement.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Compiled {
    /// A SELECT query.
    Query(CompiledQuery),
    /// A view definition, compiled to a PathLog rule with a virtual-object
    /// head.
    Rule(Rule),
}

/// Statement compiler.
#[derive(Debug)]
pub struct Compiler<'a> {
    catalog: &'a Catalog,
    fresh: usize,
}

impl<'a> Compiler<'a> {
    /// A compiler using the given attribute catalog.
    pub fn new(catalog: &'a Catalog) -> Self {
        Compiler { catalog, fresh: 0 }
    }

    /// Compile one statement.
    pub fn statement(&mut self, statement: &Statement) -> Result<Compiled> {
        match statement {
            Statement::Select(q) => Ok(Compiled::Query(self.select(q)?)),
            Statement::CreateView(v) => Ok(Compiled::Rule(self.view(v)?)),
        }
    }

    /// Compile a SELECT query into a PathLog query plus result columns.
    ///
    /// Body literals are ordered by a simple connectivity heuristic (start
    /// with the first FROM range, then always pick a literal that shares a
    /// variable with the ones already placed): O2SQL range lists such as
    /// `FROM employee X, automobile Y` would otherwise compile to a cross
    /// product that the engine's left-to-right join materialises in full.
    pub fn select(&mut self, query: &SelectQuery) -> Result<CompiledQuery> {
        let mut body = Vec::new();
        for range in &query.from {
            body.push(self.range(range)?);
        }
        for condition in &query.conditions {
            body.push(self.condition(condition)?);
        }
        let mut columns = Vec::new();
        for item in &query.select {
            match &item.expr {
                SqlExpr::Var(v) => columns.push((item.column_name(), Var::new(v.clone()))),
                expr => {
                    // A selected path gets a fresh result variable bound by an
                    // extra body literal (`Y.color` -> `Y.color[_SEL1]`).
                    self.fresh += 1;
                    let var = Var::new(format!("_SEL{}", self.fresh));
                    let term = self.term(expr)?;
                    body.push(Literal::pos(term.selector(Term::Var(var.clone()))));
                    columns.push((item.column_name(), var));
                }
            }
        }
        Ok(CompiledQuery {
            query: Query::new(order_body(body)),
            columns,
        })
    }

    /// Compile a `CREATE VIEW` into the PathLog rule that defines the view
    /// objects as virtual objects referenced through the view method.
    pub fn view(&mut self, view: &CreateView) -> Result<Rule> {
        if view.oid_of != view.var {
            return Err(SqlError::message(format!(
                "OID FUNCTION OF {} must name the range variable {} (views keyed by other variables \
                 are not part of query 6.3)",
                view.oid_of, view.var
            )));
        }
        let mut filters = Vec::with_capacity(view.attributes.len());
        for (attr, expr) in &view.attributes {
            filters.push(Filter::scalar(Term::name(normalise(attr)), self.term(expr)?));
        }
        let head = Term::var(view.var.clone())
            .scalar(Term::name(normalise(&view.name)))
            .filters(filters);
        let mut body = vec![Literal::pos(
            Term::var(view.var.clone()).isa(Term::name(normalise(&view.source_class))),
        )];
        for condition in &view.conditions {
            body.push(self.condition(condition)?);
        }
        Ok(Rule::new(head, body))
    }

    /// Compile one FROM range into a body literal.
    fn range(&mut self, range: &FromRange) -> Result<Literal> {
        match &range.source {
            SqlExpr::Name(class) => Ok(Literal::pos(
                Term::var(range.var.clone()).isa(Term::name(normalise(class))),
            )),
            source => {
                let term = self.term(source)?;
                Ok(Literal::pos(term.selector(Term::var(range.var.clone()))))
            }
        }
    }

    /// Compile one WHERE condition into a body literal.
    fn condition(&mut self, condition: &Condition) -> Result<Literal> {
        let term = match condition {
            Condition::Eq(lhs, rhs) => {
                if rhs.is_simple() {
                    self.term(lhs)?.selector(self.term(rhs)?)
                } else if lhs.is_simple() {
                    self.term(rhs)?.selector(self.term(lhs)?)
                } else {
                    let rhs = self.term(rhs)?;
                    self.term(lhs)?.filter(Filter::scalar(SELF_METHOD, rhs))
                }
            }
            Condition::In(element, collection) => match collection {
                SqlExpr::Name(class) => self.term(element)?.isa(Term::name(normalise(class))),
                _ => {
                    let element = self.term(element)?;
                    self.term(collection)?.selector(element)
                }
            },
            Condition::Truth(expr) => self.term(expr)?,
        };
        Ok(Literal::pos(term))
    }

    /// Compile a path expression into a PathLog reference, consulting the
    /// catalog for attribute scalarity.
    pub fn term(&mut self, expr: &SqlExpr) -> Result<Term> {
        Ok(match expr {
            SqlExpr::Name(n) => Term::name(normalise(n)),
            SqlExpr::Var(v) => Term::var(v.clone()),
            SqlExpr::Int(i) => Term::int(*i),
            SqlExpr::Str(s) => Term::string(s.clone()),
            SqlExpr::Paren(e) => self.term(e)?.paren(),
            SqlExpr::Step {
                recv,
                method,
                args,
                explicit_set,
            } => {
                let recv = self.term(recv)?;
                let args = args.iter().map(|a| self.term(a)).collect::<Result<Vec<_>>>()?;
                let method_term = Term::name(normalise(method));
                if *explicit_set || self.catalog.is_set_valued(method) {
                    recv.set_args(method_term, args)
                } else {
                    recv.scalar_args(method_term, args)
                }
            }
            SqlExpr::Selector { recv, selector } => {
                let recv = self.term(recv)?;
                recv.selector(self.term(selector)?)
            }
            SqlExpr::Filtered { recv, filters } => {
                let recv = self.term(recv)?;
                let mut compiled = Vec::with_capacity(filters.len());
                for f in filters {
                    let args = f.args.iter().map(|a| self.term(a)).collect::<Result<Vec<_>>>()?;
                    compiled
                        .push(Filter::scalar(Term::name(normalise(&f.method)), self.term(&f.value)?).with_args(args));
                }
                recv.filters(compiled)
            }
        })
    }
}

/// Greedy connectivity-based ordering of positive body literals: keep the
/// first literal first, then repeatedly append the literal that shares a
/// variable with the already-placed ones and leaves the fewest new variables
/// unbound; fall back to the earliest remaining literal when nothing
/// connects.  Semantically the body is a conjunction, so any order is
/// correct; this one avoids materialising cross products of FROM ranges.
fn order_body(body: Vec<Literal>) -> Vec<Literal> {
    use std::collections::BTreeSet;
    let mut remaining: Vec<Literal> = body;
    let mut ordered: Vec<Literal> = Vec::with_capacity(remaining.len());
    let mut bound: BTreeSet<Var> = BTreeSet::new();
    while !remaining.is_empty() {
        let pick = remaining
            .iter()
            .enumerate()
            .min_by_key(|(index, literal)| {
                let vars = literal.term.variables();
                let connected = ordered.is_empty() || vars.iter().any(|v| bound.contains(v));
                let new_vars = vars.iter().filter(|v| !bound.contains(v)).count();
                (usize::from(!connected), new_vars, *index)
            })
            .map(|(index, _)| index)
            .expect("remaining is non-empty");
        let literal = remaining.remove(pick);
        bound.extend(literal.term.variables());
        ordered.push(literal);
    }
    ordered
}

/// Class, attribute and view names are case-insensitive on the SQL surface
/// (the paper writes both `Employee` and `employee`); PathLog names are not.
/// Normalise by lower-casing the first character only, which maps `Employee`
/// to `employee` and `WorksFor` to `worksFor` while leaving camel-case tails
/// intact.
fn normalise(name: &str) -> String {
    let mut chars = name.chars();
    match chars.next() {
        Some(first) => first.to_lowercase().chain(chars).collect(),
        None => String::new(),
    }
}

/// Parse and compile a single statement.
pub fn compile_statement(sql: &str, catalog: &Catalog) -> Result<Compiled> {
    let statement = crate::parser::parse_statement(sql)?;
    Compiler::new(catalog).statement(&statement)
}

/// Parse and compile a single SELECT query; views are rejected.
pub fn compile_query(sql: &str, catalog: &Catalog) -> Result<CompiledQuery> {
    match compile_statement(sql, catalog)? {
        Compiled::Query(q) => Ok(q),
        Compiled::Rule(_) => Err(SqlError::message(
            "expected a SELECT query, found a CREATE VIEW statement",
        )),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn catalog() -> Catalog {
        Catalog::with_set_attrs(["vehicles", "kids", "assistants"])
    }

    fn compile(sql: &str) -> CompiledQuery {
        compile_query(sql, &catalog()).unwrap()
    }

    #[test]
    fn query_1_1_compiles_to_the_pathlog_formulation() {
        let q = compile("SELECT Y.color FROM X IN employee FROM Y IN X.vehicles WHERE Y IN automobile");
        let text = q.pathlog_text();
        assert!(text.contains("X : employee"), "{text}");
        assert!(text.contains("X..vehicles[self -> Y]"), "{text}");
        assert!(text.contains("Y : automobile"), "{text}");
        assert!(text.contains("Y.color[self -> _SEL1]"), "{text}");
        assert_eq!(q.columns.len(), 1);
        assert_eq!(q.columns[0].0, "Y.color");
    }

    #[test]
    fn query_1_2_selectors_compile_to_self_filters() {
        let q = compile("SELECT Z FROM employee X, automobile Y WHERE X.vehicles[Y].color[Z]");
        let text = q.pathlog_text();
        assert!(text.contains("X : employee"));
        assert!(text.contains("Y : automobile"));
        assert!(text.contains("X..vehicles[self -> Y].color[self -> Z]"), "{text}");
        assert_eq!(q.columns, vec![("Z".to_string(), Var::new("Z"))]);
    }

    #[test]
    fn query_2_2_filters_pass_through() {
        let q = compile(
            "SELECT Z FROM employee X, automobile Y
             WHERE X[age -> 30; city -> newYork].vehicles[cylinders -> 4][Y].color[Z]",
        );
        let text = q.pathlog_text();
        assert!(text.contains("X[age -> 30; city -> newYork]"), "{text}");
        // The selector [Y] merges into the same filter list as [cylinders -> 4]
        // (both apply to the vehicle), exactly the paper's shorthand rule.
        assert!(text.contains("[cylinders -> 4; self -> Y]"), "{text}");
    }

    #[test]
    fn equality_conditions_become_selectors_or_self_filters() {
        let q = compile(
            "SELECT X FROM X IN manager FROM Y IN X.vehicles
             WHERE Y.color = red AND Y.producedBy.president = X AND X.boss.city = X.city",
        );
        let text = q.pathlog_text();
        assert!(text.contains("Y.color[self -> red]"), "{text}");
        assert!(text.contains("Y.producedBy.president[self -> X]"), "{text}");
        // both sides composite: a self filter with a nested reference value
        assert!(text.contains("X.boss.city[self -> X.city]"), "{text}");
    }

    #[test]
    fn membership_in_a_path_compiles_to_a_selector_on_the_set() {
        let q = compile("SELECT Y FROM X IN employee FROM Y IN automobile WHERE Y IN X.vehicles");
        let text = q.pathlog_text();
        assert!(text.contains("X..vehicles[self -> Y]"), "{text}");
    }

    #[test]
    fn selected_variables_need_no_extra_literal() {
        let q = compile("SELECT X FROM X IN employee");
        assert_eq!(q.query.body.len(), 1);
        assert_eq!(q.columns, vec![("X".to_string(), Var::new("X"))]);
    }

    #[test]
    fn explicit_double_dot_forces_a_set_step() {
        let q = compile_query("SELECT Y FROM X IN person WHERE X..friends[Y]", &Catalog::new()).unwrap();
        assert!(q.pathlog_text().contains("X..friends[self -> Y]"));
    }

    #[test]
    fn the_catalog_decides_single_dot_scalarity() {
        let with = compile_query("SELECT Y FROM X IN person WHERE X.kids[Y]", &catalog()).unwrap();
        assert!(with.pathlog_text().contains("X..kids"));
        let without = compile_query("SELECT Y FROM X IN person WHERE X.kids[Y]", &Catalog::new()).unwrap();
        assert!(without.pathlog_text().contains("X.kids["));
        assert!(!without.pathlog_text().contains("X..kids"));
    }

    #[test]
    fn view_6_3_compiles_to_a_virtual_object_rule() {
        let compiled = compile_statement(
            "CREATE VIEW EmployeeBoss SELECT WorksFor = D FROM Employee X OID FUNCTION OF X WHERE X.WorksFor[D]",
            &catalog(),
        )
        .unwrap();
        let Compiled::Rule(rule) = compiled else {
            panic!("expected a rule")
        };
        let text = rule.to_string();
        assert!(text.starts_with("X.employeeBoss[worksFor -> D] <- "), "{text}");
        assert!(text.contains("X : employee"), "{text}");
        assert!(text.contains("X.worksFor[self -> D]"), "{text}");
    }

    #[test]
    fn views_keyed_by_a_different_variable_are_rejected() {
        let err = compile_statement(
            "CREATE VIEW v SELECT a = D FROM employee X OID FUNCTION OF D WHERE X.worksFor[D]",
            &catalog(),
        )
        .unwrap_err();
        assert!(err.to_string().contains("OID FUNCTION OF"));
    }

    #[test]
    fn compile_query_rejects_views() {
        let err = compile_query("CREATE VIEW v SELECT a = X FROM c X OID FUNCTION OF X", &catalog()).unwrap_err();
        assert!(err.to_string().contains("SELECT query"));
    }

    #[test]
    fn string_and_integer_literals_compile() {
        let empty = Catalog::new();
        let mut compiler = Compiler::new(&empty);
        let t = compiler.term(&SqlExpr::Str("new york".into())).unwrap();
        assert_eq!(t.to_string(), "\"new york\"");
        let t = compiler.term(&SqlExpr::Int(4)).unwrap();
        assert_eq!(t.to_string(), "4");
    }

    #[test]
    fn method_arguments_are_preserved() {
        let q = compile("SELECT S FROM X IN employee WHERE X.salary@(1994)[S]");
        assert!(
            q.pathlog_text().contains("X.salary@(1994)[self -> S]"),
            "{}",
            q.pathlog_text()
        );
    }

    #[test]
    fn body_literals_are_ordered_by_connectivity_not_textual_position() {
        // `FROM employee X, automobile Y` must not compile to the cross
        // product `X : employee, Y : automobile, ...`; the vehicles literal
        // that connects X and Y has to come before the Y range.
        let q = compile("SELECT Z FROM employee X, automobile Y WHERE X.vehicles[Y].color[Z] AND Y.cylinders[4]");
        let rendered: Vec<String> = q.query.body.iter().map(|l| l.to_string()).collect();
        let pos_of = |needle: &str| rendered.iter().position(|l| l.contains(needle)).unwrap_or(usize::MAX);
        assert_eq!(pos_of("X : employee"), 0, "{rendered:?}");
        assert!(pos_of("vehicles") < pos_of("Y : automobile"), "{rendered:?}");
        assert!(pos_of("Y : automobile") < rendered.len(), "{rendered:?}");
    }

    #[test]
    fn ordering_keeps_disconnected_literals_in_textual_order() {
        let q = compile("SELECT X, Y FROM X IN employee FROM Y IN department");
        let rendered: Vec<String> = q.query.body.iter().map(|l| l.to_string()).collect();
        assert_eq!(rendered, vec!["X : employee".to_string(), "Y : department".to_string()]);
    }

    #[test]
    fn normalise_lowercases_only_the_first_character() {
        assert_eq!(normalise("Employee"), "employee");
        assert_eq!(normalise("WorksFor"), "worksFor");
        assert_eq!(normalise("producedBy"), "producedBy");
        assert_eq!(normalise(""), "");
    }
}
