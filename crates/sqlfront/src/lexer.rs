//! Tokenizer for the object-SQL dialect.
//!
//! The dialect merges the surface syntax of the paper's O2SQL examples
//! (`SELECT ... FROM X IN employee ... WHERE ...`), the XSQL examples
//! (`FROM employee X, automobile Y` and selectors `color[Z]`) and PathLog's
//! bracket filters (`vehicles[cylinders -> 4]`, query 2.2).  Keywords are
//! case-insensitive; identifiers starting with an upper-case letter are
//! variables, as in PathLog.

use crate::error::{Result, SqlError};

/// A lexical token.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SqlToken {
    /// `SELECT`
    Select,
    /// `FROM`
    From,
    /// `WHERE`
    Where,
    /// `IN`
    In,
    /// `AND`
    And,
    /// `CREATE`
    Create,
    /// `VIEW`
    View,
    /// `OID`
    Oid,
    /// `FUNCTION`
    Function,
    /// `OF`
    Of,
    /// An identifier starting with a lower-case letter (class, attribute or
    /// object name).
    Ident(String),
    /// An identifier starting with an upper-case letter (a variable).
    Var(String),
    /// An integer literal.
    Int(i64),
    /// A string literal (single quotes).
    Str(String),
    /// `.`
    Dot,
    /// `..`
    DotDot,
    /// `,`
    Comma,
    /// `;`
    Semicolon,
    /// `=`
    Eq,
    /// `->`
    Arrow,
    /// `(`
    LParen,
    /// `)`
    RParen,
    /// `[`
    LBracket,
    /// `]`
    RBracket,
    /// `@` (method call arguments, PathLog style)
    At,
}

impl SqlToken {
    /// A short human-readable description used in error messages.
    pub fn describe(&self) -> String {
        match self {
            SqlToken::Ident(s) => format!("identifier `{s}`"),
            SqlToken::Var(s) => format!("variable `{s}`"),
            SqlToken::Int(i) => format!("integer `{i}`"),
            SqlToken::Str(s) => format!("string '{s}'"),
            other => format!("`{other:?}`"),
        }
    }
}

/// A token with its source position.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SpannedToken {
    /// The token.
    pub token: SqlToken,
    /// 1-based line.
    pub line: usize,
    /// 1-based column.
    pub column: usize,
}

/// Map a keyword spelling to its token, case-insensitively.
fn keyword(word: &str) -> Option<SqlToken> {
    match word.to_ascii_uppercase().as_str() {
        "SELECT" => Some(SqlToken::Select),
        "FROM" => Some(SqlToken::From),
        "WHERE" => Some(SqlToken::Where),
        "IN" => Some(SqlToken::In),
        "AND" => Some(SqlToken::And),
        "CREATE" => Some(SqlToken::Create),
        "VIEW" => Some(SqlToken::View),
        "OID" => Some(SqlToken::Oid),
        "FUNCTION" => Some(SqlToken::Function),
        "OF" => Some(SqlToken::Of),
        _ => None,
    }
}

/// Tokenize an object-SQL text.
pub fn tokenize(input: &str) -> Result<Vec<SpannedToken>> {
    let mut tokens = Vec::new();
    let mut chars = input.chars().peekable();
    let mut line = 1usize;
    let mut column = 1usize;

    macro_rules! push {
        ($tok:expr, $col:expr) => {
            tokens.push(SpannedToken {
                token: $tok,
                line,
                column: $col,
            })
        };
    }

    while let Some(&c) = chars.peek() {
        let start_col = column;
        match c {
            '\n' => {
                chars.next();
                line += 1;
                column = 1;
            }
            c if c.is_whitespace() => {
                chars.next();
                column += 1;
            }
            '-' => {
                chars.next();
                column += 1;
                match chars.peek() {
                    Some('>') => {
                        chars.next();
                        column += 1;
                        push!(SqlToken::Arrow, start_col);
                    }
                    Some('-') => {
                        // `--` line comment
                        for c in chars.by_ref() {
                            if c == '\n' {
                                line += 1;
                                column = 1;
                                break;
                            }
                        }
                    }
                    _ => return Err(SqlError::new("expected `->` or `--` after `-`", line, start_col)),
                }
            }
            '.' => {
                chars.next();
                column += 1;
                if chars.peek() == Some(&'.') {
                    chars.next();
                    column += 1;
                    push!(SqlToken::DotDot, start_col);
                } else {
                    push!(SqlToken::Dot, start_col);
                }
            }
            ',' => {
                chars.next();
                column += 1;
                push!(SqlToken::Comma, start_col);
            }
            ';' => {
                chars.next();
                column += 1;
                push!(SqlToken::Semicolon, start_col);
            }
            '=' => {
                chars.next();
                column += 1;
                push!(SqlToken::Eq, start_col);
            }
            '(' => {
                chars.next();
                column += 1;
                push!(SqlToken::LParen, start_col);
            }
            ')' => {
                chars.next();
                column += 1;
                push!(SqlToken::RParen, start_col);
            }
            '[' => {
                chars.next();
                column += 1;
                push!(SqlToken::LBracket, start_col);
            }
            ']' => {
                chars.next();
                column += 1;
                push!(SqlToken::RBracket, start_col);
            }
            '@' => {
                chars.next();
                column += 1;
                push!(SqlToken::At, start_col);
            }
            '\'' => {
                chars.next();
                column += 1;
                let mut value = String::new();
                let mut closed = false;
                for c in chars.by_ref() {
                    column += 1;
                    if c == '\'' {
                        closed = true;
                        break;
                    }
                    if c == '\n' {
                        line += 1;
                        column = 1;
                    }
                    value.push(c);
                }
                if !closed {
                    return Err(SqlError::new("unterminated string literal", line, start_col));
                }
                push!(SqlToken::Str(value), start_col);
            }
            c if c.is_ascii_digit() => {
                let mut value = String::new();
                while let Some(&d) = chars.peek() {
                    if d.is_ascii_digit() {
                        value.push(d);
                        chars.next();
                        column += 1;
                    } else {
                        break;
                    }
                }
                let parsed = value.parse::<i64>().map_err(|_| {
                    SqlError::new(format!("integer literal `{value}` is out of range"), line, start_col)
                })?;
                push!(SqlToken::Int(parsed), start_col);
            }
            c if c.is_alphabetic() || c == '_' => {
                let mut word = String::new();
                while let Some(&d) = chars.peek() {
                    if d.is_alphanumeric() || d == '_' {
                        word.push(d);
                        chars.next();
                        column += 1;
                    } else {
                        break;
                    }
                }
                if let Some(kw) = keyword(&word) {
                    push!(kw, start_col);
                } else if word.chars().next().is_some_and(|c| c.is_uppercase()) {
                    push!(SqlToken::Var(word), start_col);
                } else {
                    push!(SqlToken::Ident(word), start_col);
                }
            }
            other => {
                return Err(SqlError::new(
                    format!("unexpected character `{other}`"),
                    line,
                    start_col,
                ));
            }
        }
    }
    Ok(tokens)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn kinds(input: &str) -> Vec<SqlToken> {
        tokenize(input).unwrap().into_iter().map(|t| t.token).collect()
    }

    #[test]
    fn keywords_are_case_insensitive() {
        assert_eq!(
            kinds("select SELECT Select"),
            vec![SqlToken::Select, SqlToken::Select, SqlToken::Select]
        );
        assert_eq!(
            kinds("from where in and"),
            vec![SqlToken::From, SqlToken::Where, SqlToken::In, SqlToken::And]
        );
        assert_eq!(
            kinds("create view oid function of"),
            vec![
                SqlToken::Create,
                SqlToken::View,
                SqlToken::Oid,
                SqlToken::Function,
                SqlToken::Of
            ]
        );
    }

    #[test]
    fn identifier_case_selects_variable_or_name() {
        assert_eq!(
            kinds("employee X color Z2"),
            vec![
                SqlToken::Ident("employee".into()),
                SqlToken::Var("X".into()),
                SqlToken::Ident("color".into()),
                SqlToken::Var("Z2".into()),
            ]
        );
    }

    #[test]
    fn punctuation_and_paths() {
        assert_eq!(
            kinds("X.vehicles[Y].color[Z]"),
            vec![
                SqlToken::Var("X".into()),
                SqlToken::Dot,
                SqlToken::Ident("vehicles".into()),
                SqlToken::LBracket,
                SqlToken::Var("Y".into()),
                SqlToken::RBracket,
                SqlToken::Dot,
                SqlToken::Ident("color".into()),
                SqlToken::LBracket,
                SqlToken::Var("Z".into()),
                SqlToken::RBracket,
            ]
        );
        assert_eq!(
            kinds("X..kids"),
            vec![
                SqlToken::Var("X".into()),
                SqlToken::DotDot,
                SqlToken::Ident("kids".into())
            ]
        );
    }

    #[test]
    fn filters_arrows_and_arguments() {
        assert_eq!(
            kinds("vehicles[cylinders -> 4]"),
            vec![
                SqlToken::Ident("vehicles".into()),
                SqlToken::LBracket,
                SqlToken::Ident("cylinders".into()),
                SqlToken::Arrow,
                SqlToken::Int(4),
                SqlToken::RBracket,
            ]
        );
        assert_eq!(
            kinds("salary@(1994)"),
            vec![
                SqlToken::Ident("salary".into()),
                SqlToken::At,
                SqlToken::LParen,
                SqlToken::Int(1994),
                SqlToken::RParen,
            ]
        );
    }

    #[test]
    fn strings_and_integers() {
        assert_eq!(
            kinds("'new york' 42"),
            vec![SqlToken::Str("new york".into()), SqlToken::Int(42)]
        );
    }

    #[test]
    fn comments_are_skipped() {
        assert_eq!(
            kinds("SELECT -- the colour\n X"),
            vec![SqlToken::Select, SqlToken::Var("X".into())]
        );
    }

    #[test]
    fn positions_are_recorded() {
        let toks = tokenize("SELECT X\nFROM employee X").unwrap();
        assert_eq!(toks[0].line, 1);
        assert_eq!(toks[0].column, 1);
        assert_eq!(toks[2].line, 2);
        assert_eq!(toks[2].column, 1);
        assert_eq!(toks[3].column, 6);
    }

    #[test]
    fn unterminated_string_is_an_error() {
        let err = tokenize("SELECT 'oops").unwrap_err();
        assert!(err.to_string().contains("unterminated"));
    }

    #[test]
    fn stray_characters_are_an_error() {
        let err = tokenize("SELECT #").unwrap_err();
        assert!(err.to_string().contains("unexpected character"));
        assert_eq!(err.line, 1);
    }

    #[test]
    fn lone_minus_is_an_error() {
        let err = tokenize("a - b").unwrap_err();
        assert!(err.to_string().contains("expected `->`"));
    }

    #[test]
    fn describe_mentions_the_lexeme() {
        assert!(SqlToken::Ident("color".into()).describe().contains("color"));
        assert!(SqlToken::Var("X".into()).describe().contains('X'));
        assert!(SqlToken::Int(4).describe().contains('4'));
        assert!(SqlToken::Str("s".into()).describe().contains('s'));
        assert!(SqlToken::Select.describe().contains("Select"));
    }
}
