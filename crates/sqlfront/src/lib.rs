//! # pathlog-sqlfront — object-SQL surface syntax over PathLog
//!
//! The paper introduces PathLog through a series of object-SQL queries:
//! O2SQL's range-based `SELECT ... FROM X IN employee` (query 1.1), XSQL's
//! selectors `X.vehicles[Y].color[Z]` (queries 1.2/1.4), PathLog-style
//! bracket filters inside an SQL WHERE clause (query 2.2) and XSQL's
//! `CREATE VIEW ... OID FUNCTION OF X` (query 6.3).  Its conclusion claims
//! that generalized path expressions "can be adopted by object oriented SQL
//! dialects".
//!
//! This crate makes that claim executable:
//!
//! * [`lexer`] / [`parser`] / [`ast`] implement the object-SQL dialect
//!   covering all of the paper's SQL examples;
//! * [`catalog`] supplies the schema knowledge (which attributes are
//!   set-valued) that O2SQL/XSQL presuppose;
//! * [`compile`] turns SELECT queries into PathLog [`Query`]s
//!   (one body literal per range/condition) and CREATE VIEW statements into
//!   PathLog rules whose heads define the view objects through a *method*
//!   rather than a function symbol — exactly the contrast of Section 6;
//! * [`exec`] evaluates compiled statements with the PathLog engine and
//!   formats result rows.
//!
//! ```
//! use pathlog_core::structure::Structure;
//! use pathlog_sqlfront::{compile_query, Catalog};
//!
//! let catalog = Catalog::with_set_attrs(["vehicles"]);
//! let compiled = compile_query(
//!     "SELECT Y.color FROM X IN employee FROM Y IN X.vehicles WHERE Y IN automobile",
//!     &catalog,
//! )
//! .unwrap();
//! // The SQL query became one PathLog query ...
//! assert!(compiled.pathlog_text().starts_with("?- X : employee"));
//! // ... that any PathLog engine can answer.
//! let (columns, rows) = pathlog_sqlfront::execute_query(&Structure::new(), &compiled).unwrap();
//! assert_eq!(columns, vec!["Y.color".to_string()]);
//! assert!(rows.is_empty());
//! ```
//!
//! [`Query`]: pathlog_core::program::Query

#![warn(missing_docs)]

pub mod ast;
pub mod catalog;
pub mod compile;
pub mod error;
pub mod exec;
pub mod lexer;
pub mod parser;

pub use ast::{Condition, CreateView, FromRange, SelectItem, SelectQuery, SqlExpr, SqlFilter, Statement};
pub use catalog::Catalog;
pub use compile::{compile_query, compile_statement, Compiled, CompiledQuery, Compiler};
pub use error::{Result, SqlError};
pub use exec::{execute, execute_query, StatementResult};
pub use parser::{parse_expression, parse_statement, parse_statements};
