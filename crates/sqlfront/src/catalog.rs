//! Attribute catalog: which attributes are set-valued.
//!
//! O2SQL and XSQL write `X.vehicles` with a single dot even though `vehicles`
//! is a set-valued attribute — the schema disambiguates.  PathLog instead
//! distinguishes `.` and `..` syntactically.  The compiler therefore needs a
//! small catalog of set-valued attribute names to translate the SQL surface
//! faithfully; it can be derived from an OODB [`Schema`], from an existing
//! [`Structure`], or written by hand.

use std::collections::BTreeSet;

use pathlog_core::structure::Structure;
use pathlog_oodb::{AttrKind, Schema};

/// Knowledge about which attributes are set-valued.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct Catalog {
    set_valued: BTreeSet<String>,
}

impl Catalog {
    /// An empty catalog (every attribute is treated as scalar unless the
    /// query writes `..`).
    pub fn new() -> Self {
        Self::default()
    }

    /// A catalog listing the given attributes as set-valued.
    pub fn with_set_attrs<I, S>(attrs: I) -> Self
    where
        I: IntoIterator<Item = S>,
        S: Into<String>,
    {
        Catalog {
            set_valued: attrs.into_iter().map(Into::into).collect(),
        }
    }

    /// Derive the catalog from an OODB schema.
    pub fn from_schema(schema: &Schema) -> Self {
        Catalog {
            set_valued: schema
                .attrs()
                .filter(|a| a.kind == AttrKind::Set)
                .map(|a| a.name.clone())
                .collect(),
        }
    }

    /// Derive the catalog from a semantic structure: every method that has at
    /// least one set-valued application is set-valued.
    pub fn from_structure(structure: &Structure) -> Self {
        let mut set_valued = BTreeSet::new();
        for fact in structure.facts().set_facts() {
            if let Some(name) = structure.name_of(fact.method) {
                set_valued.insert(name.to_string());
            }
        }
        Catalog { set_valued }
    }

    /// Declare one more attribute as set-valued.
    pub fn add_set_attr(&mut self, name: impl Into<String>) -> &mut Self {
        self.set_valued.insert(name.into());
        self
    }

    /// Is `name` a set-valued attribute?
    pub fn is_set_valued(&self, name: &str) -> bool {
        self.set_valued.contains(name)
    }

    /// Number of set-valued attributes known to the catalog.
    pub fn len(&self) -> usize {
        self.set_valued.len()
    }

    /// `true` if the catalog knows no set-valued attributes.
    pub fn is_empty(&self) -> bool {
        self.set_valued.is_empty()
    }

    /// The set-valued attribute names.
    pub fn set_attrs(&self) -> impl Iterator<Item = &str> + '_ {
        self.set_valued.iter().map(String::as_str)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn hand_written_catalogs_answer_membership() {
        let c = Catalog::with_set_attrs(["vehicles", "kids"]);
        assert!(c.is_set_valued("vehicles"));
        assert!(c.is_set_valued("kids"));
        assert!(!c.is_set_valued("color"));
        assert_eq!(c.len(), 2);
        assert!(!c.is_empty());
        assert_eq!(c.set_attrs().collect::<Vec<_>>(), vec!["kids", "vehicles"]);
    }

    #[test]
    fn the_company_schema_knows_vehicles_is_set_valued() {
        let c = Catalog::from_schema(&Schema::company());
        assert!(c.is_set_valued("vehicles"));
        assert!(!c.is_set_valued("color"));
    }

    #[test]
    fn structures_reveal_their_set_valued_methods() {
        let mut s = Structure::new();
        let vehicles = s.atom("vehicles");
        let color = s.atom("color");
        let mary = s.atom("mary");
        let a1 = s.atom("a1");
        let red = s.atom("red");
        s.assert_set_member(vehicles, mary, &[], a1);
        s.assert_scalar(color, a1, &[], red).unwrap();
        let c = Catalog::from_structure(&s);
        assert!(c.is_set_valued("vehicles"));
        assert!(!c.is_set_valued("color"));
    }

    #[test]
    fn attributes_can_be_added_incrementally() {
        let mut c = Catalog::new();
        assert!(c.is_empty());
        c.add_set_attr("friends").add_set_attr("projects");
        assert!(c.is_set_valued("friends"));
        assert_eq!(c.len(), 2);
    }
}
