//! Recursive-descent parser for the object-SQL dialect.

use crate::ast::{Condition, CreateView, FromRange, SelectItem, SelectQuery, SqlExpr, SqlFilter, Statement};
use crate::error::{Result, SqlError};
use crate::lexer::{tokenize, SpannedToken, SqlToken};

/// Parse a single statement (`SELECT ...` or `CREATE VIEW ...`).
pub fn parse_statement(input: &str) -> Result<Statement> {
    let mut parser = Parser::new(tokenize(input)?);
    let statement = parser.statement()?;
    parser.skip_semicolons();
    parser.expect_end()?;
    Ok(statement)
}

/// Parse a sequence of statements separated by `;`.
pub fn parse_statements(input: &str) -> Result<Vec<Statement>> {
    let mut parser = Parser::new(tokenize(input)?);
    let mut out = Vec::new();
    parser.skip_semicolons();
    while !parser.at_end() {
        out.push(parser.statement()?);
        parser.skip_semicolons();
    }
    Ok(out)
}

/// Parse a path expression on its own (useful for tests and tools).
pub fn parse_expression(input: &str) -> Result<SqlExpr> {
    let mut parser = Parser::new(tokenize(input)?);
    let expr = parser.expression()?;
    parser.expect_end()?;
    Ok(expr)
}

struct Parser {
    tokens: Vec<SpannedToken>,
    pos: usize,
}

impl Parser {
    fn new(tokens: Vec<SpannedToken>) -> Self {
        Parser { tokens, pos: 0 }
    }

    fn peek(&self) -> Option<&SqlToken> {
        self.tokens.get(self.pos).map(|t| &t.token)
    }

    fn peek_ahead(&self, offset: usize) -> Option<&SqlToken> {
        self.tokens.get(self.pos + offset).map(|t| &t.token)
    }

    fn advance(&mut self) -> Option<SpannedToken> {
        let t = self.tokens.get(self.pos).cloned();
        if t.is_some() {
            self.pos += 1;
        }
        t
    }

    fn at_end(&self) -> bool {
        self.pos >= self.tokens.len()
    }

    fn here(&self) -> (usize, usize) {
        self.tokens
            .get(self.pos)
            .or_else(|| self.tokens.last())
            .map(|t| (t.line, t.column))
            .unwrap_or((1, 1))
    }

    fn error(&self, message: impl Into<String>) -> SqlError {
        let (line, column) = self.here();
        SqlError::new(message, line, column)
    }

    fn expect(&mut self, expected: &SqlToken, what: &str) -> Result<()> {
        match self.peek() {
            Some(t) if t == expected => {
                self.advance();
                Ok(())
            }
            Some(t) => Err(self.error(format!("expected {what}, found {}", t.describe()))),
            None => Err(self.error(format!("expected {what}, found end of input"))),
        }
    }

    fn expect_end(&self) -> Result<()> {
        match self.peek() {
            None => Ok(()),
            Some(t) => Err(self.error(format!("unexpected {} after the statement", t.describe()))),
        }
    }

    fn skip_semicolons(&mut self) {
        while self.peek() == Some(&SqlToken::Semicolon) {
            self.advance();
        }
    }

    /// Accept an identifier or variable token and return its text (used where
    /// the dialect is case-agnostic: view names, attribute labels, class
    /// names written `Employee`).
    fn word(&mut self, what: &str) -> Result<String> {
        match self.peek().cloned() {
            Some(SqlToken::Ident(s)) | Some(SqlToken::Var(s)) => {
                self.advance();
                Ok(s)
            }
            Some(t) => Err(self.error(format!("expected {what}, found {}", t.describe()))),
            None => Err(self.error(format!("expected {what}, found end of input"))),
        }
    }

    fn variable(&mut self, what: &str) -> Result<String> {
        match self.peek().cloned() {
            Some(SqlToken::Var(s)) => {
                self.advance();
                Ok(s)
            }
            Some(t) => Err(self.error(format!(
                "expected {what} (a capitalised variable), found {}",
                t.describe()
            ))),
            None => Err(self.error(format!("expected {what}, found end of input"))),
        }
    }

    // ------------------------------------------------------------ statements

    fn statement(&mut self) -> Result<Statement> {
        match self.peek() {
            Some(SqlToken::Select) => Ok(Statement::Select(self.select_query()?)),
            Some(SqlToken::Create) => Ok(Statement::CreateView(self.create_view()?)),
            Some(t) => Err(self.error(format!("expected SELECT or CREATE VIEW, found {}", t.describe()))),
            None => Err(self.error("expected SELECT or CREATE VIEW, found end of input")),
        }
    }

    fn select_query(&mut self) -> Result<SelectQuery> {
        self.expect(&SqlToken::Select, "SELECT")?;
        let select = self.select_list()?;
        let mut from = Vec::new();
        while self.peek() == Some(&SqlToken::From) {
            self.advance();
            loop {
                from.push(self.from_range()?);
                if self.peek() == Some(&SqlToken::Comma) {
                    self.advance();
                } else {
                    break;
                }
            }
        }
        if from.is_empty() {
            return Err(self.error("a SELECT query needs at least one FROM clause"));
        }
        let conditions = self.where_clause()?;
        Ok(SelectQuery {
            select,
            from,
            conditions,
        })
    }

    fn select_list(&mut self) -> Result<Vec<SelectItem>> {
        let mut items = Vec::new();
        loop {
            items.push(self.select_item()?);
            if self.peek() == Some(&SqlToken::Comma) {
                self.advance();
            } else {
                break;
            }
        }
        Ok(items)
    }

    fn select_item(&mut self) -> Result<SelectItem> {
        // `label = expr` if the next-but-one token is `=`; otherwise a plain
        // expression.
        let labelled = matches!(self.peek(), Some(SqlToken::Ident(_) | SqlToken::Var(_)))
            && self.peek_ahead(1) == Some(&SqlToken::Eq);
        if labelled {
            let label = self.word("a column label")?;
            self.expect(&SqlToken::Eq, "`=`")?;
            let expr = self.expression()?;
            Ok(SelectItem {
                label: Some(label),
                expr,
            })
        } else {
            Ok(SelectItem {
                label: None,
                expr: self.expression()?,
            })
        }
    }

    // `from_` here is the SQL FROM clause, not a conversion constructor.
    #[allow(clippy::wrong_self_convention)]
    fn from_range(&mut self) -> Result<FromRange> {
        // O2SQL style: `X IN <expr>`; XSQL style: `<class> X`.
        if matches!(self.peek(), Some(SqlToken::Var(_))) && self.peek_ahead(1) == Some(&SqlToken::In) {
            let var = self.variable("a range variable")?;
            self.expect(&SqlToken::In, "IN")?;
            let source = self.expression()?;
            return Ok(FromRange {
                var,
                source,
                xsql_style: false,
            });
        }
        let class = self.word("a class name")?;
        let var = self.variable("a range variable")?;
        Ok(FromRange {
            var,
            source: SqlExpr::Name(class),
            xsql_style: true,
        })
    }

    fn where_clause(&mut self) -> Result<Vec<Condition>> {
        let mut conditions = Vec::new();
        if self.peek() == Some(&SqlToken::Where) {
            self.advance();
            loop {
                conditions.push(self.condition()?);
                if self.peek() == Some(&SqlToken::And) {
                    self.advance();
                } else {
                    break;
                }
            }
        }
        Ok(conditions)
    }

    fn condition(&mut self) -> Result<Condition> {
        let lhs = self.expression()?;
        match self.peek() {
            Some(SqlToken::Eq) => {
                self.advance();
                let rhs = self.expression()?;
                Ok(Condition::Eq(lhs, rhs))
            }
            Some(SqlToken::In) => {
                self.advance();
                let rhs = self.expression()?;
                Ok(Condition::In(lhs, rhs))
            }
            _ => Ok(Condition::Truth(lhs)),
        }
    }

    fn create_view(&mut self) -> Result<CreateView> {
        self.expect(&SqlToken::Create, "CREATE")?;
        self.expect(&SqlToken::View, "VIEW")?;
        let name = self.word("a view name")?;
        self.expect(&SqlToken::Select, "SELECT")?;
        let mut attributes = Vec::new();
        loop {
            let attr = self.word("a view attribute name")?;
            self.expect(&SqlToken::Eq, "`=`")?;
            let expr = self.expression()?;
            attributes.push((attr, expr));
            if self.peek() == Some(&SqlToken::Comma) {
                self.advance();
            } else {
                break;
            }
        }
        self.expect(&SqlToken::From, "FROM")?;
        let source_class = self.word("a class name")?;
        let var = self.variable("the range variable")?;
        self.expect(&SqlToken::Oid, "OID")?;
        self.expect(&SqlToken::Function, "FUNCTION")?;
        self.expect(&SqlToken::Of, "OF")?;
        let oid_of = self.variable("the OID FUNCTION OF variable")?;
        let conditions = self.where_clause()?;
        Ok(CreateView {
            name,
            attributes,
            source_class,
            var,
            oid_of,
            conditions,
        })
    }

    // ----------------------------------------------------------- expressions

    fn expression(&mut self) -> Result<SqlExpr> {
        let mut expr = self.primary()?;
        loop {
            match self.peek() {
                Some(SqlToken::Dot) | Some(SqlToken::DotDot) => {
                    let explicit_set = self.peek() == Some(&SqlToken::DotDot);
                    self.advance();
                    let method = self.word("an attribute name")?;
                    let args = self.call_args()?;
                    expr = SqlExpr::Step {
                        recv: Box::new(expr),
                        method,
                        args,
                        explicit_set,
                    };
                }
                Some(SqlToken::LBracket) => {
                    self.advance();
                    expr = self.bracket(expr)?;
                }
                _ => break,
            }
        }
        Ok(expr)
    }

    fn primary(&mut self) -> Result<SqlExpr> {
        match self.peek().cloned() {
            Some(SqlToken::Ident(s)) => {
                self.advance();
                Ok(SqlExpr::Name(s))
            }
            Some(SqlToken::Var(s)) => {
                self.advance();
                Ok(SqlExpr::Var(s))
            }
            Some(SqlToken::Int(i)) => {
                self.advance();
                Ok(SqlExpr::Int(i))
            }
            Some(SqlToken::Str(s)) => {
                self.advance();
                Ok(SqlExpr::Str(s))
            }
            Some(SqlToken::LParen) => {
                self.advance();
                let inner = self.expression()?;
                self.expect(&SqlToken::RParen, "`)`")?;
                Ok(SqlExpr::Paren(Box::new(inner)))
            }
            Some(t) => Err(self.error(format!("expected an expression, found {}", t.describe()))),
            None => Err(self.error("expected an expression, found end of input")),
        }
    }

    fn call_args(&mut self) -> Result<Vec<SqlExpr>> {
        if self.peek() != Some(&SqlToken::At) {
            return Ok(Vec::new());
        }
        self.advance();
        self.expect(&SqlToken::LParen, "`(` after `@`")?;
        let mut args = Vec::new();
        if self.peek() != Some(&SqlToken::RParen) {
            loop {
                args.push(self.expression()?);
                if self.peek() == Some(&SqlToken::Comma) {
                    self.advance();
                } else {
                    break;
                }
            }
        }
        self.expect(&SqlToken::RParen, "`)`")?;
        Ok(args)
    }

    /// Parse the inside of `recv[...]`: either a filter list
    /// (`cylinders -> 4; color -> red`) or an XSQL selector (`Z`, `4`).
    fn bracket(&mut self, recv: SqlExpr) -> Result<SqlExpr> {
        let is_filter = matches!(self.peek(), Some(SqlToken::Ident(_) | SqlToken::Var(_)))
            && (self.peek_ahead(1) == Some(&SqlToken::Arrow) || self.peek_ahead(1) == Some(&SqlToken::At));
        if is_filter {
            let mut filters = Vec::new();
            loop {
                let method = self.word("a filter attribute")?;
                let args = self.call_args()?;
                self.expect(&SqlToken::Arrow, "`->`")?;
                let value = self.expression()?;
                filters.push(SqlFilter { method, args, value });
                if self.peek() == Some(&SqlToken::Semicolon) {
                    self.advance();
                } else {
                    break;
                }
            }
            self.expect(&SqlToken::RBracket, "`]`")?;
            Ok(SqlExpr::Filtered {
                recv: Box::new(recv),
                filters,
            })
        } else {
            let selector = self.expression()?;
            self.expect(&SqlToken::RBracket, "`]`")?;
            Ok(SqlExpr::Selector {
                recv: Box::new(recv),
                selector: Box::new(selector),
            })
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn query_1_1_o2sql_style_parses() {
        let q = parse_statement(
            "SELECT Y.color
             FROM X IN employee
             FROM Y IN X.vehicles
             WHERE Y IN automobile",
        )
        .unwrap();
        let Statement::Select(q) = q else {
            panic!("expected a SELECT")
        };
        assert_eq!(q.select.len(), 1);
        assert_eq!(q.from.len(), 2);
        assert!(!q.from[0].xsql_style);
        assert_eq!(q.conditions.len(), 1);
        assert!(matches!(q.conditions[0], Condition::In(_, _)));
        assert_eq!(
            q.to_string(),
            "SELECT Y.color FROM X IN employee FROM Y IN X.vehicles WHERE Y IN automobile"
        );
    }

    #[test]
    fn query_1_2_xsql_style_with_selectors_parses() {
        let q = parse_statement(
            "SELECT Z
             FROM employee X, automobile Y
             WHERE X.vehicles[Y].color[Z]",
        )
        .unwrap();
        let Statement::Select(q) = q else {
            panic!("expected a SELECT")
        };
        assert_eq!(q.from.len(), 2);
        assert!(q.from[0].xsql_style);
        assert_eq!(q.conditions.len(), 1);
        assert_eq!(q.conditions[0].to_string(), "X.vehicles[Y].color[Z]");
    }

    #[test]
    fn query_1_4_with_the_extra_conjunct_parses() {
        let q = parse_statement(
            "SELECT Z
             FROM employee X, automobile Y
             WHERE X.vehicles[Y].color[Z]
               AND Y.cylinders[4]",
        )
        .unwrap();
        let Statement::Select(q) = q else {
            panic!("expected a SELECT")
        };
        assert_eq!(q.conditions.len(), 2);
        assert_eq!(q.conditions[1].to_string(), "Y.cylinders[4]");
    }

    #[test]
    fn query_2_2_with_pathlog_filters_parses() {
        let q = parse_statement(
            "SELECT Z
             FROM employee X, automobile Y
             WHERE X[age -> 30; city -> newYork].vehicles[cylinders -> 4][Y].color[Z]",
        )
        .unwrap();
        let Statement::Select(q) = q else {
            panic!("expected a SELECT")
        };
        assert_eq!(q.conditions.len(), 1);
        let text = q.conditions[0].to_string();
        assert!(text.contains("[age -> 30; city -> newYork]"));
        assert!(text.contains("[cylinders -> 4][Y]"));
    }

    #[test]
    fn the_manager_query_parses() {
        let q = parse_statement(
            "SELECT X
             FROM X IN manager
             FROM Y IN X.vehicles
             WHERE Y.color = red
               AND Y.producedBy.cityOf = detroit
               AND Y.producedBy.president = X",
        )
        .unwrap();
        let Statement::Select(q) = q else {
            panic!("expected a SELECT")
        };
        assert_eq!(q.conditions.len(), 3);
        assert!(matches!(q.conditions[0], Condition::Eq(_, _)));
    }

    #[test]
    fn view_6_3_parses() {
        let v = parse_statement(
            "CREATE VIEW employeeBoss
             SELECT worksFor = D
             FROM employee X
             OID FUNCTION OF X
             WHERE X.worksFor[D]",
        )
        .unwrap();
        let Statement::CreateView(v) = v else {
            panic!("expected a view")
        };
        assert_eq!(v.name, "employeeBoss");
        assert_eq!(v.attributes.len(), 1);
        assert_eq!(v.attributes[0].0, "worksFor");
        assert_eq!(v.source_class, "employee");
        assert_eq!(v.var, "X");
        assert_eq!(v.oid_of, "X");
        assert_eq!(v.conditions.len(), 1);
    }

    #[test]
    fn capitalised_class_names_are_accepted_in_xsql_ranges() {
        // The paper writes `FROM Employee X`.
        let q = parse_statement("SELECT X FROM Employee X").unwrap();
        let Statement::Select(q) = q else {
            panic!("expected a SELECT")
        };
        assert_eq!(q.from[0].source, SqlExpr::Name("Employee".into()));
    }

    #[test]
    fn multiple_statements_are_separated_by_semicolons() {
        let stmts = parse_statements(
            "CREATE VIEW v SELECT a = X FROM c X OID FUNCTION OF X;
             SELECT X FROM X IN c;",
        )
        .unwrap();
        assert_eq!(stmts.len(), 2);
    }

    #[test]
    fn method_arguments_parse() {
        let e = parse_expression("john.salary@(1994)").unwrap();
        assert_eq!(e.to_string(), "john.salary@(1994)");
        let e = parse_expression("p1.paidFor@(p1..vehicles)").unwrap();
        assert_eq!(e.to_string(), "p1.paidFor@(p1..vehicles)");
    }

    #[test]
    fn parenthesised_expressions_parse() {
        let e = parse_expression("(integer.list)").unwrap();
        assert_eq!(e.to_string(), "(integer.list)");
    }

    #[test]
    fn missing_from_is_an_error() {
        let err = parse_statement("SELECT X WHERE X IN employee").unwrap_err();
        assert!(err.to_string().contains("FROM"));
    }

    #[test]
    fn trailing_garbage_is_an_error() {
        let err = parse_statement("SELECT X FROM X IN employee extra").unwrap_err();
        assert!(err.to_string().contains("unexpected"));
    }

    #[test]
    fn unclosed_bracket_is_an_error() {
        let err = parse_statement("SELECT X FROM X IN employee WHERE X.color[Z").unwrap_err();
        assert!(err.to_string().contains("]"));
    }

    #[test]
    fn errors_carry_positions() {
        let err = parse_statement("SELECT X\nFROM X employee").unwrap_err();
        assert_eq!(err.line, 2);
        assert!(err.column > 1);
    }

    #[test]
    fn view_without_oid_clause_is_an_error() {
        let err = parse_statement("CREATE VIEW v SELECT a = X FROM c X WHERE X.a[Y]").unwrap_err();
        assert!(err.to_string().contains("OID"));
    }
}
