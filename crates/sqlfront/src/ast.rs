//! Abstract syntax of the object-SQL dialect.
//!
//! The dialect deliberately covers exactly the constructs of the paper's
//! examples: O2SQL ranges (`FROM X IN employee`), XSQL ranges
//! (`FROM employee X`), selectors (`color[Z]`), PathLog-style bracket filters
//! (`vehicles[cylinders -> 4]`, query 2.2) and the XSQL view definition of
//! query 6.3 (`CREATE VIEW ... OID FUNCTION OF ...`).

use std::fmt;

/// A path expression on the SQL surface.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SqlExpr {
    /// A lower-case identifier: a class, attribute or object name.
    Name(String),
    /// An upper-case identifier: a variable.
    Var(String),
    /// An integer literal.
    Int(i64),
    /// A string literal.
    Str(String),
    /// A parenthesised expression.
    Paren(Box<SqlExpr>),
    /// A method/attribute step `recv.method(args)` (O2SQL/XSQL write `.` even
    /// for set-valued attributes; the compiler consults the catalog).
    Step {
        /// The receiver.
        recv: Box<SqlExpr>,
        /// The attribute/method name.
        method: String,
        /// Call arguments (PathLog's `@(...)`).
        args: Vec<SqlExpr>,
        /// `true` if written with `..` (explicitly set-valued).
        explicit_set: bool,
    },
    /// An XSQL selector `recv[sel]`, binding or testing the intermediate
    /// result.
    Selector {
        /// The receiver.
        recv: Box<SqlExpr>,
        /// The selector expression (variable or constant).
        selector: Box<SqlExpr>,
    },
    /// A PathLog-style filter list `recv[m1 -> v1; m2 -> v2]` (query 2.2).
    Filtered {
        /// The receiver.
        recv: Box<SqlExpr>,
        /// The filters.
        filters: Vec<SqlFilter>,
    },
}

impl SqlExpr {
    /// `true` for names, variables and literals.
    pub fn is_simple(&self) -> bool {
        matches!(
            self,
            SqlExpr::Name(_) | SqlExpr::Var(_) | SqlExpr::Int(_) | SqlExpr::Str(_)
        )
    }

    /// All variables occurring in the expression, in order of first occurrence.
    pub fn variables(&self) -> Vec<String> {
        let mut out = Vec::new();
        self.collect_variables(&mut out);
        out
    }

    fn collect_variables(&self, out: &mut Vec<String>) {
        match self {
            SqlExpr::Var(v) => {
                if !out.contains(v) {
                    out.push(v.clone());
                }
            }
            SqlExpr::Name(_) | SqlExpr::Int(_) | SqlExpr::Str(_) => {}
            SqlExpr::Paren(e) => e.collect_variables(out),
            SqlExpr::Step { recv, args, .. } => {
                recv.collect_variables(out);
                for a in args {
                    a.collect_variables(out);
                }
            }
            SqlExpr::Selector { recv, selector } => {
                recv.collect_variables(out);
                selector.collect_variables(out);
            }
            SqlExpr::Filtered { recv, filters } => {
                recv.collect_variables(out);
                for f in filters {
                    for a in &f.args {
                        a.collect_variables(out);
                    }
                    f.value.collect_variables(out);
                }
            }
        }
    }
}

impl fmt::Display for SqlExpr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SqlExpr::Name(n) => write!(f, "{n}"),
            SqlExpr::Var(v) => write!(f, "{v}"),
            SqlExpr::Int(i) => write!(f, "{i}"),
            SqlExpr::Str(s) => write!(f, "'{s}'"),
            SqlExpr::Paren(e) => write!(f, "({e})"),
            SqlExpr::Step {
                recv,
                method,
                args,
                explicit_set,
            } => {
                write!(f, "{recv}{}{method}", if *explicit_set { ".." } else { "." })?;
                if !args.is_empty() {
                    write!(f, "@(")?;
                    for (i, a) in args.iter().enumerate() {
                        if i > 0 {
                            write!(f, ", ")?;
                        }
                        write!(f, "{a}")?;
                    }
                    write!(f, ")")?;
                }
                Ok(())
            }
            SqlExpr::Selector { recv, selector } => write!(f, "{recv}[{selector}]"),
            SqlExpr::Filtered { recv, filters } => {
                write!(f, "{recv}[")?;
                for (i, filter) in filters.iter().enumerate() {
                    if i > 0 {
                        write!(f, "; ")?;
                    }
                    write!(f, "{filter}")?;
                }
                write!(f, "]")
            }
        }
    }
}

/// One filter `method(args) -> value` inside a bracket.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SqlFilter {
    /// The attribute/method name.
    pub method: String,
    /// Call arguments.
    pub args: Vec<SqlExpr>,
    /// The required value.
    pub value: SqlExpr,
}

impl fmt::Display for SqlFilter {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.method)?;
        if !self.args.is_empty() {
            write!(f, "@(")?;
            for (i, a) in self.args.iter().enumerate() {
                if i > 0 {
                    write!(f, ", ")?;
                }
                write!(f, "{a}")?;
            }
            write!(f, ")")?;
        }
        write!(f, " -> {}", self.value)
    }
}

/// One item of a SELECT list, optionally labelled (`WorksFor = D`).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SelectItem {
    /// The result column label; defaults to the expression's text.
    pub label: Option<String>,
    /// The selected expression.
    pub expr: SqlExpr,
}

impl SelectItem {
    /// The column label to report for this item.
    pub fn column_name(&self) -> String {
        self.label.clone().unwrap_or_else(|| self.expr.to_string())
    }
}

impl fmt::Display for SelectItem {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match &self.label {
            Some(l) => write!(f, "{l} = {}", self.expr),
            None => write!(f, "{}", self.expr),
        }
    }
}

/// One range of a FROM clause: a variable and the collection it ranges over.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FromRange {
    /// The range variable.
    pub var: String,
    /// The class or set-valued path the variable ranges over.
    pub source: SqlExpr,
    /// `true` if written XSQL-style (`FROM employee X`), `false` for the
    /// O2SQL style (`FROM X IN employee`).  Only affects pretty-printing.
    pub xsql_style: bool,
}

impl fmt::Display for FromRange {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.xsql_style {
            write!(f, "{} {}", self.source, self.var)
        } else {
            write!(f, "{} IN {}", self.var, self.source)
        }
    }
}

/// A WHERE condition.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Condition {
    /// `lhs = rhs`.
    Eq(SqlExpr, SqlExpr),
    /// `element IN collection` (class membership or set membership).
    In(SqlExpr, SqlExpr),
    /// A bare path expression, true iff it denotes at least one object
    /// (XSQL's `X.vehicles[Y].color[Z]` style).
    Truth(SqlExpr),
}

impl fmt::Display for Condition {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Condition::Eq(a, b) => write!(f, "{a} = {b}"),
            Condition::In(a, b) => write!(f, "{a} IN {b}"),
            Condition::Truth(a) => write!(f, "{a}"),
        }
    }
}

/// A SELECT query.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SelectQuery {
    /// The SELECT list.
    pub select: Vec<SelectItem>,
    /// The FROM ranges (several FROM clauses are concatenated).
    pub from: Vec<FromRange>,
    /// The WHERE conditions (AND-connected).
    pub conditions: Vec<Condition>,
}

impl fmt::Display for SelectQuery {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "SELECT ")?;
        for (i, s) in self.select.iter().enumerate() {
            if i > 0 {
                write!(f, ", ")?;
            }
            write!(f, "{s}")?;
        }
        for r in &self.from {
            write!(f, " FROM {r}")?;
        }
        if !self.conditions.is_empty() {
            write!(f, " WHERE ")?;
            for (i, c) in self.conditions.iter().enumerate() {
                if i > 0 {
                    write!(f, " AND ")?;
                }
                write!(f, "{c}")?;
            }
        }
        Ok(())
    }
}

/// The XSQL view definition of query (6.3).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CreateView {
    /// The view (and skolem function) name.
    pub name: String,
    /// The view attributes: `(attribute, defining expression)`.
    pub attributes: Vec<(String, SqlExpr)>,
    /// The source class.
    pub source_class: String,
    /// The range variable over the source class.
    pub var: String,
    /// The variable whose value determines the view object identity
    /// (`OID FUNCTION OF X`).
    pub oid_of: String,
    /// The WHERE conditions.
    pub conditions: Vec<Condition>,
}

impl fmt::Display for CreateView {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "CREATE VIEW {} SELECT ", self.name)?;
        for (i, (a, e)) in self.attributes.iter().enumerate() {
            if i > 0 {
                write!(f, ", ")?;
            }
            write!(f, "{a} = {e}")?;
        }
        write!(
            f,
            " FROM {} {} OID FUNCTION OF {}",
            self.source_class, self.var, self.oid_of
        )?;
        if !self.conditions.is_empty() {
            write!(f, " WHERE ")?;
            for (i, c) in self.conditions.iter().enumerate() {
                if i > 0 {
                    write!(f, " AND ")?;
                }
                write!(f, "{c}")?;
            }
        }
        Ok(())
    }
}

/// One object-SQL statement.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Statement {
    /// A SELECT query.
    Select(SelectQuery),
    /// A CREATE VIEW definition.
    CreateView(CreateView),
}

impl fmt::Display for Statement {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Statement::Select(q) => write!(f, "{q}"),
            Statement::CreateView(v) => write!(f, "{v}"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn var(v: &str) -> SqlExpr {
        SqlExpr::Var(v.into())
    }

    fn step(recv: SqlExpr, m: &str) -> SqlExpr {
        SqlExpr::Step {
            recv: Box::new(recv),
            method: m.into(),
            args: vec![],
            explicit_set: false,
        }
    }

    #[test]
    fn expressions_render_like_the_paper() {
        let e = SqlExpr::Selector {
            recv: Box::new(step(step(var("X"), "vehicles"), "color")),
            selector: Box::new(var("Z")),
        };
        assert_eq!(e.to_string(), "X.vehicles.color[Z]");
        let filtered = SqlExpr::Filtered {
            recv: Box::new(step(var("X"), "vehicles")),
            filters: vec![SqlFilter {
                method: "cylinders".into(),
                args: vec![],
                value: SqlExpr::Int(4),
            }],
        };
        assert_eq!(filtered.to_string(), "X.vehicles[cylinders -> 4]");
    }

    #[test]
    fn expressions_report_their_variables() {
        let e = SqlExpr::Selector {
            recv: Box::new(step(var("X"), "color")),
            selector: Box::new(var("Z")),
        };
        assert_eq!(e.variables(), vec!["X".to_string(), "Z".to_string()]);
        assert!(!e.is_simple());
        assert!(var("X").is_simple());
    }

    #[test]
    fn select_query_renders_round_trippable_text() {
        let q = SelectQuery {
            select: vec![SelectItem {
                label: None,
                expr: var("Z"),
            }],
            from: vec![
                FromRange {
                    var: "X".into(),
                    source: SqlExpr::Name("employee".into()),
                    xsql_style: false,
                },
                FromRange {
                    var: "Y".into(),
                    source: step(var("X"), "vehicles"),
                    xsql_style: false,
                },
            ],
            conditions: vec![Condition::In(var("Y"), SqlExpr::Name("automobile".into()))],
        };
        assert_eq!(
            q.to_string(),
            "SELECT Z FROM X IN employee FROM Y IN X.vehicles WHERE Y IN automobile"
        );
    }

    #[test]
    fn view_renders_the_6_3_shape() {
        let v = CreateView {
            name: "employeeBoss".into(),
            attributes: vec![("worksFor".into(), var("D"))],
            source_class: "employee".into(),
            var: "X".into(),
            oid_of: "X".into(),
            conditions: vec![Condition::Truth(SqlExpr::Selector {
                recv: Box::new(step(var("X"), "worksFor")),
                selector: Box::new(var("D")),
            })],
        };
        let text = v.to_string();
        assert!(text.starts_with("CREATE VIEW employeeBoss SELECT worksFor = D FROM employee X OID FUNCTION OF X"));
        assert!(text.contains("WHERE X.worksFor[D]"));
        assert_eq!(Statement::CreateView(v.clone()).to_string(), text);
    }

    #[test]
    fn select_item_column_names_default_to_the_expression() {
        let plain = SelectItem {
            label: None,
            expr: step(var("Y"), "color"),
        };
        assert_eq!(plain.column_name(), "Y.color");
        let labelled = SelectItem {
            label: Some("colour".into()),
            expr: var("Z"),
        };
        assert_eq!(labelled.column_name(), "colour");
    }

    #[test]
    fn from_range_styles_print_differently() {
        let o2 = FromRange {
            var: "X".into(),
            source: SqlExpr::Name("employee".into()),
            xsql_style: false,
        };
        let xsql = FromRange {
            var: "X".into(),
            source: SqlExpr::Name("employee".into()),
            xsql_style: true,
        };
        assert_eq!(o2.to_string(), "X IN employee");
        assert_eq!(xsql.to_string(), "employee X");
    }
}
