//! Errors of the object-SQL frontend.

use std::fmt;

/// An error raised while lexing, parsing or compiling an object-SQL statement.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SqlError {
    /// What went wrong.
    pub message: String,
    /// 1-based line of the offending token (0 if unknown).
    pub line: usize,
    /// 1-based column of the offending token (0 if unknown).
    pub column: usize,
}

impl SqlError {
    /// An error at a known position.
    pub fn new(message: impl Into<String>, line: usize, column: usize) -> Self {
        SqlError {
            message: message.into(),
            line,
            column,
        }
    }

    /// An error without position information (compilation-stage errors).
    pub fn message(message: impl Into<String>) -> Self {
        SqlError {
            message: message.into(),
            line: 0,
            column: 0,
        }
    }
}

impl fmt::Display for SqlError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.line == 0 && self.column == 0 {
            write!(f, "object-SQL error: {}", self.message)
        } else {
            write!(f, "object-SQL error at {}:{}: {}", self.line, self.column, self.message)
        }
    }
}

impl std::error::Error for SqlError {}

/// Result alias for this crate.
pub type Result<T> = std::result::Result<T, SqlError>;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn positioned_errors_print_line_and_column() {
        let e = SqlError::new("unexpected token", 3, 14);
        assert_eq!(e.to_string(), "object-SQL error at 3:14: unexpected token");
    }

    #[test]
    fn unpositioned_errors_omit_the_position() {
        let e = SqlError::message("no FROM clause");
        assert!(!e.to_string().contains(" at "));
        assert!(e.to_string().contains("no FROM clause"));
    }

    #[test]
    fn errors_are_comparable() {
        assert_eq!(SqlError::message("x"), SqlError::message("x"));
        assert_ne!(SqlError::message("x"), SqlError::new("x", 1, 1));
    }
}
