//! Execution of object-SQL statements against a semantic structure.
//!
//! The frontend never evaluates anything itself: compiled queries are handed
//! to the PathLog [`Engine`], and compiled views are loaded as PathLog rules
//! (which materialise their virtual objects through the engine's
//! virtual-object mechanism).  This module only formats the engine's answers
//! as result rows.

use std::collections::BTreeSet;

use pathlog_core::engine::Engine;
use pathlog_core::structure::Structure;

use crate::catalog::Catalog;
use crate::compile::{Compiled, CompiledQuery, Compiler};
use crate::error::{Result, SqlError};
use crate::parser::parse_statements;

/// The result of executing one statement.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum StatementResult {
    /// A SELECT query: result columns and rows (display names of the bound
    /// objects), de-duplicated and sorted.
    Rows {
        /// The column labels, in SELECT order.
        columns: Vec<String>,
        /// The result rows.
        rows: Vec<Vec<String>>,
    },
    /// A CREATE VIEW statement: the view rule was loaded and evaluated.
    ViewDefined {
        /// The PathLog rendering of the rule that now defines the view.
        rule: String,
        /// Facts derived while materialising the view.
        derived_facts: usize,
        /// Virtual objects created for the view.
        virtual_objects: usize,
    },
}

impl StatementResult {
    /// Number of result rows (0 for view definitions).
    pub fn row_count(&self) -> usize {
        match self {
            StatementResult::Rows { rows, .. } => rows.len(),
            StatementResult::ViewDefined { .. } => 0,
        }
    }
}

/// Execute a compiled query and return `(columns, rows)`.
pub fn execute_query(structure: &Structure, compiled: &CompiledQuery) -> Result<(Vec<String>, Vec<Vec<String>>)> {
    let engine = Engine::new();
    let answers = engine
        .query(structure, &compiled.query)
        .map_err(|e| SqlError::message(format!("query evaluation failed: {e}")))?;
    let columns: Vec<String> = compiled.columns.iter().map(|(label, _)| label.clone()).collect();
    let mut rows: BTreeSet<Vec<String>> = BTreeSet::new();
    for bindings in answers {
        let row: Vec<String> = compiled
            .columns
            .iter()
            .map(|(_, var)| {
                bindings
                    .get(var)
                    .map(|o| structure.display_name(o).into_owned())
                    .unwrap_or_else(|| "?".to_string())
            })
            .collect();
        rows.insert(row);
    }
    Ok((columns, rows.into_iter().collect()))
}

/// Parse, compile and execute a sequence of statements against `structure`.
///
/// SELECT statements produce [`StatementResult::Rows`]; CREATE VIEW
/// statements load their rule into the structure (creating the view's
/// virtual objects) and report what was derived.
pub fn execute(structure: &mut Structure, sql: &str, catalog: &Catalog) -> Result<Vec<StatementResult>> {
    let statements = parse_statements(sql)?;
    let mut compiler = Compiler::new(catalog);
    let engine = Engine::new();
    let mut results = Vec::with_capacity(statements.len());
    for statement in &statements {
        match compiler.statement(statement)? {
            Compiled::Query(q) => {
                let (columns, rows) = execute_query(structure, &q)?;
                results.push(StatementResult::Rows { columns, rows });
            }
            Compiled::Rule(rule) => {
                let stats = engine
                    .run_rules(structure, std::slice::from_ref(&rule))
                    .map_err(|e| SqlError::message(format!("view materialisation failed: {e}")))?;
                results.push(StatementResult::ViewDefined {
                    rule: rule.to_string(),
                    derived_facts: stats.derived(),
                    virtual_objects: stats.virtual_objects,
                });
            }
        }
    }
    Ok(results)
}

#[cfg(test)]
mod tests {
    use super::*;

    /// The hand-built world of the paper's Sections 1–2 examples.
    fn company() -> (Structure, Catalog) {
        let mut s = Structure::new();
        let employee = s.atom("employee");
        let manager = s.atom("manager");
        let automobile = s.atom("automobile");
        let vehicles = s.atom("vehicles");
        let color = s.atom("color");
        let cylinders = s.atom("cylinders");
        let produced_by = s.atom("producedBy");
        let city_of = s.atom("cityOf");
        let president = s.atom("president");
        let works_for = s.atom("worksFor");

        let mary = s.atom("mary");
        let frank = s.atom("frank");
        let a1 = s.atom("a1");
        let a2 = s.atom("a2");
        let comp1 = s.atom("comp1");
        let dept1 = s.atom("dept1");
        let red = s.atom("red");
        let green = s.atom("green");
        let detroit = s.atom("detroit");
        let four = s.int(4);
        let six = s.int(6);

        s.add_isa(mary, employee);
        s.add_isa(frank, employee);
        s.add_isa(frank, manager);
        s.add_isa(a1, automobile);
        s.add_isa(a2, automobile);
        s.assert_set_member(vehicles, mary, &[], a1);
        s.assert_set_member(vehicles, frank, &[], a2);
        s.assert_scalar(color, a1, &[], green).unwrap();
        s.assert_scalar(color, a2, &[], red).unwrap();
        s.assert_scalar(cylinders, a1, &[], four).unwrap();
        s.assert_scalar(cylinders, a2, &[], six).unwrap();
        s.assert_scalar(produced_by, a2, &[], comp1).unwrap();
        s.assert_scalar(city_of, comp1, &[], detroit).unwrap();
        s.assert_scalar(president, comp1, &[], frank).unwrap();
        s.assert_scalar(works_for, mary, &[], dept1).unwrap();
        s.assert_scalar(works_for, frank, &[], dept1).unwrap();

        let catalog = Catalog::with_set_attrs(["vehicles"]);
        (s, catalog)
    }

    #[test]
    fn query_1_1_returns_the_automobile_colours() {
        let (structure, catalog) = company();
        let q = crate::compile::compile_query(
            "SELECT Y.color FROM X IN employee FROM Y IN X.vehicles WHERE Y IN automobile",
            &catalog,
        )
        .unwrap();
        let (columns, rows) = execute_query(&structure, &q).unwrap();
        assert_eq!(columns, vec!["Y.color".to_string()]);
        let colours: BTreeSet<&str> = rows.iter().map(|r| r[0].as_str()).collect();
        assert_eq!(colours, BTreeSet::from(["green", "red"]));
    }

    #[test]
    fn the_manager_query_returns_frank() {
        let (mut structure, catalog) = company();
        let results = execute(
            &mut structure,
            "SELECT X FROM X IN manager FROM Y IN X.vehicles
             WHERE Y.color = red AND Y.producedBy.cityOf = detroit AND Y.producedBy.president = X",
            &catalog,
        )
        .unwrap();
        let StatementResult::Rows { rows, .. } = &results[0] else {
            panic!("expected rows")
        };
        assert_eq!(rows, &vec![vec!["frank".to_string()]]);
    }

    #[test]
    fn views_materialise_virtual_objects_queriable_afterwards() {
        let (mut structure, catalog) = company();
        let results = execute(
            &mut structure,
            "CREATE VIEW employeeBoss SELECT worksFor = D FROM employee X OID FUNCTION OF X WHERE X.worksFor[D];
             SELECT X, D FROM X IN employee WHERE X.employeeBoss.worksFor = D;",
            &catalog,
        )
        .unwrap();
        assert_eq!(results.len(), 2);
        let StatementResult::ViewDefined {
            virtual_objects,
            derived_facts,
            rule,
        } = &results[0]
        else {
            panic!("expected a view definition");
        };
        assert_eq!(*virtual_objects, 2, "one view object per employee");
        assert!(*derived_facts >= 2);
        assert!(rule.contains("X.employeeBoss[worksFor -> D]"));
        let StatementResult::Rows { rows, columns } = &results[1] else {
            panic!("expected rows")
        };
        assert_eq!(columns, &vec!["X".to_string(), "D".to_string()]);
        assert_eq!(rows.len(), 2);
        assert!(rows.iter().all(|r| r[1] == "dept1"));
        assert_eq!(results[0].row_count(), 0);
        assert_eq!(results[1].row_count(), 2);
    }

    #[test]
    fn evaluation_errors_are_reported_as_sql_errors() {
        let (mut structure, catalog) = company();
        // A view whose attribute value conflicts for the two employees is
        // fine (each employee gets its own view object); instead provoke a
        // failure by defining a view that overwrites an existing scalar
        // method with a different value.
        let err = execute(
            &mut structure,
            "CREATE VIEW worksFor SELECT x = X FROM employee X OID FUNCTION OF X WHERE X.worksFor[D]",
            &catalog,
        )
        .unwrap_err();
        assert!(err.to_string().contains("view materialisation failed"), "{err}");
    }

    #[test]
    fn rows_are_deduplicated_and_sorted() {
        let (structure, catalog) = company();
        let q = crate::compile::compile_query("SELECT D FROM X IN employee WHERE X.worksFor[D]", &catalog).unwrap();
        let (_, rows) = execute_query(&structure, &q).unwrap();
        assert_eq!(
            rows,
            vec![vec!["dept1".to_string()]],
            "both employees map to the same department"
        );
    }
}
