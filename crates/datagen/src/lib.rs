//! # pathlog-datagen
//!
//! Synthetic workload generators for the PathLog reproduction.  The paper
//! evaluates its language design on example domains but publishes no data
//! sets; these generators rebuild those domains at parameterised scale:
//!
//! * [`company`] — the employee / manager / vehicle / automobile / company
//!   world behind the queries of Sections 1 and 2;
//! * [`genealogy`] — the person / kids forest behind the transitive-closure
//!   rules of Section 6 (including the exact six-person family of the paper);
//! * [`bom`] — a bill-of-materials (parts explosion) hierarchy, the classic
//!   deep-recursion workload for the same transitive-closure rules, with a
//!   sharing knob that turns the forest into a DAG.
//!
//! All produce [`pathlog_oodb::ObjectStore`]s (so they can be persisted and
//! integrity-checked) and offer shortcuts straight to
//! [`pathlog_core::structure::Structure`].

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod bom;
pub mod company;
pub mod genealogy;

pub use bom::{generate as generate_bom, generate_structure as bom_structure, BomParams};
pub use company::{generate as generate_company, generate_structure as company_structure, CompanyParams};
pub use genealogy::{
    generate as generate_genealogy, generate_structure as genealogy_structure, paper_family, GenealogyParams,
};
