//! Synthetic generator for the company/vehicle world of Sections 1 and 2.
//!
//! The paper's motivating queries range over employees (and managers) owning
//! vehicles (some of which are automobiles with a colour, a cylinder count
//! and a producing company located in a city with a president).  There is no
//! public data set, so this generator reproduces that domain at a chosen
//! scale with tunable fan-out and selectivities; all benchmarks and example
//! binaries draw their workloads from here.

use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::{Rng, SeedableRng};

use pathlog_oodb::{ObjectStore, Schema, Value};

/// Parameters of the generated company database.
#[derive(Debug, Clone, PartialEq)]
pub struct CompanyParams {
    /// Number of employees (a fraction of which are managers).
    pub employees: usize,
    /// Fraction of employees that are managers.
    pub manager_fraction: f64,
    /// Average number of vehicles per employee.
    pub vehicles_per_employee: f64,
    /// Fraction of vehicles that are automobiles (the rest are plain vehicles).
    pub automobile_fraction: f64,
    /// Number of producing companies.
    pub companies: usize,
    /// Number of departments.
    pub departments: usize,
    /// Fraction of employees that have a recorded boss.
    pub boss_fraction: f64,
    /// Fraction of automobiles that have 4 cylinders (the paper's filter);
    /// the rest get 6 or 8.
    pub four_cylinder_fraction: f64,
    /// RNG seed: the same parameters and seed generate the same database.
    pub seed: u64,
}

impl Default for CompanyParams {
    fn default() -> Self {
        CompanyParams {
            employees: 1_000,
            manager_fraction: 0.1,
            vehicles_per_employee: 3.0,
            automobile_fraction: 0.7,
            companies: 20,
            departments: 10,
            boss_fraction: 0.9,
            four_cylinder_fraction: 0.4,
            seed: 42,
        }
    }
}

impl CompanyParams {
    /// A parameter set scaled to roughly `employees` employees, keeping every
    /// other knob at its default.
    pub fn scaled(employees: usize) -> Self {
        CompanyParams {
            employees,
            ..Self::default()
        }
    }

    /// The 10x preset: ten times the default employee count (the memory
    /// experiments' large-scale arm, selected with `--scale 10` in the
    /// experiments binary).
    pub fn scaled10() -> Self {
        Self::scaled(10_000)
    }
}

/// The colours vehicles are painted with.
pub const COLOURS: &[&str] = &["red", "blue", "green", "black", "white", "silver"];
/// The cities employees and companies live in.
pub const CITIES: &[&str] = &["newYork", "detroit", "boston", "chicago", "seattle", "mannheim"];

/// Generate a company database.
pub fn generate(params: &CompanyParams) -> ObjectStore {
    let mut rng = StdRng::seed_from_u64(params.seed);
    let mut db = ObjectStore::with_schema(Schema::company());

    // departments
    for d in 0..params.departments.max(1) {
        db.create(&format!("dept{d}"), "department")
            .expect("fresh department name");
    }

    // companies (presidents are filled in once employees exist)
    for c in 0..params.companies.max(1) {
        let name = format!("comp{c}");
        db.create(&name, "company").expect("fresh company name");
        let city = CITIES[rng.gen_range(0..CITIES.len())];
        db.set(&name, "cityOf", Value::Atom(city.into()))
            .expect("cityOf in schema");
    }

    // employees and managers
    let mut employee_names = Vec::with_capacity(params.employees);
    for e in 0..params.employees {
        let is_manager = rng.gen_bool(params.manager_fraction.clamp(0.0, 1.0));
        let name = format!("e{e}");
        db.create(&name, if is_manager { "manager" } else { "employee" })
            .expect("fresh employee name");
        db.set(&name, "age", Value::Int(rng.gen_range(20..65)))
            .expect("age in schema");
        db.set(
            &name,
            "city",
            Value::Atom(CITIES[rng.gen_range(0..CITIES.len())].into()),
        )
        .expect("city in schema");
        db.set(
            &name,
            "street",
            Value::Str(format!("{} Main St", rng.gen_range(1..999))),
        )
        .expect("street");
        db.set(&name, "salary", Value::Int(rng.gen_range(30_000..150_000)))
            .expect("salary");
        let dept = format!("dept{}", rng.gen_range(0..params.departments.max(1)));
        db.set(&name, "worksFor", Value::obj(dept)).expect("worksFor");
        employee_names.push(name);
    }

    // bosses and assistants
    for name in &employee_names {
        if employee_names.len() > 1 && rng.gen_bool(params.boss_fraction.clamp(0.0, 1.0)) {
            let boss = loop {
                let candidate = &employee_names[rng.gen_range(0..employee_names.len())];
                if candidate != name {
                    break candidate.clone();
                }
            };
            db.set(name, "boss", Value::obj(boss.clone())).expect("boss");
            db.add(&boss, "assistants", Value::obj(name.clone()))
                .expect("assistants");
        }
    }

    // presidents
    if !employee_names.is_empty() {
        for c in 0..params.companies.max(1) {
            let president = employee_names[rng.gen_range(0..employee_names.len())].clone();
            db.set(&format!("comp{c}"), "president", Value::obj(president))
                .expect("president");
        }
    }

    // vehicles
    let mut vehicle_counter = 0usize;
    for name in &employee_names {
        let n = sample_count(&mut rng, params.vehicles_per_employee);
        for _ in 0..n {
            let is_auto = rng.gen_bool(params.automobile_fraction.clamp(0.0, 1.0));
            let vname = format!("{}{}", if is_auto { "auto" } else { "veh" }, vehicle_counter);
            vehicle_counter += 1;
            db.create(&vname, if is_auto { "automobile" } else { "vehicle" })
                .expect("fresh vehicle name");
            db.set(
                &vname,
                "color",
                Value::Atom(COLOURS.choose(&mut rng).unwrap().to_string()),
            )
            .expect("color");
            let company = format!("comp{}", rng.gen_range(0..params.companies.max(1)));
            db.set(&vname, "producedBy", Value::obj(company)).expect("producedBy");
            if is_auto {
                let cylinders = if rng.gen_bool(params.four_cylinder_fraction.clamp(0.0, 1.0)) {
                    4
                } else if rng.gen_bool(0.5) {
                    6
                } else {
                    8
                };
                db.set(&vname, "cylinders", Value::Int(cylinders)).expect("cylinders");
            }
            db.add(name, "vehicles", Value::obj(vname)).expect("vehicles");
        }
    }

    db
}

/// Generate and convert to a semantic structure in one step.
pub fn generate_structure(params: &CompanyParams) -> pathlog_core::structure::Structure {
    generate(params).to_structure()
}

/// Draw a non-negative count whose expectation is `mean`.
fn sample_count(rng: &mut StdRng, mean: f64) -> usize {
    if mean <= 0.0 {
        return 0;
    }
    let base = mean.floor() as usize;
    let extra = rng.gen_bool(mean - base as f64);
    base + usize::from(extra)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn generation_is_deterministic() {
        let p = CompanyParams {
            employees: 50,
            ..CompanyParams::default()
        };
        let a = generate(&p);
        let b = generate(&p);
        assert_eq!(pathlog_oodb::dump(&a), pathlog_oodb::dump(&b));
    }

    #[test]
    fn different_seeds_differ() {
        let a = generate(&CompanyParams {
            employees: 50,
            seed: 1,
            ..CompanyParams::default()
        });
        let b = generate(&CompanyParams {
            employees: 50,
            seed: 2,
            ..CompanyParams::default()
        });
        assert_ne!(pathlog_oodb::dump(&a), pathlog_oodb::dump(&b));
    }

    #[test]
    fn generated_database_is_consistent() {
        let db = generate(&CompanyParams {
            employees: 100,
            ..CompanyParams::default()
        });
        db.integrity_check().unwrap();
        assert_eq!(db.members_of("employee").len(), 100);
        assert!(db.members_of("manager").len() < 100);
        assert!(
            db.members_of("vehicle").len() > 100,
            "about three vehicles per employee"
        );
        assert!(db.members_of("automobile").len() <= db.members_of("vehicle").len());
    }

    #[test]
    fn structure_conversion_scales() {
        let s = generate_structure(&CompanyParams {
            employees: 20,
            ..CompanyParams::default()
        });
        let stats = s.stats();
        assert!(stats.objects > 40);
        assert!(stats.scalar_facts > 100);
        assert!(stats.set_members > 0);
    }

    #[test]
    fn zero_sizes_do_not_panic() {
        let db = generate(&CompanyParams {
            employees: 0,
            companies: 0,
            departments: 0,
            ..CompanyParams::default()
        });
        assert_eq!(db.members_of("employee").len(), 0);
        db.integrity_check().unwrap();
    }

    #[test]
    fn sample_count_has_reasonable_mean() {
        let mut rng = StdRng::seed_from_u64(7);
        let n = 2000;
        let total: usize = (0..n).map(|_| sample_count(&mut rng, 2.5)).sum();
        let mean = total as f64 / n as f64;
        assert!((mean - 2.5).abs() < 0.15, "mean was {mean}");
    }
}
