//! Synthetic generator for the genealogy world of Section 6 (transitive
//! closure over `kids`).
//!
//! The generator builds a forest of persons: `roots` root persons, each the
//! ancestor of a tree of the given `depth` where every inner node has
//! `fanout` children.  The transitive-closure experiments sweep depth and
//! fan-out to show how PathLog's `desc` / `kids.tc` rules scale against a
//! relational semi-naive baseline.

use pathlog_oodb::{ObjectStore, Schema, Value};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Parameters of the generated genealogy.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct GenealogyParams {
    /// Number of root persons (independent trees).
    pub roots: usize,
    /// Depth of each tree (0 = roots only).
    pub depth: usize,
    /// Number of kids of every non-leaf person.
    pub fanout: usize,
    /// RNG seed (ages are random; the tree shape is deterministic).
    pub seed: u64,
}

impl Default for GenealogyParams {
    fn default() -> Self {
        GenealogyParams {
            roots: 1,
            depth: 4,
            fanout: 3,
            seed: 42,
        }
    }
}

impl GenealogyParams {
    /// The 10x preset: ten independent trees instead of one, giving ten
    /// times the default person count at unchanged depth (the memory
    /// experiments' large-scale arm, selected with `--scale 10` in the
    /// experiments binary).
    pub fn scaled10() -> Self {
        GenealogyParams {
            roots: 10,
            ..Self::default()
        }
    }

    /// Total number of persons this parameter set generates.
    pub fn expected_persons(&self) -> usize {
        // roots * (fanout^(depth+1) - 1) / (fanout - 1), handling fanout <= 1
        if self.fanout <= 1 {
            return self.roots * (self.depth + 1);
        }
        let per_tree = (self.fanout.pow(self.depth as u32 + 1) - 1) / (self.fanout - 1);
        self.roots * per_tree
    }
}

/// Generate a genealogy database.
pub fn generate(params: &GenealogyParams) -> ObjectStore {
    let mut rng = StdRng::seed_from_u64(params.seed);
    let mut db = ObjectStore::with_schema(Schema::genealogy());
    let mut counter = 0usize;
    for r in 0..params.roots {
        let root = format!("p{r}_0");
        counter += 1;
        db.create(&root, "person").expect("fresh root name");
        db.set(&root, "age", Value::Int(rng.gen_range(40..90))).expect("age");
        grow(&mut db, &mut rng, &root, r, params.depth, params.fanout, &mut counter);
    }
    debug_assert_eq!(counter, params.expected_persons());
    db
}

/// Generate and convert to a semantic structure in one step.
pub fn generate_structure(params: &GenealogyParams) -> pathlog_core::structure::Structure {
    generate(params).to_structure()
}

/// The small concrete family of Section 6: peter, tim, mary, sally, tom, paul.
pub fn paper_family() -> ObjectStore {
    let mut db = ObjectStore::with_schema(Schema::genealogy());
    for p in ["peter", "tim", "mary", "sally", "tom", "paul"] {
        db.create(p, "person").expect("fresh person");
    }
    db.add("peter", "kids", Value::obj("tim")).unwrap();
    db.add("peter", "kids", Value::obj("mary")).unwrap();
    db.add("tim", "kids", Value::obj("sally")).unwrap();
    db.add("mary", "kids", Value::obj("tom")).unwrap();
    db.add("mary", "kids", Value::obj("paul")).unwrap();
    db
}

fn grow(
    db: &mut ObjectStore,
    rng: &mut StdRng,
    parent: &str,
    tree: usize,
    remaining_depth: usize,
    fanout: usize,
    counter: &mut usize,
) {
    if remaining_depth == 0 {
        return;
    }
    for _ in 0..fanout {
        let child = format!("p{tree}_{counter}", counter = *counter);
        *counter += 1;
        db.create(&child, "person").expect("fresh person name");
        db.set(&child, "age", Value::Int(rng.gen_range(1..80))).expect("age");
        db.add(parent, "kids", Value::obj(child.clone())).expect("kids");
        grow(db, rng, &child, tree, remaining_depth - 1, fanout, counter);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tree_size_matches_expectation() {
        for (roots, depth, fanout) in [(1, 3, 2), (2, 2, 3), (1, 0, 5), (3, 4, 1)] {
            let p = GenealogyParams {
                roots,
                depth,
                fanout,
                seed: 1,
            };
            let db = generate(&p);
            assert_eq!(db.len(), p.expected_persons(), "params {p:?}");
            db.integrity_check().unwrap();
        }
    }

    #[test]
    fn kids_link_parent_to_children() {
        let db = generate(&GenealogyParams {
            roots: 1,
            depth: 2,
            fanout: 2,
            seed: 1,
        });
        let kids = db.get_set("p0_0", "kids").unwrap();
        assert_eq!(kids.len(), 2);
    }

    #[test]
    fn paper_family_matches_section_6() {
        let db = paper_family();
        assert_eq!(db.len(), 6);
        assert_eq!(db.get_set("peter", "kids").unwrap().len(), 2);
        assert_eq!(db.get_set("mary", "kids").unwrap().len(), 2);
        assert_eq!(db.get_set("tim", "kids").unwrap().len(), 1);
        assert!(db.get_set("sally", "kids").is_none());
    }

    #[test]
    fn structure_conversion() {
        let s = generate_structure(&GenealogyParams {
            roots: 1,
            depth: 3,
            fanout: 2,
            seed: 1,
        });
        assert_eq!(s.stats().set_members, 14, "every non-root person is someone's kid");
    }

    #[test]
    fn deterministic_for_fixed_seed() {
        let p = GenealogyParams::default();
        assert_eq!(pathlog_oodb::dump(&generate(&p)), pathlog_oodb::dump(&generate(&p)));
    }
}
