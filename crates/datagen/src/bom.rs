//! Synthetic bill-of-materials (parts explosion) generator.
//!
//! The paper's transitive-closure rules (Section 6) are demonstrated on a
//! genealogy, but their classic database use case is the parts explosion: an
//! assembly has sub-parts, which have sub-parts, and a query asks for *all*
//! parts an assembly transitively contains.  This generator builds such a
//! parts hierarchy — optionally a DAG, where sub-assemblies are shared
//! between parents — so that the `desc` / `subparts.tc` rules and the
//! relational semi-naive baseline can be exercised on deep, re-convergent
//! structures rather than trees only.

use pathlog_oodb::{AttrKind, ObjectStore, Range, Schema, Value};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Parameters of the generated parts hierarchy.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct BomParams {
    /// Number of top-level assemblies.
    pub assemblies: usize,
    /// Depth of the explosion below each assembly (0 = assemblies only).
    pub depth: usize,
    /// Number of sub-parts of every non-leaf part.
    pub fanout: usize,
    /// Probability that a sub-part slot reuses an already existing part of
    /// the same level instead of creating a new one (0.0 gives a forest,
    /// larger values give an increasingly shared DAG).
    pub sharing: f64,
    /// RNG seed.
    pub seed: u64,
}

impl Default for BomParams {
    fn default() -> Self {
        BomParams {
            assemblies: 2,
            depth: 4,
            fanout: 3,
            sharing: 0.25,
            seed: 42,
        }
    }
}

impl BomParams {
    /// A parameter set with the given depth, keeping other knobs at their
    /// defaults.
    pub fn with_depth(depth: usize) -> Self {
        BomParams {
            depth,
            ..Self::default()
        }
    }

    /// The 10x preset: ten times the default assembly count (the memory
    /// experiments' large-scale arm, selected with `--scale 10` in the
    /// experiments binary).
    pub fn scaled10() -> Self {
        BomParams {
            assemblies: 20,
            ..Self::default()
        }
    }

    /// Upper bound on the number of parts this parameter set can generate
    /// (reached only when `sharing` is 0).
    pub fn max_parts(&self) -> usize {
        if self.fanout <= 1 {
            return self.assemblies * (self.depth + 1);
        }
        let per_tree = (self.fanout.pow(self.depth as u32 + 1) - 1) / (self.fanout - 1);
        self.assemblies * per_tree
    }
}

/// The schema of the parts world.
pub fn schema() -> Schema {
    let mut s = Schema::new();
    s.class("part", &[]).expect("fresh class");
    s.class("assembly", &["part"]).expect("fresh class");
    s.class("atomicPart", &["part"]).expect("fresh class");
    s.attr("subparts", AttrKind::Set, "part", Range::Class("part".into()))
        .expect("fresh attr");
    s.attr("cost", AttrKind::Scalar, "part", Range::Integer)
        .expect("fresh attr");
    s.attr("weight", AttrKind::Scalar, "part", Range::Integer)
        .expect("fresh attr");
    debug_assert!(s.validate().is_ok());
    s
}

/// Generate a parts database.
pub fn generate(params: &BomParams) -> ObjectStore {
    let mut rng = StdRng::seed_from_u64(params.seed);
    let mut db = ObjectStore::with_schema(schema());
    let mut counter = 0usize;

    // Per level, the parts created so far (for sharing).
    let mut levels: Vec<Vec<String>> = vec![Vec::new(); params.depth + 1];

    for a in 0..params.assemblies.max(1) {
        let root = format!("asm{a}");
        db.create(&root, "assembly").expect("fresh assembly name");
        db.set(&root, "cost", Value::Int(0)).expect("cost in schema");
        levels[0].push(root.clone());
        grow(&mut db, &mut rng, params, &root, 1, &mut levels, &mut counter);
    }
    db
}

fn grow(
    db: &mut ObjectStore,
    rng: &mut StdRng,
    params: &BomParams,
    parent: &str,
    level: usize,
    levels: &mut Vec<Vec<String>>,
    counter: &mut usize,
) {
    if level > params.depth {
        return;
    }
    for _ in 0..params.fanout {
        let reuse = !levels[level].is_empty() && rng.gen_bool(params.sharing.clamp(0.0, 1.0));
        let child = if reuse {
            levels[level][rng.gen_range(0..levels[level].len())].clone()
        } else {
            *counter += 1;
            let name = format!("part{counter}");
            let class = if level == params.depth {
                "atomicPart"
            } else {
                "assembly"
            };
            db.create(&name, class).expect("fresh part name");
            db.set(&name, "cost", Value::Int(rng.gen_range(1..100)))
                .expect("cost in schema");
            db.set(&name, "weight", Value::Int(rng.gen_range(1..50)))
                .expect("weight in schema");
            levels[level].push(name.clone());
            name
        };
        db.add(parent, "subparts", Value::obj(child.clone()))
            .expect("subparts in schema");
        if !reuse {
            grow(db, rng, params, &child, level + 1, levels, counter);
        }
    }
}

/// Generate and convert to a semantic structure in one step.
pub fn generate_structure(params: &BomParams) -> pathlog_core::structure::Structure {
    generate(params).to_structure()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_parameters_generate_a_consistent_store() {
        let db = generate(&BomParams::default());
        assert!(db.integrity_check().is_ok());
        assert!(db.len() > 10);
        assert!(db.len() <= BomParams::default().max_parts());
        assert_eq!(
            db.members_of("assembly").len() + db.members_of("atomicPart").len(),
            db.len()
        );
    }

    #[test]
    fn zero_sharing_generates_a_full_forest() {
        let params = BomParams {
            sharing: 0.0,
            assemblies: 2,
            depth: 3,
            fanout: 2,
            seed: 7,
        };
        let db = generate(&params);
        assert_eq!(db.len(), params.max_parts());
    }

    #[test]
    fn sharing_shrinks_the_universe_but_keeps_every_slot_filled() {
        let base = BomParams {
            sharing: 0.0,
            assemblies: 1,
            depth: 4,
            fanout: 3,
            seed: 11,
        };
        let shared = BomParams { sharing: 0.8, ..base };
        let full = generate(&base);
        let dag = generate(&shared);
        assert!(
            dag.len() < full.len(),
            "sharing re-uses parts ({} vs {})",
            dag.len(),
            full.len()
        );
        // every non-leaf still has `fanout` subpart slots (counted with
        // multiplicity collapsed to the set level, so at least one member).
        let structure = dag.to_structure();
        let subparts = structure.facts().set_facts().count();
        assert!(subparts > 0);
    }

    #[test]
    fn depth_zero_means_assemblies_only() {
        let db = generate(&BomParams {
            depth: 0,
            assemblies: 3,
            ..BomParams::default()
        });
        assert_eq!(db.len(), 3);
        assert!(db.members_of("atomicPart").is_empty());
    }

    #[test]
    fn structures_reflect_the_generated_parts() {
        let params = BomParams {
            assemblies: 1,
            depth: 3,
            fanout: 2,
            sharing: 0.0,
            seed: 3,
        };
        let s = generate_structure(&params);
        let part_class = s.lookup_name(&pathlog_core::names::Name::atom("assembly")).unwrap();
        assert!(s.instances_of(part_class).count() > 0);
        let stats = s.stats();
        assert!(stats.set_members > 0);
        assert!(stats.scalar_facts > 0);
    }

    #[test]
    fn max_parts_matches_the_geometric_series() {
        assert_eq!(
            BomParams {
                assemblies: 1,
                depth: 2,
                fanout: 2,
                sharing: 0.0,
                seed: 0
            }
            .max_parts(),
            7
        );
        assert_eq!(
            BomParams {
                assemblies: 2,
                depth: 1,
                fanout: 3,
                sharing: 0.0,
                seed: 0
            }
            .max_parts(),
            8
        );
        assert_eq!(
            BomParams {
                assemblies: 1,
                depth: 3,
                fanout: 1,
                sharing: 0.0,
                seed: 0
            }
            .max_parts(),
            4
        );
    }

    #[test]
    fn the_schema_validates_and_knows_subparts_is_set_valued() {
        let s = schema();
        assert_eq!(s.attr_def("subparts").unwrap().kind, AttrKind::Set);
        assert!(s.is_subclass("assembly", "part"));
        assert!(s.is_subclass("atomicPart", "part"));
    }
}
