//! Lexer for the PathLog concrete syntax.
//!
//! The only delicate point is the full stop: `.` is both the path-composition
//! operator (`mary.spouse`) and the statement terminator (`... .`).  The
//! lexer resolves the ambiguity locally: a `.` immediately followed by a
//! character that can start a reference (letter, digit, `_`, `(` or `"`)
//! is a path dot; otherwise (whitespace, end of input, a comment, or any
//! other punctuation) it is a statement terminator.  `..` is always the
//! set-valued path operator.

use crate::error::{ParseError, Result};

/// A lexical token.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Token {
    /// A lowercase-initial identifier (an atom name).
    Atom(String),
    /// An uppercase- or underscore-initial identifier (a variable).
    Variable(String),
    /// An integer literal.
    Int(i64),
    /// A string literal.
    Str(String),
    /// `.` used as path composition.
    Dot,
    /// `..` — set-valued path composition.
    DotDot,
    /// `.` used as statement terminator.
    End,
    /// `:`
    Colon,
    /// `[`
    LBracket,
    /// `]`
    RBracket,
    /// `(`
    LParen,
    /// `)`
    RParen,
    /// `{`
    LBrace,
    /// `}`
    RBrace,
    /// `@`
    At,
    /// `,`
    Comma,
    /// `;`
    Semicolon,
    /// `->`
    Arrow,
    /// `->>`
    DoubleArrow,
    /// `=>`
    SigArrow,
    /// `=>>`
    SigDoubleArrow,
    /// `<-`
    Implies,
    /// `?-`
    QueryPrefix,
    /// the keyword `not`
    Not,
}

/// A token together with its 1-based source position.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Spanned {
    /// The token.
    pub token: Token,
    /// 1-based line.
    pub line: usize,
    /// 1-based column.
    pub column: usize,
}

/// Tokenise an input string.
pub fn tokenize(input: &str) -> Result<Vec<Spanned>> {
    Lexer::new(input).run()
}

struct Lexer<'a> {
    chars: Vec<char>,
    pos: usize,
    line: usize,
    column: usize,
    out: Vec<Spanned>,
    _input: &'a str,
}

impl<'a> Lexer<'a> {
    fn new(input: &'a str) -> Self {
        Lexer {
            chars: input.chars().collect(),
            pos: 0,
            line: 1,
            column: 1,
            out: Vec::new(),
            _input: input,
        }
    }

    fn peek(&self, offset: usize) -> Option<char> {
        self.chars.get(self.pos + offset).copied()
    }

    fn bump(&mut self) -> Option<char> {
        let c = self.chars.get(self.pos).copied();
        if let Some(c) = c {
            self.pos += 1;
            if c == '\n' {
                self.line += 1;
                self.column = 1;
            } else {
                self.column += 1;
            }
        }
        c
    }

    fn push(&mut self, token: Token, line: usize, column: usize) {
        self.out.push(Spanned { token, line, column });
    }

    fn error(&self, message: impl Into<String>) -> ParseError {
        ParseError::new(message, self.line, self.column)
    }

    fn run(mut self) -> Result<Vec<Spanned>> {
        while let Some(c) = self.peek(0) {
            let (line, column) = (self.line, self.column);
            match c {
                ' ' | '\t' | '\r' | '\n' => {
                    self.bump();
                }
                '%' | '#' => {
                    while let Some(c) = self.peek(0) {
                        if c == '\n' {
                            break;
                        }
                        self.bump();
                    }
                }
                '/' if self.peek(1) == Some('/') => {
                    while let Some(c) = self.peek(0) {
                        if c == '\n' {
                            break;
                        }
                        self.bump();
                    }
                }
                '.' => {
                    self.bump();
                    if self.peek(0) == Some('.') {
                        self.bump();
                        self.push(Token::DotDot, line, column);
                    } else if self.peek(0).is_some_and(starts_reference) {
                        self.push(Token::Dot, line, column);
                    } else {
                        self.push(Token::End, line, column);
                    }
                }
                ':' => {
                    self.bump();
                    self.push(Token::Colon, line, column);
                }
                '[' => {
                    self.bump();
                    self.push(Token::LBracket, line, column);
                }
                ']' => {
                    self.bump();
                    self.push(Token::RBracket, line, column);
                }
                '(' => {
                    self.bump();
                    self.push(Token::LParen, line, column);
                }
                ')' => {
                    self.bump();
                    self.push(Token::RParen, line, column);
                }
                '{' => {
                    self.bump();
                    self.push(Token::LBrace, line, column);
                }
                '}' => {
                    self.bump();
                    self.push(Token::RBrace, line, column);
                }
                '@' => {
                    self.bump();
                    self.push(Token::At, line, column);
                }
                ',' => {
                    self.bump();
                    self.push(Token::Comma, line, column);
                }
                ';' => {
                    self.bump();
                    self.push(Token::Semicolon, line, column);
                }
                '-' => {
                    self.bump();
                    match self.peek(0) {
                        Some('>') => {
                            self.bump();
                            if self.peek(0) == Some('>') {
                                self.bump();
                                self.push(Token::DoubleArrow, line, column);
                            } else {
                                self.push(Token::Arrow, line, column);
                            }
                        }
                        Some(d) if d.is_ascii_digit() => {
                            let n = self.lex_integer()?;
                            self.push(Token::Int(-n), line, column);
                        }
                        _ => return Err(self.error("expected '->', '->>' or a digit after '-'")),
                    }
                }
                '=' => {
                    self.bump();
                    if self.peek(0) == Some('>') {
                        self.bump();
                        if self.peek(0) == Some('>') {
                            self.bump();
                            self.push(Token::SigDoubleArrow, line, column);
                        } else {
                            self.push(Token::SigArrow, line, column);
                        }
                    } else {
                        return Err(self.error("expected '=>' or '=>>'"));
                    }
                }
                '<' => {
                    self.bump();
                    if self.peek(0) == Some('-') {
                        self.bump();
                        self.push(Token::Implies, line, column);
                    } else {
                        return Err(self.error("expected '<-'"));
                    }
                }
                '?' => {
                    self.bump();
                    if self.peek(0) == Some('-') {
                        self.bump();
                        self.push(Token::QueryPrefix, line, column);
                    } else {
                        return Err(self.error("expected '?-'"));
                    }
                }
                '"' => {
                    self.bump();
                    let mut s = String::new();
                    loop {
                        match self.bump() {
                            Some('"') => break,
                            Some('\\') => match self.bump() {
                                Some('"') => s.push('"'),
                                Some('\\') => s.push('\\'),
                                Some('n') => s.push('\n'),
                                Some('t') => s.push('\t'),
                                Some(other) => return Err(self.error(format!("unknown escape sequence '\\{other}'"))),
                                None => return Err(self.error("unterminated string literal")),
                            },
                            Some(c) => s.push(c),
                            None => return Err(self.error("unterminated string literal")),
                        }
                    }
                    self.push(Token::Str(s), line, column);
                }
                c if c.is_ascii_digit() => {
                    let n = self.lex_integer()?;
                    self.push(Token::Int(n), line, column);
                }
                c if c.is_alphabetic() || c == '_' => {
                    let mut s = String::new();
                    while let Some(c) = self.peek(0) {
                        if c.is_alphanumeric() || c == '_' {
                            s.push(c);
                            self.bump();
                        } else {
                            break;
                        }
                    }
                    let token = if s == "not" {
                        Token::Not
                    } else if s.starts_with(|c: char| c.is_uppercase() || c == '_') {
                        Token::Variable(s)
                    } else {
                        Token::Atom(s)
                    };
                    self.push(token, line, column);
                }
                other => return Err(self.error(format!("unexpected character '{other}'"))),
            }
        }
        Ok(self.out)
    }

    fn lex_integer(&mut self) -> Result<i64> {
        let mut s = String::new();
        while let Some(c) = self.peek(0) {
            if c.is_ascii_digit() {
                s.push(c);
                self.bump();
            } else {
                break;
            }
        }
        s.parse::<i64>()
            .map_err(|_| self.error(format!("integer literal '{s}' out of range")))
    }
}

/// Can this character start a reference (making a preceding `.` a path dot)?
fn starts_reference(c: char) -> bool {
    c.is_alphanumeric() || c == '_' || c == '(' || c == '"'
}

#[cfg(test)]
mod tests {
    use super::*;

    fn toks(input: &str) -> Vec<Token> {
        tokenize(input).unwrap().into_iter().map(|s| s.token).collect()
    }

    #[test]
    fn simple_path_and_terminator() {
        assert_eq!(
            toks("mary.spouse."),
            vec![
                Token::Atom("mary".into()),
                Token::Dot,
                Token::Atom("spouse".into()),
                Token::End
            ]
        );
    }

    #[test]
    fn set_valued_dots() {
        assert_eq!(
            toks("p1..assistants"),
            vec![
                Token::Atom("p1".into()),
                Token::DotDot,
                Token::Atom("assistants".into())
            ]
        );
    }

    #[test]
    fn dot_before_paren_is_a_path_dot() {
        let t = toks("X..(M.tc)");
        assert_eq!(
            t,
            vec![
                Token::Variable("X".into()),
                Token::DotDot,
                Token::LParen,
                Token::Variable("M".into()),
                Token::Dot,
                Token::Atom("tc".into()),
                Token::RParen
            ]
        );
    }

    #[test]
    fn arrows_and_filters() {
        assert_eq!(
            toks("[age -> 30; kids ->> {tim}]"),
            vec![
                Token::LBracket,
                Token::Atom("age".into()),
                Token::Arrow,
                Token::Int(30),
                Token::Semicolon,
                Token::Atom("kids".into()),
                Token::DoubleArrow,
                Token::LBrace,
                Token::Atom("tim".into()),
                Token::RBrace,
                Token::RBracket
            ]
        );
    }

    #[test]
    fn signature_arrows() {
        assert_eq!(
            toks("person[age => integer; kids =>> person]")[2..5].to_vec(),
            vec![
                Token::Atom("age".into()),
                Token::SigArrow,
                Token::Atom("integer".into())
            ]
        );
        assert!(toks("a =>> b").contains(&Token::SigDoubleArrow));
    }

    #[test]
    fn rule_and_query_markers() {
        assert_eq!(
            toks("X <- Y. ?- Z."),
            vec![
                Token::Variable("X".into()),
                Token::Implies,
                Token::Variable("Y".into()),
                Token::End,
                Token::QueryPrefix,
                Token::Variable("Z".into()),
                Token::End
            ]
        );
    }

    #[test]
    fn variables_and_atoms_and_not() {
        assert_eq!(
            toks("X boss Boss _tmp not"),
            vec![
                Token::Variable("X".into()),
                Token::Atom("boss".into()),
                Token::Variable("Boss".into()),
                Token::Variable("_tmp".into()),
                Token::Not
            ]
        );
    }

    #[test]
    fn strings_and_escapes() {
        assert_eq!(toks("\"Main St\""), vec![Token::Str("Main St".into())]);
        assert_eq!(toks("\"a\\\"b\\n\""), vec![Token::Str("a\"b\n".into())]);
        assert!(tokenize("\"open").is_err());
    }

    #[test]
    fn integers_including_negative() {
        assert_eq!(toks("42 -7"), vec![Token::Int(42), Token::Int(-7)]);
        assert_eq!(toks("salary@(1994)")[2..3].to_vec(), vec![Token::LParen]);
    }

    #[test]
    fn comments_are_skipped() {
        assert_eq!(
            toks("a % comment\nb # another\nc // third\nd"),
            vec![
                Token::Atom("a".into()),
                Token::Atom("b".into()),
                Token::Atom("c".into()),
                Token::Atom("d".into()),
            ]
        );
    }

    #[test]
    fn method_call_dot_inside_statement() {
        // `a.b.c.` — two path dots then a terminator
        assert_eq!(
            toks("a.b.c."),
            vec![
                Token::Atom("a".into()),
                Token::Dot,
                Token::Atom("b".into()),
                Token::Dot,
                Token::Atom("c".into()),
                Token::End
            ]
        );
    }

    #[test]
    fn dot_before_bracket_is_a_terminator() {
        // `X[kids ->> {Y}].` ends the statement even right before EOF.
        let t = toks("X[a -> b].");
        assert_eq!(*t.last().unwrap(), Token::End);
    }

    #[test]
    fn errors_carry_positions() {
        let err = tokenize("a\n  $").unwrap_err();
        assert_eq!(err.line, 2);
        assert!(err.column >= 3);
    }

    #[test]
    fn lone_equals_or_angle_is_an_error() {
        assert!(tokenize("a = b").is_err());
        assert!(tokenize("a < b").is_err());
        assert!(tokenize("a ? b").is_err());
        assert!(tokenize("a - b").is_err());
    }
}
