//! # pathlog-parser
//!
//! Lexer, parser and (via the `Display` implementations of
//! [`pathlog_core`]) pretty-printer for the PathLog concrete syntax used
//! throughout the paper *Access to Objects by Path Expressions and Rules*:
//!
//! ```text
//! X:employee[age->30; city->newYork]..vehicles:automobile[cylinders->4].color[Z]
//!
//! X.address[street -> X.street; city -> X.city] <- X : person.
//!
//! ?- X : manager..vehicles[color -> red].producedBy[city -> detroit; president -> X].
//! ```
//!
//! The parser produces [`pathlog_core::term::Term`],
//! [`pathlog_core::program::Rule`] and [`pathlog_core::program::Program`]
//! values that evaluate directly with [`pathlog_core::engine::Engine`].
//!
//! ```
//! use pathlog_core::prelude::*;
//! use pathlog_parser::parse_program;
//!
//! let program = parse_program(
//!     "peter[kids ->> {tim, mary}].
//!      tim[kids ->> {sally}].
//!      X[desc ->> {Y}] <- X[kids ->> {Y}].
//!      X[desc ->> {Y}] <- X..desc[kids ->> {Y}].
//!      ?- peter[desc ->> {Z}].",
//! )
//! .unwrap();
//!
//! let mut structure = Structure::new();
//! let engine = Engine::new();
//! engine.load_program(&mut structure, &program).unwrap();
//! let answers = engine.query(&structure, &program.queries[0]).unwrap();
//! assert_eq!(answers.len(), 3); // tim, mary, sally
//! ```

#![warn(missing_docs)]
#![forbid(unsafe_code)]

mod error;
mod lexer;
mod parser;

pub use error::{ParseError, Result};
pub use lexer::{tokenize, Spanned, Token};
pub use parser::{parse_program, parse_program_spanned, parse_query, parse_rule, parse_term, SpannedProgram};
