//! Recursive-descent parser for the PathLog concrete syntax.
//!
//! Grammar (references are exactly Definition 1 of the paper, with the
//! filter-list and selector shorthands of Section 4.1 and `=>`/`=>>`
//! signature declarations as a typing extension):
//!
//! ```text
//! program    := statement*
//! statement  := query | rule
//! query      := "?-" body "."
//! rule       := term ( "<-" body )? "."
//! body       := literal ( "," literal )*
//! literal    := [ "not" ] term
//! term       := primary postfix*
//! primary    := atom | variable | integer | string | "(" term ")"
//! postfix    := "."  simple args?          -- scalar method application
//!             | ".." simple args?          -- set-valued method application
//!             | ":"  simple                -- class membership
//!             | "[" ( filter (";" filter)* )? "]"
//! simple     := atom | variable | integer | string | "(" term ")"
//! args       := "@" "(" ( term ("," term)*)? ")"
//! filter     := simple args? tail
//!             | term                       -- selector, sugar for self -> term
//! tail       := "->" term
//!             | "->>" ( "{" (term ("," term)*)? "}" | term )
//!             | "=>"  sigresults | "=>>" sigresults
//! sigresults := "(" simple ("," simple)* ")" | simple
//! ```

use pathlog_core::builtins::SELF_METHOD;
use pathlog_core::names::{Name, Var};
use pathlog_core::program::{Literal, Program, Query, Rule};
use pathlog_core::term::{Filter, FilterValue, IsA, Molecule, Path, Term};

use crate::error::{ParseError, Result};
use crate::lexer::{tokenize, Spanned, Token};

/// Parse a whole program (facts, rules and queries).
pub fn parse_program(input: &str) -> Result<Program> {
    Ok(parse_program_spanned(input)?.program)
}

/// A parsed program together with the 1-based `(line, column)` source
/// position of each statement — the anchors the static analyzer
/// (`pathlog_core::analysis`) attaches its diagnostics to.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SpannedProgram {
    /// The parsed program.
    pub program: Program,
    /// One `(line, column)` per entry of `program.rules`, in order.
    pub rule_spans: Vec<(usize, usize)>,
    /// One `(line, column)` per entry of `program.queries`, in order.
    pub query_spans: Vec<(usize, usize)>,
}

/// Parse a whole program, recording where each statement starts.
pub fn parse_program_spanned(input: &str) -> Result<SpannedProgram> {
    Parser::new(input)?.program()
}

/// Parse a single reference (no trailing full stop required).
pub fn parse_term(input: &str) -> Result<Term> {
    let mut p = Parser::new(input)?;
    let t = p.term()?;
    p.expect_eof_or_end()?;
    Ok(t)
}

/// Parse a single rule or fact (trailing full stop optional).
pub fn parse_rule(input: &str) -> Result<Rule> {
    let mut p = Parser::new(input)?;
    let r = p.rule()?;
    p.expect_eof()?;
    Ok(r)
}

/// Parse a single query (`?-` prefix optional, trailing full stop optional).
pub fn parse_query(input: &str) -> Result<Query> {
    let mut p = Parser::new(input)?;
    if p.peek_is(&Token::QueryPrefix) {
        p.bump();
    }
    let body = p.body()?;
    if p.peek_is(&Token::End) {
        p.bump();
    }
    p.expect_eof()?;
    Ok(Query::new(body))
}

struct Parser {
    tokens: Vec<Spanned>,
    pos: usize,
}

impl Parser {
    fn new(input: &str) -> Result<Self> {
        Ok(Parser {
            tokens: tokenize(input)?,
            pos: 0,
        })
    }

    fn peek(&self) -> Option<&Token> {
        self.tokens.get(self.pos).map(|s| &s.token)
    }

    fn peek_is(&self, token: &Token) -> bool {
        self.peek() == Some(token)
    }

    fn bump(&mut self) -> Option<&Spanned> {
        let s = self.tokens.get(self.pos);
        if s.is_some() {
            self.pos += 1;
        }
        s
    }

    fn position(&self) -> (usize, usize) {
        self.tokens
            .get(self.pos.min(self.tokens.len().saturating_sub(1)))
            .map(|s| (s.line, s.column))
            .unwrap_or((1, 1))
    }

    fn error(&self, message: impl Into<String>) -> ParseError {
        let (line, column) = self.position();
        ParseError::new(message, line, column)
    }

    fn expect(&mut self, token: &Token, what: &str) -> Result<()> {
        if self.peek_is(token) {
            self.bump();
            Ok(())
        } else {
            Err(self.error(format!("expected {what}, found {:?}", self.peek())))
        }
    }

    fn expect_eof(&mut self) -> Result<()> {
        if self.pos == self.tokens.len() {
            Ok(())
        } else {
            Err(self.error(format!("unexpected trailing input: {:?}", self.peek())))
        }
    }

    fn expect_eof_or_end(&mut self) -> Result<()> {
        if self.peek_is(&Token::End) {
            self.bump();
        }
        self.expect_eof()
    }

    // -- program structure ---------------------------------------------------

    fn program(&mut self) -> Result<SpannedProgram> {
        let mut program = Program::new();
        let mut rule_spans = Vec::new();
        let mut query_spans = Vec::new();
        while self.pos < self.tokens.len() {
            let span = self.position();
            if self.peek_is(&Token::QueryPrefix) {
                self.bump();
                let body = self.body()?;
                self.expect(&Token::End, "'.' at the end of the query")?;
                program.push_query(Query::new(body));
                query_spans.push(span);
            } else {
                let rule = self.rule()?;
                program.push_rule(rule);
                rule_spans.push(span);
            }
        }
        Ok(SpannedProgram {
            program,
            rule_spans,
            query_spans,
        })
    }

    fn rule(&mut self) -> Result<Rule> {
        let head = self.term()?;
        let body = if self.peek_is(&Token::Implies) {
            self.bump();
            self.body()?
        } else {
            Vec::new()
        };
        if self.peek_is(&Token::End) {
            self.bump();
        } else if self.pos != self.tokens.len() {
            return Err(self.error(format!("expected '.', ',' or '<-', found {:?}", self.peek())));
        }
        Ok(Rule::new(head, body))
    }

    fn body(&mut self) -> Result<Vec<Literal>> {
        let mut literals = vec![self.literal()?];
        while self.peek_is(&Token::Comma) {
            self.bump();
            literals.push(self.literal()?);
        }
        Ok(literals)
    }

    fn literal(&mut self) -> Result<Literal> {
        if self.peek_is(&Token::Not) {
            self.bump();
            Ok(Literal::neg(self.term()?))
        } else {
            Ok(Literal::pos(self.term()?))
        }
    }

    // -- references ----------------------------------------------------------

    fn term(&mut self) -> Result<Term> {
        let mut term = self.primary()?;
        loop {
            match self.peek() {
                Some(Token::Dot) => {
                    self.bump();
                    let method = self.simple()?;
                    let args = self.optional_args()?;
                    term = Term::Path(Box::new(Path {
                        receiver: term,
                        set_valued: false,
                        method,
                        args,
                    }));
                }
                Some(Token::DotDot) => {
                    self.bump();
                    let method = self.simple()?;
                    let args = self.optional_args()?;
                    term = Term::Path(Box::new(Path {
                        receiver: term,
                        set_valued: true,
                        method,
                        args,
                    }));
                }
                Some(Token::Colon) => {
                    self.bump();
                    let class = self.simple()?;
                    term = Term::IsA(Box::new(IsA { receiver: term, class }));
                }
                Some(Token::LBracket) => {
                    self.bump();
                    let filters = self.filter_list()?;
                    self.expect(&Token::RBracket, "']' closing the filter list")?;
                    // Consecutive `[..][..]` accumulate on the same receiver,
                    // matching the paper's shorthand equivalence.
                    term = match term {
                        Term::Molecule(mut m) => {
                            m.filters.extend(filters);
                            Term::Molecule(m)
                        }
                        receiver => Term::Molecule(Box::new(Molecule { receiver, filters })),
                    };
                }
                _ => break,
            }
        }
        Ok(term)
    }

    fn primary(&mut self) -> Result<Term> {
        match self.peek().cloned() {
            Some(Token::Atom(s)) => {
                self.bump();
                Ok(Term::Name(Name::Atom(s)))
            }
            Some(Token::Variable(s)) => {
                self.bump();
                Ok(Term::Var(Var::new(s)))
            }
            Some(Token::Int(i)) => {
                self.bump();
                Ok(Term::Name(Name::Int(i)))
            }
            Some(Token::Str(s)) => {
                self.bump();
                Ok(Term::Name(Name::Str(s)))
            }
            Some(Token::LParen) => {
                self.bump();
                let inner = self.term()?;
                self.expect(&Token::RParen, "')'")?;
                Ok(Term::Paren(Box::new(inner)))
            }
            other => Err(self.error(format!(
                "expected a name, variable, integer, string or '(', found {other:?}"
            ))),
        }
    }

    /// A *simple* reference: the only forms allowed at method and class
    /// positions (Definition 1).
    fn simple(&mut self) -> Result<Term> {
        match self.peek() {
            Some(Token::Atom(_) | Token::Variable(_) | Token::Int(_) | Token::Str(_) | Token::LParen) => self.primary(),
            other => Err(self.error(format!(
                "expected a simple reference (name, variable or parenthesised reference), found {other:?}"
            ))),
        }
    }

    fn optional_args(&mut self) -> Result<Vec<Term>> {
        if !self.peek_is(&Token::At) {
            return Ok(Vec::new());
        }
        self.bump();
        self.expect(&Token::LParen, "'(' after '@'")?;
        let mut args = Vec::new();
        if !self.peek_is(&Token::RParen) {
            args.push(self.term()?);
            while self.peek_is(&Token::Comma) {
                self.bump();
                args.push(self.term()?);
            }
        }
        self.expect(&Token::RParen, "')' closing the argument list")?;
        Ok(args)
    }

    fn filter_list(&mut self) -> Result<Vec<Filter>> {
        let mut filters = Vec::new();
        if self.peek_is(&Token::RBracket) {
            return Ok(filters);
        }
        filters.push(self.filter()?);
        while self.peek_is(&Token::Semicolon) {
            self.bump();
            filters.push(self.filter()?);
        }
        Ok(filters)
    }

    fn filter(&mut self) -> Result<Filter> {
        // Parse a full term first: if an arrow follows (possibly after an
        // `@(..)` argument list) the parsed term is the method position of a
        // regular filter; otherwise it is an XSQL-style selector `[T]`,
        // sugar for `self -> T`.
        let first = self.term()?;
        let args = self.optional_args()?;
        let check_method = |this: &Self, t: Term| -> Result<Term> {
            if t.is_simple() {
                Ok(t)
            } else {
                Err(this.error(format!(
                    "`{t}` cannot be used as a method position; wrap it in parentheses"
                )))
            }
        };
        match self.peek() {
            Some(Token::Arrow) => {
                self.bump();
                let value = self.term()?;
                let method = check_method(self, first)?;
                Ok(Filter {
                    method,
                    args,
                    value: FilterValue::Scalar(value),
                })
            }
            Some(Token::DoubleArrow) => {
                self.bump();
                let value = if self.peek_is(&Token::LBrace) {
                    self.bump();
                    let mut elems = Vec::new();
                    if !self.peek_is(&Token::RBrace) {
                        elems.push(self.term()?);
                        while self.peek_is(&Token::Comma) {
                            self.bump();
                            elems.push(self.term()?);
                        }
                    }
                    self.expect(&Token::RBrace, "'}' closing the explicit set")?;
                    FilterValue::SetExplicit(elems)
                } else {
                    FilterValue::SetRef(self.term()?)
                };
                let method = check_method(self, first)?;
                Ok(Filter { method, args, value })
            }
            Some(Token::SigArrow) => {
                self.bump();
                let results = self.sig_results()?;
                let method = check_method(self, first)?;
                Ok(Filter {
                    method,
                    args,
                    value: FilterValue::SigScalar(results),
                })
            }
            Some(Token::SigDoubleArrow) => {
                self.bump();
                let results = self.sig_results()?;
                let method = check_method(self, first)?;
                Ok(Filter {
                    method,
                    args,
                    value: FilterValue::SigSet(results),
                })
            }
            // Selector: `[Z]` abbreviates `[self -> Z]` (Section 4.1).
            _ => {
                if !args.is_empty() {
                    return Err(self.error("an argument list must be followed by '->', '->>', '=>' or '=>>'"));
                }
                Ok(Filter {
                    method: Term::name(SELF_METHOD),
                    args: Vec::new(),
                    value: FilterValue::Scalar(first),
                })
            }
        }
    }

    fn sig_results(&mut self) -> Result<Vec<Term>> {
        if self.peek_is(&Token::LParen) {
            self.bump();
            let mut results = vec![self.simple()?];
            while self.peek_is(&Token::Comma) {
                self.bump();
                results.push(self.simple()?);
            }
            self.expect(&Token::RParen, "')' closing the signature result list")?;
            Ok(results)
        } else {
            Ok(vec![self.simple()?])
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parse_simple_paths() {
        assert_eq!(parse_term("mary.spouse").unwrap(), Term::name("mary").scalar("spouse"));
        assert_eq!(
            parse_term("p1..assistants").unwrap(),
            Term::name("p1").set("assistants")
        );
        assert_eq!(
            parse_term("mary.spouse[boss -> mary].age").unwrap(),
            Term::name("mary")
                .scalar("spouse")
                .filter(Filter::scalar("boss", "mary"))
                .scalar("age")
        );
    }

    #[test]
    fn parse_isa_and_filters() {
        let t = parse_term("X:employee[age->30; city->newYork]").unwrap();
        assert_eq!(
            t,
            Term::var("X").isa("employee").filters(vec![
                Filter::scalar("age", Term::int(30)),
                Filter::scalar("city", "newYork"),
            ])
        );
    }

    #[test]
    fn parse_example_2_1() {
        let t = parse_term("X:employee[age->30; city->newYork]..vehicles:automobile[cylinders->4].color[Z]").unwrap();
        let expected = Term::var("X")
            .isa("employee")
            .filters(vec![
                Filter::scalar("age", Term::int(30)),
                Filter::scalar("city", "newYork"),
            ])
            .set("vehicles")
            .isa("automobile")
            .filter(Filter::scalar("cylinders", Term::int(4)))
            .scalar("color")
            .selector(Term::var("Z"));
        assert_eq!(t, expected);
    }

    #[test]
    fn selector_is_sugar_for_self() {
        let t = parse_term("X..vehicles.color[Z]").unwrap();
        assert_eq!(
            t,
            Term::var("X").set("vehicles").scalar("color").selector(Term::var("Z"))
        );
    }

    #[test]
    fn explicit_sets_and_set_references() {
        assert_eq!(
            parse_term("p2[friends ->> {p3, p4}]").unwrap(),
            Term::name("p2").filter(Filter::set("friends", vec![Term::name("p3"), Term::name("p4")]))
        );
        assert_eq!(
            parse_term("p2[friends ->> p1..assistants]").unwrap(),
            Term::name("p2").filter(Filter::set_ref("friends", Term::name("p1").set("assistants")))
        );
        assert_eq!(
            parse_term("x[empty ->> {}]").unwrap(),
            Term::name("x").filter(Filter::set("empty", vec![]))
        );
    }

    #[test]
    fn parenthesised_references() {
        assert_eq!(
            parse_term("L : (integer.list)").unwrap(),
            Term::var("L").isa(Term::name("integer").scalar("list").paren())
        );
        assert_eq!(
            parse_term("X[(M.tc) ->> {Y}]").unwrap(),
            Term::var("X").filter(Filter::set(Term::var("M").scalar("tc").paren(), vec![Term::var("Y")]))
        );
        assert_eq!(
            parse_term("X..(M.tc)[M ->> {Y}]").unwrap(),
            Term::var("X")
                .set_args(Term::var("M").scalar("tc").paren(), vec![])
                .filter(Filter::set(Term::var("M"), vec![Term::var("Y")]))
        );
    }

    #[test]
    fn method_arguments() {
        assert_eq!(
            parse_term("john.salary@(1994)").unwrap(),
            Term::name("john").scalar_args("salary", vec![Term::int(1994)])
        );
        assert_eq!(
            parse_term("p1.paidFor@(p1..vehicles)").unwrap(),
            Term::name("p1").scalar_args("paidFor", vec![Term::name("p1").set("vehicles")])
        );
    }

    #[test]
    fn signature_filters() {
        let t = parse_term("person[age => integer; kids =>> person]").unwrap();
        match &t {
            Term::Molecule(m) => {
                assert_eq!(m.filters.len(), 2);
                assert!(matches!(m.filters[0].value, FilterValue::SigScalar(_)));
                assert!(matches!(m.filters[1].value, FilterValue::SigSet(_)));
            }
            _ => panic!("expected molecule"),
        }
        let t = parse_term("person[parents =>> (person, ancestor)]").unwrap();
        match &t {
            Term::Molecule(m) => match &m.filters[0].value {
                FilterValue::SigSet(rs) => assert_eq!(rs.len(), 2),
                _ => panic!("expected set signature"),
            },
            _ => panic!("expected molecule"),
        }
    }

    #[test]
    fn rules_facts_and_queries() {
        let r = parse_rule("X.boss[worksFor -> D] <- X : employee[worksFor -> D].").unwrap();
        assert_eq!(r.body.len(), 1);
        assert!(matches!(r.head, Term::Molecule(_)));

        let f = parse_rule("peter[kids ->> {tim, mary}].").unwrap();
        assert!(f.is_fact());

        let q = parse_query("?- X : manager..vehicles[color -> red].").unwrap();
        assert_eq!(q.body.len(), 1);

        let q = parse_query("X : employee, not X[city -> detroit]").unwrap();
        assert_eq!(q.body.len(), 2);
        assert!(!q.body[1].positive);
    }

    #[test]
    fn parse_whole_program() {
        let src = r#"
            % the genealogy of Section 6
            peter[kids ->> {tim, mary}].
            tim[kids ->> {sally}].
            mary[kids ->> {tom, paul}].

            X[desc ->> {Y}] <- X[kids ->> {Y}].
            X[desc ->> {Y}] <- X..desc[kids ->> {Y}].

            ?- peter[desc ->> {Z}].
        "#;
        let p = parse_program(src).unwrap();
        assert_eq!(p.rules.len(), 5);
        assert_eq!(p.facts().count(), 3);
        assert_eq!(p.queries.len(), 1);
    }

    #[test]
    fn display_roundtrip() {
        let sources = [
            "mary.spouse[boss -> mary].age",
            "X : employee[age -> 30; city -> newYork]..vehicles : automobile[cylinders -> 4].color[self -> Z]",
            "p2[friends ->> {p3, p4}]",
            "p2[friends ->> p1..assistants]",
            "john.salary@(1994)",
            "X[(M.tc) ->> {Y}]",
            "L : (integer.list)",
            "X : manager..vehicles[color -> red].producedBy[city -> detroit; president -> X]",
        ];
        for src in sources {
            let t = parse_term(src).unwrap();
            let printed = t.to_string();
            let reparsed = parse_term(&printed).unwrap();
            assert_eq!(t, reparsed, "round-trip failed for {src}: printed as {printed}");
        }
    }

    #[test]
    fn spanned_parse_records_statement_positions() {
        let src = "a : b.\n  c : d.\n?- X : b.\nX : e <- X : b.\n";
        let spanned = parse_program_spanned(src).unwrap();
        assert_eq!(spanned.program.rules.len(), 3);
        assert_eq!(spanned.program.queries.len(), 1);
        assert_eq!(spanned.rule_spans, vec![(1, 1), (2, 3), (4, 1)]);
        assert_eq!(spanned.query_spans, vec![(3, 1)]);
        // The plain entry point parses identically.
        assert_eq!(parse_program(src).unwrap(), spanned.program);
    }

    #[test]
    fn error_positions_and_messages() {
        let err = parse_term("mary..[x]").unwrap_err();
        assert!(err.to_string().contains("simple reference"));
        let err = parse_term("mary[age ->").unwrap_err();
        assert!(err.line >= 1);
        let err = parse_program("a : b c.").unwrap_err();
        assert!(err.to_string().contains("expected"));
        assert!(parse_term("mary..").is_err());
        assert!(parse_rule("a : b. extra").is_err());
    }

    #[test]
    fn non_simple_method_before_arrow_is_rejected() {
        // `a.b -> c` inside a filter: the left side is a path, not a simple
        // reference; the paper requires parentheses: `(a.b) -> c`.
        let err = parse_term("x[a.b -> c]").unwrap_err();
        assert!(err.to_string().contains("method position"));
        assert!(parse_term("x[(a.b) -> c]").is_ok());
    }

    #[test]
    fn filter_method_with_arguments() {
        let t = parse_term("john[salary@(1994) -> 60000]").unwrap();
        match &t {
            Term::Molecule(m) => {
                assert_eq!(m.filters[0].method, Term::name("salary"));
                assert_eq!(m.filters[0].args, vec![Term::int(1994)]);
            }
            _ => panic!("expected molecule"),
        }
    }
}
