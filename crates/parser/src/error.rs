//! Parse errors with source positions.

use std::fmt;

/// An error produced by the lexer or parser, with a 1-based source position.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseError {
    /// What went wrong.
    pub message: String,
    /// 1-based line of the offending token.
    pub line: usize,
    /// 1-based column of the offending token.
    pub column: usize,
}

impl ParseError {
    /// Construct an error at a position.
    pub fn new(message: impl Into<String>, line: usize, column: usize) -> Self {
        ParseError {
            message: message.into(),
            line,
            column,
        }
    }
}

impl fmt::Display for ParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "parse error at {}:{}: {}", self.line, self.column, self.message)
    }
}

impl std::error::Error for ParseError {}

/// Result alias for parsing operations.
pub type Result<T> = std::result::Result<T, ParseError>;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_contains_position_and_message() {
        let e = ParseError::new("unexpected token", 3, 14);
        let s = e.to_string();
        assert!(s.contains("3:14"));
        assert!(s.contains("unexpected token"));
    }
}
