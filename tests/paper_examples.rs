//! Integration tests reproducing every numbered example of the paper
//! end-to-end: concrete syntax -> parser -> engine -> answers.
//!
//! The experiment ids (E1..E9) refer to the index in `DESIGN.md` /
//! `EXPERIMENTS.md`.

use std::collections::BTreeSet;

use pathlog::prelude::*;

/// The hand-built world the Sections 1–2 examples talk about: employees with
/// vehicles, automobiles with colours/cylinders, producers with presidents.
fn company_world() -> Structure {
    let mut db = ObjectStore::with_schema(Schema::company());
    db.create("dept1", "department").unwrap();
    db.create("mary", "employee").unwrap();
    db.create("john", "employee").unwrap();
    db.create("frank", "manager").unwrap();
    db.set("mary", "age", Value::Int(30)).unwrap();
    db.set("mary", "city", Value::Atom("newYork".into())).unwrap();
    db.set("john", "age", Value::Int(30)).unwrap();
    db.set("john", "city", Value::Atom("detroit".into())).unwrap();
    db.set("frank", "age", Value::Int(50)).unwrap();
    db.set("frank", "city", Value::Atom("detroit".into())).unwrap();
    db.set("mary", "boss", Value::obj("frank")).unwrap();
    db.set("john", "boss", Value::obj("frank")).unwrap();
    db.set("mary", "worksFor", Value::obj("dept1")).unwrap();
    db.set("john", "worksFor", Value::obj("dept1")).unwrap();
    db.set("frank", "worksFor", Value::obj("dept1")).unwrap();

    db.create("comp1", "company").unwrap();
    db.set("comp1", "cityOf", Value::Atom("detroit".into())).unwrap();
    db.set("comp1", "president", Value::obj("frank")).unwrap();
    db.create("comp2", "company").unwrap();
    db.set("comp2", "cityOf", Value::Atom("boston".into())).unwrap();

    // mary: a red 4-cylinder automobile and a blue plain vehicle
    db.create("a1", "automobile").unwrap();
    db.set("a1", "color", Value::Atom("red".into())).unwrap();
    db.set("a1", "cylinders", Value::Int(4)).unwrap();
    db.set("a1", "producedBy", Value::obj("comp2")).unwrap();
    db.create("v1", "vehicle").unwrap();
    db.set("v1", "color", Value::Atom("blue".into())).unwrap();
    db.add("mary", "vehicles", Value::obj("a1")).unwrap();
    db.add("mary", "vehicles", Value::obj("v1")).unwrap();

    // john: a green 6-cylinder automobile
    db.create("a2", "automobile").unwrap();
    db.set("a2", "color", Value::Atom("green".into())).unwrap();
    db.set("a2", "cylinders", Value::Int(6)).unwrap();
    db.add("john", "vehicles", Value::obj("a2")).unwrap();

    // frank (the manager): a red automobile produced by the Detroit company
    // he presides over.
    db.create("a3", "automobile").unwrap();
    db.set("a3", "color", Value::Atom("red".into())).unwrap();
    db.set("a3", "cylinders", Value::Int(8)).unwrap();
    db.set("a3", "producedBy", Value::obj("comp1")).unwrap();
    db.add("frank", "vehicles", Value::obj("a3")).unwrap();

    db.integrity_check().unwrap();
    db.to_structure()
}

fn names(structure: &Structure, oids: impl IntoIterator<Item = Oid>) -> BTreeSet<String> {
    oids.into_iter()
        .map(|o| structure.display_name(o).into_owned())
        .collect()
}

#[test]
fn e1_colours_of_employee_automobiles() {
    // Queries (1.1)-(1.3): SELECT Y.color FROM X IN employee, Y IN X.vehicles
    // WHERE Y IN automobile.
    let s = company_world();
    let engine = Engine::new();
    let term = parse_term("X : employee..vehicles : automobile.color[Z]").unwrap();
    let colours = names(&s, engine.query_term(&s, &term).unwrap().into_iter().map(|a| a.object));
    // a1 red (mary), a2 green (john), a3 red (frank, a manager and therefore
    // an employee); v1 is not an automobile.
    assert_eq!(colours, ["red", "green"].iter().map(|s| s.to_string()).collect());
}

#[test]
fn e1_query_1_4_adds_the_cylinder_condition() {
    let s = company_world();
    let engine = Engine::new();
    let term = parse_term("X : employee..vehicles : automobile[cylinders -> 4].color[Z]").unwrap();
    let colours = names(&s, engine.query_term(&s, &term).unwrap().into_iter().map(|a| a.object));
    assert_eq!(colours, ["red"].iter().map(|s| s.to_string()).collect());
}

#[test]
fn e2_two_dimensional_reference_2_1() {
    // (2.1): X:employee[age->30; city->newYork]..vehicles:automobile[cylinders->4].color[Z]
    let s = company_world();
    let engine = Engine::new();
    let term =
        parse_term("X : employee[age -> 30; city -> newYork]..vehicles : automobile[cylinders -> 4].color[Z]").unwrap();
    let answers = engine.query_term(&s, &term).unwrap();
    assert_eq!(answers.len(), 1);
    let x = answers[0].bindings.get(&Var::new("X")).unwrap();
    let z = answers[0].bindings.get(&Var::new("Z")).unwrap();
    assert_eq!(s.display_name(x), "mary");
    assert_eq!(s.display_name(z), "red");
}

#[test]
fn e2_nested_path_2_3_boss_city() {
    // (2.3): [city -> X.boss.city] — only employees living in the same city
    // as their boss qualify.  frank (the boss) lives in detroit, so john
    // qualifies and mary (newYork) does not.
    let s = company_world();
    let engine = Engine::new();
    let term = parse_term("X : employee[city -> X.boss.city]").unwrap();
    let xs = names(&s, engine.query_term(&s, &term).unwrap().into_iter().map(|a| a.object));
    assert_eq!(xs, ["john"].iter().map(|s| s.to_string()).collect());
}

#[test]
fn e3_manager_query_single_reference() {
    // Section 2: managers with a red vehicle produced by a company in
    // Detroit whose president is the manager.
    let s = company_world();
    let engine = Engine::new();
    let term = parse_term("X : manager..vehicles[color -> red].producedBy[cityOf -> detroit; president -> X]").unwrap();
    let managers: BTreeSet<String> = engine
        .query_term(&s, &term)
        .unwrap()
        .into_iter()
        .filter_map(|a| a.bindings.get(&Var::new("X")))
        .map(|o| s.display_name(o).into_owned())
        .collect();
    assert_eq!(managers, ["frank"].iter().map(|s| s.to_string()).collect());
}

#[test]
fn e4_address_rule_2_4_creates_virtual_objects() {
    let mut s = Structure::new();
    let engine = Engine::new();
    let program = parse_program(
        "anna : person[street -> \"Main St\"; city -> newYork].
         bert : person[street -> \"2nd Ave\"; city -> detroit].
         X.address[street -> X.street; city -> X.city] <- X : person.",
    )
    .unwrap();
    let stats = engine.load_program(&mut s, &program).unwrap();
    assert_eq!(stats.virtual_objects, 2);
    // The address object is referenced by applying the method address to X.
    let cities = engine
        .eval_ground(&s, &parse_term("anna.address.city").unwrap())
        .unwrap();
    assert_eq!(names(&s, cities), ["newYork"].iter().map(|s| s.to_string()).collect());
    // Re-running the rule does not create further objects (idempotence).
    let stats2 = engine.run_rules(&mut s, &program.rules).unwrap();
    assert_eq!(stats2.virtual_objects, 0);
}

#[test]
fn e5_set_valued_references_section_4() {
    let mut s = Structure::new();
    let engine = Engine::new();
    let program = parse_program(
        "p1[assistants ->> {anna, bert}].
         anna[salary -> 1000]. bert[salary -> 2000].
         anna[projects ->> {proj1}]. bert[projects ->> {proj2, proj3}].
         p1[vehicles ->> {car1, car2}].
         p1[paidFor@(car1) -> 100]. p1[paidFor@(car2) -> 200].
         p2[friends ->> p1..assistants].",
    )
    .unwrap();
    engine.load_program(&mut s, &program).unwrap();

    // (4.1) p1..assistants
    let assistants = engine.eval_ground(&s, &parse_term("p1..assistants").unwrap()).unwrap();
    assert_eq!(assistants.len(), 2);
    // (4.2) p1..assistants[salary -> 1000] — only anna
    let t = parse_term("p1..assistants[salary -> 1000]").unwrap();
    assert_eq!(
        names(&s, engine.eval_ground(&s, &t).unwrap()),
        ["anna"].iter().map(|s| s.to_string()).collect()
    );
    // (4.4) the assistants of p1 are friends of p2
    let friends = engine.eval_ground(&s, &parse_term("p2..friends").unwrap()).unwrap();
    assert_eq!(friends.len(), 2);
    // p1..assistants.salary — the set of salaries
    let salaries = engine
        .eval_ground(&s, &parse_term("p1..assistants.salary").unwrap())
        .unwrap();
    assert_eq!(salaries.len(), 2);
    // p1..assistants..projects — the set of projects of all assistants
    let projects = engine
        .eval_ground(&s, &parse_term("p1..assistants..projects").unwrap())
        .unwrap();
    assert_eq!(projects.len(), 3);
    // p1.paidFor@(p1..vehicles) — the set of prices paid
    let prices = engine
        .eval_ground(&s, &parse_term("p1.paidFor@(p1..vehicles)").unwrap())
        .unwrap();
    assert_eq!(prices.len(), 2);
    // accessing the assistants one by one through a variable
    let t = parse_term("p1[assistants ->> {X[salary -> 1000]}]").unwrap();
    let solutions = engine.query(&s, &Query::single(t)).unwrap();
    assert_eq!(solutions.len(), 1);
    assert_eq!(s.display_name(solutions[0].get(&Var::new("X")).unwrap()), "anna");
}

#[test]
fn e5_ill_formed_example_4_5_is_rejected() {
    // p2[boss -> p1..assistants] — a set-valued reference as the result of a
    // scalar method is not well-formed.
    let term = parse_term("p2[boss -> p1..assistants]").unwrap();
    assert!(!pathlog::core::wellformed::is_well_formed(&term));
    // and using it as a fact is an invalid rule
    let rule = parse_rule("p2[boss -> p1..assistants].").unwrap();
    assert!(pathlog::core::program::validate_rule(&rule).is_err());
}

#[test]
fn e5_scalarity_classification_of_paper_terms() {
    use pathlog::core::scalarity::is_set_valued;
    assert!(!is_set_valued(&parse_term("p1.age").unwrap()));
    assert!(is_set_valued(&parse_term("p1..assistants").unwrap()));
    assert!(is_set_valued(&parse_term("p1..assistants[salary -> 1000]").unwrap()));
    assert!(!is_set_valued(&parse_term("p2[friends ->> p1..assistants]").unwrap()));
    assert!(is_set_valued(&parse_term("p1..assistants.salary").unwrap()));
    assert!(is_set_valued(&parse_term("p1.paidFor@(p1..vehicles)").unwrap()));
    assert!(is_set_valued(&parse_term("john..kids..kids").unwrap()));
}

#[test]
fn e6_intensional_power_method() {
    // X[power -> Y] <- X : automobile.engineOf[power -> Y].
    let mut s = Structure::new();
    let engine = Engine::new();
    let program = parse_program(
        "a1 : automobile[engineOf -> m100]. m100[power -> 90].
         a2 : automobile[engineOf -> m200]. m200[power -> 120].
         X[power -> Y] <- X : automobile.engineOf[power -> Y].",
    )
    .unwrap();
    engine.load_program(&mut s, &program).unwrap();
    let p = engine.eval_ground(&s, &parse_term("a1.power").unwrap()).unwrap();
    assert_eq!(names(&s, p), ["90"].iter().map(|s| s.to_string()).collect());
    let p = engine.eval_ground(&s, &parse_term("a2.power").unwrap()).unwrap();
    assert_eq!(names(&s, p), ["120"].iter().map(|s| s.to_string()).collect());
}

#[test]
fn e6_rule_6_1_vs_6_2() {
    // (6.1) creates a virtual boss for p1; (6.2) only annotates existing bosses.
    let engine = Engine::new();

    let mut s1 = Structure::new();
    let program = parse_program(
        "p1 : employee[worksFor -> cs1].
         X.boss[worksFor -> D] <- X : employee[worksFor -> D].",
    )
    .unwrap();
    let stats = engine.load_program(&mut s1, &program).unwrap();
    assert_eq!(stats.virtual_objects, 1);
    let dept = engine
        .eval_ground(&s1, &parse_term("p1.boss.worksFor").unwrap())
        .unwrap();
    assert_eq!(names(&s1, dept), ["cs1"].iter().map(|s| s.to_string()).collect());

    let mut s2 = Structure::new();
    let program = parse_program(
        "p1 : employee[worksFor -> cs1].
         p2 : employee[worksFor -> cs2; boss -> bert].
         Z[worksFor -> D] <- X : employee[worksFor -> D].boss[Z].",
    )
    .unwrap();
    let stats = engine.load_program(&mut s2, &program).unwrap();
    assert_eq!(stats.virtual_objects, 0);
    let dept = engine.eval_ground(&s2, &parse_term("bert.worksFor").unwrap()).unwrap();
    assert_eq!(names(&s2, dept), ["cs2"].iter().map(|s| s.to_string()).collect());
    assert!(engine
        .eval_ground(&s2, &parse_term("p1.boss").unwrap())
        .unwrap()
        .is_empty());
}

#[test]
fn e7_transitive_closure_6_4_and_generic_tc() {
    let engine = Engine::new();
    let facts = "peter[kids ->> {tim, mary}]. tim[kids ->> {sally}]. mary[kids ->> {tom, paul}].";

    // (6.4) desc rules
    let mut s = Structure::new();
    let program = parse_program(&format!(
        "{facts}
         X[desc ->> {{Y}}] <- X[kids ->> {{Y}}].
         X[desc ->> {{Y}}] <- X..desc[kids ->> {{Y}}]."
    ))
    .unwrap();
    engine.load_program(&mut s, &program).unwrap();
    let desc = engine.eval_ground(&s, &parse_term("peter..desc").unwrap()).unwrap();
    assert_eq!(
        names(&s, desc),
        ["tim", "mary", "sally", "tom", "paul"]
            .iter()
            .map(|s| s.to_string())
            .collect()
    );

    // generic kids.tc (guarded; see DESIGN.md) reproduces the paper's answer
    // peter[(kids.tc) ->> {tim, mary, sally, tom, paul}].
    let mut s = Structure::new();
    let program = parse_program(&format!(
        "{facts}
         kids : baseMethod.
         X[(M.tc) ->> {{Y}}] <- M : baseMethod, X[M ->> {{Y}}].
         X[(M.tc) ->> {{Y}}] <- M : baseMethod, X..(M.tc)[M ->> {{Y}}]."
    ))
    .unwrap();
    engine.load_program(&mut s, &program).unwrap();
    let closure = engine
        .eval_ground(&s, &parse_term("peter..(kids.tc)").unwrap())
        .unwrap();
    assert_eq!(
        names(&s, closure),
        ["tim", "mary", "sally", "tom", "paul"]
            .iter()
            .map(|s| s.to_string())
            .collect()
    );
    // the derived method is itself referenced through a path — no new name
    // and no function symbol was needed.
    assert!(s.lookup_name(&Name::atom("desc")).is_none());
}

#[test]
fn e8_stratification_requirement() {
    // The paper: a rule whose body uses X[friends ->> p1..assistants] may
    // only run once assistants is complete.  A program where assistants
    // depends on friends the same way cannot be stratified.
    let program = parse_program(
        "p1[reports ->> {anna, bert}].
         p1[assistants ->> {Y}] <- p1[reports ->> {Y}].
         p2 : sociable <- p2[friends ->> p1..assistants].
         p2[friends ->> {anna}].",
    )
    .unwrap();
    let mut s = Structure::new();
    let engine = Engine::new();
    // stratifiable: assistants (stratum 1) before the friends test (stratum 2)
    engine.load_program(&mut s, &program).unwrap();

    let bad = parse_program(
        "p1[assistants ->> {Y}] <- p1[friends ->> {Y}].
         p1[friends ->> p1..assistants] <- p1[assistants ->> {Y}].",
    )
    .unwrap();
    let mut s = Structure::new();
    assert!(matches!(
        engine.load_program(&mut s, &bad),
        Err(Error::NotStratifiable(_))
    ));
}

#[test]
fn e9_xsql_view_6_3_vs_pathlog_virtual_objects() {
    use pathlog::baseline::{materialize, ViewDef};
    // The same derived information through both mechanisms.
    let base = {
        let mut s = Structure::new();
        let engine = Engine::new();
        let program = parse_program("p1 : employee[worksFor -> cs1]. p2 : employee[worksFor -> cs2].").unwrap();
        engine.load_program(&mut s, &program).unwrap();
        s
    };

    // XSQL: CREATE VIEW EmployeeBoss ... OID FUNCTION OF X
    let mut with_view = base.clone();
    let stats = materialize(
        &mut with_view,
        &ViewDef::new("EmployeeBoss", "employee").attr("WorksFor", &["worksFor"]),
    );
    assert_eq!(stats.objects, 2);
    // the derived object needs the function-symbol-style name EmployeeBoss(p1)
    assert!(with_view.lookup_name(&Name::atom("EmployeeBoss(p1)")).is_some());

    // PathLog: the method boss references the virtual object, no new name needed.
    let mut with_rule = base.clone();
    let engine = Engine::new();
    let program = parse_program("X.boss[worksFor -> D] <- X : employee[worksFor -> D].").unwrap();
    let stats = engine.load_program(&mut with_rule, &program).unwrap();
    assert_eq!(stats.virtual_objects, 2);
    let boss_dept = engine
        .eval_ground(&with_rule, &parse_term("p1.boss.worksFor").unwrap())
        .unwrap();
    assert_eq!(
        names(&with_rule, boss_dept),
        ["cs1"].iter().map(|s| s.to_string()).collect()
    );
}

#[test]
fn signatures_make_virtual_objects_type_checkable() {
    // The paper's argument for method-based virtual objects: signatures and
    // type checking apply to them.  Declare boss's worksFor to be a
    // department and give it a non-department: the checker complains.
    let mut s = Structure::new();
    let engine = Engine::new();
    // Note: the virtual bosses are put into their own class `bossObj` rather
    // than into `employee`, because `X.boss : employee <- X : employee` would
    // make every virtual boss an employee and thereby feed the rule that
    // creates bosses — an unbounded cascade of bosses-of-bosses.
    let program = parse_program(
        "employee[worksFor => department].
         bossObj[worksFor => department].
         cs1 : department.
         p1 : employee[worksFor -> cs1].
         p9 : employee[worksFor -> garbage].
         X.boss[worksFor -> D] <- X : employee[worksFor -> D].
         X.boss : bossObj <- X : employee.",
    )
    .unwrap();
    engine.load_program(&mut s, &program).unwrap();
    let errors = pathlog::core::typing::type_check(&s);
    // p9's own fact and p9's virtual boss both violate the signature.
    assert_eq!(errors.len(), 2);
    assert!(
        errors.iter().any(|e| s.is_virtual(e.receiver)),
        "a virtual object is among the offenders"
    );
}
