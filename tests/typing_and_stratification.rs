//! Integration tests for the typing (signature) extension and for the
//! stratification and safety restrictions of the engine (experiments E5/E8).

use pathlog::prelude::*;

#[test]
fn signatures_written_in_pathlog_syntax_drive_the_type_checker() {
    let mut s = Structure::new();
    let engine = Engine::new();
    let program = parse_program(
        "person[age => integer; kids =>> person].
         3 : integer. 7 : integer. 90 : integer.
         mary : person[age -> 3].
         mary[kids ->> {tim}].
         tim : person[age -> red].",
    )
    .unwrap();
    engine.load_program(&mut s, &program).unwrap();
    let errors = pathlog::core::typing::type_check(&s);
    // two violations: tim's age is `red` (not an integer), and mary's kid tim
    // is fine (tim : person) — so exactly one age violation plus ... tim is a
    // person, so kids is fine.
    assert_eq!(errors.len(), 1, "{errors:?}");
    assert!(errors[0].to_string().contains("age"));
}

#[test]
fn signature_declarations_are_queryable_as_formulas() {
    let mut s = Structure::new();
    let engine = Engine::new();
    // `string` is mentioned as an ordinary name so that the negative test
    // below asks about a known (but undeclared) result class.
    let program = parse_program("person[age => integer]. string : valueClass.").unwrap();
    engine.load_program(&mut s, &program).unwrap();
    // the declaration itself is entailed, a different one is not
    let yes = parse_term("person[age => integer]").unwrap();
    let no = parse_term("person[age => string]").unwrap();
    assert!(entails(&s, &yes, &Bindings::new()).unwrap());
    assert!(!entails(&s, &no, &Bindings::new()).unwrap());
}

#[test]
fn strict_coverage_mode_reports_uncovered_facts() {
    let mut s = Structure::new();
    let engine = Engine::new();
    let program = parse_program(
        "employee[salary => integer].
         50000 : integer.
         mary : employee[salary -> 50000].
         intruder[salary -> 10].",
    )
    .unwrap();
    engine.load_program(&mut s, &program).unwrap();
    assert!(pathlog::core::typing::type_check(&s).is_empty());
    let strict =
        pathlog::core::typing::type_check_with(&s, pathlog::core::typing::TypeCheckOptions { strict_coverage: true });
    assert_eq!(strict.len(), 1, "the intruder's salary is covered by no signature");
}

#[test]
fn unsafe_rules_are_rejected_with_helpful_messages() {
    // head variable not bound in the body
    let rule = parse_rule("X[likes -> Y] <- X : person.").unwrap();
    let err = pathlog::core::program::validate_rule(&rule).unwrap_err();
    assert!(err.to_string().contains("Y"));

    // negated-only variable
    let rule = parse_rule("X : lonely <- X : person, not Y[friendOf -> X].").unwrap();
    assert!(pathlog::core::program::validate_rule(&rule).is_err());

    // set-valued head
    let rule = parse_rule("X..kids[age -> 1] <- X : person.").unwrap();
    let err = pathlog::core::program::validate_rule(&rule).unwrap_err();
    assert!(err.to_string().contains("set-valued"));
}

#[test]
fn stratified_negation_behaves_like_negation_as_failure() {
    let mut s = Structure::new();
    let engine = Engine::new();
    let program = parse_program(
        "mary : person[spouse -> peter].
         john : person.
         X : single <- X : person, not X.spouse[].
         ?- X : single.",
    )
    .unwrap();
    engine.load_program(&mut s, &program).unwrap();
    let answers = engine.query(&s, &program.queries[0]).unwrap();
    assert_eq!(answers.len(), 1);
    let x = answers[0].get(&Var::new("X")).unwrap();
    assert_eq!(s.display_name(x), "john");
}

#[test]
fn negation_that_depends_on_its_own_definitions_is_rejected() {
    let program = parse_program(
        "a : p.
         X : q <- X : p, not X : r.
         X : r <- X : p, not X : q.",
    )
    .unwrap();
    let mut s = Structure::new();
    let engine = Engine::new();
    assert!(matches!(
        engine.load_program(&mut s, &program),
        Err(Error::NotStratifiable(_))
    ));
}

#[test]
fn set_at_a_time_reads_are_evaluated_after_their_producers() {
    // friends is copied from assistants, assistants is derived from reports:
    // three strata, and the copy sees the complete set.
    let mut s = Structure::new();
    let engine = Engine::new();
    let program = parse_program(
        "boss[reports ->> {anna, bert, carl}].
         boss[assistants ->> {Y}] <- boss[reports ->> {Y}].
         buddy[friends ->> boss..assistants] <- boss[assistants ->> {Y}].
         ?- buddy[friends ->> {F}].",
    )
    .unwrap();
    let stats = engine.load_program(&mut s, &program).unwrap();
    assert!(stats.strata >= 2);
    let answers = engine.query(&s, &program.queries[0]).unwrap();
    assert_eq!(answers.len(), 3, "all three assistants became friends");
}

#[test]
fn comparison_builtins_extension_filters_bindings() {
    let mut s = Structure::new();
    let engine = Engine::new();
    let program = parse_program(
        "anna : person[age -> 30].
         bert : person[age -> 50].
         carl : person[age -> 41].
         X : senior <- X : person[age -> A], A[ge@(41) -> A].
         ?- X : senior.",
    )
    .unwrap();
    engine.load_program(&mut s, &program).unwrap();
    let seniors: Vec<String> = engine
        .query(&s, &program.queries[0])
        .unwrap()
        .iter()
        .map(|b| s.display_name(b.get(&Var::new("X")).unwrap()).into_owned())
        .collect();
    assert_eq!(seniors.len(), 2);
    assert!(seniors.contains(&"bert".to_string()) && seniors.contains(&"carl".to_string()));
}

#[test]
fn scalar_conflicts_are_reported_not_silently_overwritten() {
    let mut s = Structure::new();
    let engine = Engine::new();
    let program = parse_program("mary[age -> 30]. mary[age -> 31].").unwrap();
    let err = engine.load_program(&mut s, &program).unwrap_err();
    assert!(err.to_string().contains("conflicting"));
}

#[test]
fn evaluation_limits_guard_against_runaway_programs() {
    let program = parse_program(
        "n0 : node.
         X.next[] <- X : node.
         Y : node <- X : node.next[Y].",
    )
    .unwrap();
    let mut s = Structure::new();
    let engine = Engine::with_options(EvalOptions {
        max_iterations: 30,
        ..EvalOptions::default()
    });
    assert!(matches!(
        engine.load_program(&mut s, &program),
        Err(Error::LimitExceeded {
            kind: pathlog::core::error::LimitKind::Iterations,
            limit: 30,
            ..
        })
    ));
}
