//! Equivalence of the direct semantics and the F-logic translation baseline.
//!
//! Section 2 of the paper contrasts PathLog's *direct* semantics with the
//! XSQL approach of translating path expressions into (flat) F-logic.  These
//! tests run both evaluators side by side on the paper's scenarios and check
//! that they produce exactly the same answers over named objects, while the
//! translation needs strictly more atoms (the compactness claim of the
//! "second dimension").

use std::collections::{BTreeMap, BTreeSet};

use pathlog::flogic::{FlatEngine, Translator};
use pathlog::prelude::*;

/// Answers of a query as sets of `{variable -> display name}` maps, so that
/// the two engines can be compared independently of OID allocation order.
type NamedAnswers = BTreeSet<BTreeMap<String, String>>;

/// Run `program_text` with the direct engine and answer its queries.
fn direct_answers(base: &Structure, program_text: &str) -> Vec<NamedAnswers> {
    let program = parse_program(program_text).expect("program parses");
    let mut structure = base.clone();
    let engine = Engine::new();
    engine
        .load_program(&mut structure, &program)
        .expect("direct evaluation succeeds");
    program
        .queries
        .iter()
        .map(|query| {
            let vars = query.variables();
            engine
                .query(&structure, query)
                .expect("direct query succeeds")
                .into_iter()
                .map(|bindings| {
                    vars.iter()
                        .filter_map(|v| {
                            bindings
                                .get(v)
                                .map(|o| (v.name().to_string(), structure.display_name(o).into_owned()))
                        })
                        .collect::<BTreeMap<_, _>>()
                })
                .collect()
        })
        .collect()
}

/// Translate `program_text` into flat molecules, run the flat engine and
/// answer the translated queries.
fn translated_answers(base: &Structure, program_text: &str) -> Vec<NamedAnswers> {
    let program = parse_program(program_text).expect("program parses");
    let (flat, _stats) = Translator::new().program(&program).expect("program translates");
    let mut structure = base.clone();
    let engine = FlatEngine::new();
    engine.run(&mut structure, &flat).expect("flat evaluation succeeds");
    flat.queries
        .iter()
        .map(|query| {
            engine
                .query(&structure, query)
                .expect("flat query succeeds")
                .into_iter()
                .map(|bindings| {
                    bindings
                        .iter()
                        .map(|(v, o)| (v.name().to_string(), structure.display_name(o).into_owned()))
                        .collect::<BTreeMap<_, _>>()
                })
                .collect()
        })
        .collect()
}

/// Both evaluators must agree on every query of the program.
fn assert_equivalent(base: &Structure, program_text: &str) -> Vec<NamedAnswers> {
    let direct = direct_answers(base, program_text);
    let translated = translated_answers(base, program_text);
    assert_eq!(direct.len(), translated.len(), "same number of queries");
    for (i, (d, t)) in direct.iter().zip(translated.iter()).enumerate() {
        assert_eq!(
            d, t,
            "query {i} of `{program_text}` disagrees between direct and translated evaluation"
        );
    }
    direct
}

fn company() -> Structure {
    pathlog::datagen::company::generate_structure(&CompanyParams::scaled(25))
}

fn family() -> Structure {
    pathlog::datagen::genealogy::paper_family().to_structure()
}

#[test]
fn colours_query_1_1_agrees() {
    let answers = assert_equivalent(&company(), "?- X : employee..vehicles : automobile.color[Z].");
    assert!(
        !answers[0].is_empty(),
        "the workload contains employee-owned automobiles"
    );
}

#[test]
fn two_dimensional_reference_2_1_agrees() {
    assert_equivalent(
        &company(),
        "?- X : employee[city -> newYork]..vehicles : automobile[cylinders -> 4].color[Z].",
    );
}

#[test]
fn manager_query_section_2_agrees() {
    assert_equivalent(
        &company(),
        "?- X : manager..vehicles[color -> red].producedBy[cityOf -> detroit; president -> X].",
    );
}

#[test]
fn address_rule_2_4_agrees_on_named_projections() {
    let answers = assert_equivalent(
        &company(),
        "X.address[city -> X.city] <- X : employee.
         ?- X : employee.address[city -> C].",
    );
    assert!(
        !answers[0].is_empty(),
        "every employee has a (virtual) address with its city"
    );
}

#[test]
fn virtual_boss_rule_6_1_agrees() {
    // The Section 6 scenario given as facts: no employee has a recorded boss,
    // so rule (6.1) gives each one a virtual boss in both evaluators.
    let answers = assert_equivalent(
        &Structure::new(),
        "p1 : employee[worksFor -> cs1].
         p2 : employee[worksFor -> cs2].
         X.boss[worksFor -> D] <- X : employee[worksFor -> D].
         ?- X : employee[worksFor -> D].boss[worksFor -> E].",
    );
    // The rule forces boss.worksFor = worksFor, so D = E in every answer.
    assert_eq!(answers[0].len(), 2);
    for answer in &answers[0] {
        assert_eq!(answer["D"], answer["E"]);
    }
}

#[test]
fn methods_reuse_existing_objects_where_skolem_functions_conflict() {
    // The paper's argument for method-denoted virtual objects (Sections 2 and
    // 6): `X.boss` refers to the *existing* boss when one is stored, and only
    // otherwise creates a virtual object.  A function-symbol translation has
    // no such choice — `boss(p2)` is a new object distinct from the stored
    // boss `b2`, so asserting `p2[boss -> boss(p2)]` clashes with the
    // extensional fact.  The direct engine succeeds; the translation does not.
    let program_text = "p1 : employee[worksFor -> cs1].
         p2 : employee[worksFor -> cs2; boss -> b2].
         b2 : employee[worksFor -> cs2].
         X.boss[worksFor -> D] <- X : employee[worksFor -> D].
         ?- X : employee[worksFor -> D].boss[worksFor -> E].";
    let program = parse_program(program_text).unwrap();

    // Direct semantics: p1 gets a virtual boss, p2's existing boss b2 is reused.
    let mut direct = Structure::new();
    let stats = Engine::new().load_program(&mut direct, &program).unwrap();
    assert_eq!(stats.virtual_objects, 2, "virtual bosses for p1 and for b2 itself");

    // F-logic translation: the skolem term boss(p2) conflicts with b2.
    let (flat, _) = Translator::new().program(&program).unwrap();
    let err = FlatEngine::new().run(&mut Structure::new(), &flat).unwrap_err();
    assert!(err.to_string().contains("conflicting scalar results"));
}

#[test]
fn existing_boss_rule_6_2_agrees() {
    // Rule (6.2): only *existing* bosses inherit the department.
    let answers = assert_equivalent(
        &Structure::new(),
        "p1 : employee[worksFor -> cs1].
         p2 : employee[worksFor -> cs2; boss -> b2].
         b2 : employee.
         Z[worksFor -> D] <- X : employee[worksFor -> D].boss[Z].
         ?- Z : employee[worksFor -> D].",
    );
    assert_eq!(answers[0].len(), 3, "p1, p2 and the derived b2/cs2 pair");
}

#[test]
fn transitive_closure_6_4_agrees_on_the_paper_family() {
    let answers = assert_equivalent(
        &family(),
        "X[desc ->> {Y}] <- X[kids ->> {Y}].
         X[desc ->> {Y}] <- X..desc[kids ->> {Y}].
         ?- peter[desc ->> {Y}].",
    );
    let descendants: BTreeSet<&str> = answers[0].iter().map(|a| a["Y"].as_str()).collect();
    assert_eq!(
        descendants,
        ["tim", "mary", "sally", "tom", "paul"].into_iter().collect()
    );
}

#[test]
fn intensional_power_method_agrees() {
    // Section 6: X[power -> Y] <- X : automobile.engine[power -> Y].
    // The synthetic company workload has no engines, so extend a copy first.
    let mut base = company();
    let engine_m = base.atom("engine");
    let power = base.atom("power");
    let automobile = base.atom("automobile");
    let autos: Vec<_> = base.instances_of(automobile).collect();
    for (i, auto) in autos.into_iter().enumerate().take(5) {
        let e = base.atom(&format!("engine{i}"));
        let kw = base.int(66 + i as i64);
        base.assert_scalar(engine_m, auto, &[], e).unwrap();
        base.assert_scalar(power, e, &[], kw).unwrap();
    }
    let answers = assert_equivalent(
        &base,
        "X[power -> Y] <- X : automobile.engine[power -> Y].
         ?- X : automobile[power -> Y].",
    );
    assert_eq!(answers[0].len(), 5);
}

#[test]
fn translation_is_less_compact_than_the_direct_reference() {
    // The compactness claim: one two-dimensional reference expands into a
    // conjunction of flat atoms (here 8), one atom per step/filter.
    let program =
        parse_program("?- X : employee[age -> 30; city -> newYork]..vehicles : automobile[cylinders -> 4].color[Z].")
            .unwrap();
    let (flat, stats) = Translator::new().program(&program).unwrap();
    assert_eq!(program.queries[0].body.len(), 1, "PathLog needs a single reference");
    assert!(
        stats.flat_atoms >= 8,
        "the translation needs a conjunction (got {})",
        stats.flat_atoms
    );
    assert_eq!(flat.queries[0].atom_count(), stats.flat_atoms);
    assert!(stats.aux_variables >= 2);
}

#[test]
fn virtual_object_counts_match_between_engines() {
    let base = company();
    let program_text = "X.address[city -> X.city] <- X : employee.";
    let program = parse_program(program_text).unwrap();

    let mut direct = base.clone();
    let stats = Engine::new().load_program(&mut direct, &program).unwrap();

    let (flat, _) = Translator::new().program(&program).unwrap();
    let mut translated = base.clone();
    let flat_stats = FlatEngine::new().run(&mut translated, &flat).unwrap();

    assert_eq!(
        stats.virtual_objects, flat_stats.skolem_objects,
        "one virtual address per employee in both"
    );
    assert_eq!(direct.num_objects(), translated.num_objects());
}
