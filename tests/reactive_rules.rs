//! Cross-crate integration of the production / active rule layer: synthetic
//! workloads from `pathlog-datagen`, conditions written in concrete PathLog
//! syntax (via `pathlog-parser`), deductive pre-processing by the core
//! engine, and reactive post-processing by `pathlog-reactive`.

use std::collections::BTreeSet;

use pathlog::core::names::Name;
use pathlog::core::program::Literal;
use pathlog::core::term::{Filter, Term};
use pathlog::prelude::*;
use pathlog::reactive::{ActiveStore, EcaAction, Event, ProductionOptions};

/// Conditions can be written in concrete PathLog syntax and reused as
/// production-rule conditions: the body of a parsed rule is a `Vec<Literal>`.
fn body_of(rule_text: &str) -> Vec<Literal> {
    parse_rule(rule_text).expect("rule parses").body
}

#[test]
fn production_rules_with_parsed_conditions_close_over_deductive_output() {
    // Deductive phase: give every employee a virtual address (rule 2.4).
    let mut structure = pathlog::datagen::company::generate_structure(&CompanyParams::scaled(60));
    let program = parse_program("X.address[city -> X.city] <- X : employee.").unwrap();
    let engine = Engine::new();
    let deductive = engine.load_program(&mut structure, &program).unwrap();
    assert!(deductive.virtual_objects > 0);

    // Reactive phase: a production rule that marks every employee whose
    // (virtual) address is in Detroit as a commuter candidate.
    let mut production = ProductionEngine::new();
    production.add_rule(ProductionRule::new(
        "commuters",
        body_of("X : commuter <- X : employee.address[city -> detroit]."),
        vec![Action::Assert(Term::var("X").isa("commuter"))],
    ));
    let stats = production.run(&mut structure).unwrap();

    // The production rule found exactly the employees whose city is Detroit.
    let detroit_employees: BTreeSet<Oid> = engine
        .query_term(&structure, &parse_term("X : employee[city -> detroit]").unwrap())
        .unwrap()
        .into_iter()
        .filter_map(|a| a.bindings.get(&Var::new("X")))
        .collect();
    let commuter = structure.lookup_name(&Name::atom("commuter")).unwrap();
    let commuters: BTreeSet<Oid> = structure.instances_of(commuter).collect();
    assert_eq!(commuters, detroit_employees);
    assert_eq!(stats.firings, commuters.len());
}

#[test]
fn production_retraction_then_deduction_stays_a_model() {
    // Retract all boss facts with a production rule, then check that the
    // structure still satisfies the (boss-free) program — i.e. retraction
    // leaves a consistent structure behind.
    let mut structure = pathlog::datagen::company::generate_structure(&CompanyParams::scaled(30));
    let mut production = ProductionEngine::new();
    production.add_rule(ProductionRule::new(
        "drop-bosses",
        vec![Literal::pos(
            Term::var("X")
                .isa("employee")
                .filter(Filter::scalar("boss", Term::var("B"))),
        )],
        vec![Action::Retract(
            Term::var("X").filter(Filter::scalar("boss", Term::var("B"))),
        )],
    ));
    let stats = production.run(&mut structure).unwrap();
    assert!(stats.retracted > 0);
    let remaining = Engine::new()
        .query_term(&structure, &parse_term("X : employee.boss").unwrap())
        .unwrap();
    assert!(remaining.is_empty(), "no boss facts survive");

    // The deductive engine still works on the mutated structure.
    let program = parse_program("X.boss[worksFor -> D] <- X : employee[worksFor -> D].").unwrap();
    let redo = Engine::new().load_program(&mut structure, &program).unwrap();
    assert!(redo.virtual_objects > 0, "every employee now gets a fresh virtual boss");
    let violations = pathlog::core::semantics::violations(&structure, &program).unwrap();
    assert!(violations.is_empty(), "the fixpoint is a model of the program");
}

#[test]
fn active_triggers_keep_a_derived_attribute_in_sync() {
    // The trigger layer maintains carCount for every employee as vehicles are
    // added and removed.
    let base = pathlog::datagen::company::generate_structure(&CompanyParams::scaled(10));
    let mut store = ActiveStore::new(base);
    store.add_rule(EcaRule::new(
        "on-add",
        Event::SetMemberAdded(Name::atom("vehicles")),
        vec![Literal::pos(Term::var("Receiver").isa("employee"))],
        vec![EcaAction::AddIsA {
            object: Term::var("Member"),
            class: Name::atom("tracked"),
        }],
    ));
    store.add_rule(EcaRule::new(
        "on-remove",
        Event::SetMemberRemoved(Name::atom("vehicles")),
        vec![],
        vec![EcaAction::AddSetMember {
            receiver: Term::var("Receiver"),
            method: Name::atom("formerVehicles"),
            member: Term::var("Member"),
        }],
    ));

    let vehicles = store.oid("vehicles");
    let e0 = store.oid("e0");
    let bike = store.oid("newBike");
    let add = store.add_set_member(vehicles, e0, bike).unwrap();
    assert_eq!(add.firings, 1);
    let remove = store.remove_set_member(vehicles, e0, bike).unwrap();
    assert_eq!(remove.firings, 1);

    let structure = store.into_structure();
    let tracked = structure.lookup_name(&Name::atom("tracked")).unwrap();
    let bike = structure.lookup_name(&Name::atom("newBike")).unwrap();
    assert!(structure.in_class(bike, tracked));
    let former = structure.lookup_name(&Name::atom("formerVehicles")).unwrap();
    let e0 = structure.lookup_name(&Name::atom("e0")).unwrap();
    assert!(structure.apply_set(former, e0, &[]).unwrap().contains(&bike));
}

#[test]
fn production_and_deductive_engines_agree_on_monotone_rule_sets() {
    // For a purely additive rule set (no retraction), running it as
    // production rules or as deductive rules derives the same facts — the
    // "evaluation strategy is orthogonal" claim made concrete.
    let base = pathlog::datagen::genealogy::paper_family().to_structure();

    // Deductive: desc as transitive closure of kids.
    let mut deductive = base.clone();
    let program = parse_program(
        "X[desc ->> {Y}] <- X[kids ->> {Y}].
         X[desc ->> {Y}] <- X..desc[kids ->> {Y}].",
    )
    .unwrap();
    Engine::new().load_program(&mut deductive, &program).unwrap();

    // Production: the same two rules as condition/action pairs.
    let mut produced = base.clone();
    let mut engine = ProductionEngine::with_options(ProductionOptions {
        max_cycles: 1_000,
        ..Default::default()
    });
    for rule in &program.rules {
        engine.add_rule(ProductionRule::new(
            "desc",
            rule.body.clone(),
            vec![Action::Assert(rule.head.clone())],
        ));
    }
    engine.run(&mut produced).unwrap();

    let collect = |s: &Structure| -> BTreeSet<(String, String)> {
        let desc = s.lookup_name(&Name::atom("desc")).unwrap();
        s.facts()
            .set_facts_of_method(desc)
            .flat_map(|f| {
                let receiver = s.display_name(f.receiver).into_owned();
                f.members
                    .iter()
                    .map(move |&m| (receiver.clone(), s.display_name(m).into_owned()))
                    .collect::<Vec<_>>()
            })
            .collect()
    };
    assert_eq!(collect(&deductive), collect(&produced));
    assert_eq!(
        collect(&deductive).len(),
        8,
        "the paper family has eight descendant pairs"
    );
}
