//! Integration tests for the static-analysis subsystem: golden diagnostics
//! per PL0xx code over the fixture corpus, a bit-identical regression of the
//! refactored stratifier against the original relaxation fixpoint, a
//! property test that analyzer-accepted programs never trip runtime safety
//! errors, the static-vs-dynamic cascade fixture, and the analyzer-clean
//! sweep over the shipped example programs.

use std::collections::BTreeSet;

use proptest::prelude::*;

use pathlog::core::analysis::{AnalysisInput, CascadeBound, DiagCode, Severity};
use pathlog::core::engine::{stratify, StaticChecks, Stratification};
use pathlog::core::program::{validate_program, DepKey, RuleInfo};
use pathlog::parser::parse_program_spanned;
use pathlog::prelude::*;
use pathlog::reactive::{ActiveOptions, ActiveStore, EcaAction, EcaRule, Event, ReactiveError};

fn fixture(name: &str) -> String {
    let path = format!("{}/tests/fixtures/diagnostics/{name}", env!("CARGO_MANIFEST_DIR"));
    std::fs::read_to_string(&path).unwrap_or_else(|e| panic!("reading {path}: {e}"))
}

fn analyze_source(source: &str) -> pathlog::core::analysis::Analysis {
    let spanned = parse_program_spanned(source).expect("fixture parses");
    AnalysisInput::new()
        .program(&spanned.program)
        .rule_spans(&spanned.rule_spans)
        .query_spans(&spanned.query_spans)
        .run()
}

// ---------------------------------------------------------------------------
// Golden diagnostics: each fixture fires exactly its own code, anchored at
// the documented line.
// ---------------------------------------------------------------------------

#[test]
fn each_fixture_fires_exactly_its_own_code() {
    // (file, code, severity, line of the offending statement; None = whole program)
    let golden: &[(&str, DiagCode, Severity, Option<usize>)] = &[
        ("pl001_ill_formed.pl", DiagCode::IllFormed, Severity::Error, Some(4)),
        (
            "pl002_set_valued_head.pl",
            DiagCode::SetValuedHead,
            Severity::Error,
            Some(3),
        ),
        (
            "pl003_unsafe_head_variable.pl",
            DiagCode::UnsafeHeadVariable,
            Severity::Error,
            Some(4),
        ),
        (
            "pl004_negation_only_variable.pl",
            DiagCode::UnsafeNegationVariable,
            Severity::Error,
            Some(4),
        ),
        (
            "pl005_not_stratifiable.pl",
            DiagCode::NotStratifiable,
            Severity::Error,
            None,
        ),
        (
            "pl006_always_empty.pl",
            DiagCode::AlwaysEmptyLiteral,
            Severity::Warning,
            Some(4),
        ),
        ("pl007_dead_rule.pl", DiagCode::DeadRule, Severity::Warning, Some(7)),
        (
            "pl008_singleton_variable.pl",
            DiagCode::SingletonVariable,
            Severity::Warning,
            Some(5),
        ),
        (
            "pl009_scalar_conflict.pl",
            DiagCode::ScalarConflict,
            Severity::Warning,
            Some(6),
        ),
    ];
    for &(file, code, severity, line) in golden {
        let analysis = analyze_source(&fixture(file));
        let codes: BTreeSet<DiagCode> = analysis.diagnostics.codes().into_iter().collect();
        assert_eq!(
            codes,
            [code].into_iter().collect::<BTreeSet<_>>(),
            "{file} should fire exactly {code}, got: {}",
            analysis.diagnostics
        );
        for d in analysis.diagnostics.iter() {
            assert_eq!(d.severity, severity, "{file}: {d}");
            assert_eq!(
                d.span.map(|s| s.line),
                line,
                "{file}: diagnostic anchored at the wrong statement: {d}"
            );
            assert!(!d.message.is_empty() && !d.subject.is_empty(), "{file}: {d}");
        }
    }
}

#[test]
fn fixture_corpus_covers_at_least_eight_distinct_codes() {
    let dir = format!("{}/tests/fixtures/diagnostics", env!("CARGO_MANIFEST_DIR"));
    let mut codes = BTreeSet::new();
    for entry in std::fs::read_dir(&dir).unwrap() {
        let path = entry.unwrap().path();
        if path.extension().is_some_and(|e| e == "pl") {
            let source = std::fs::read_to_string(&path).unwrap();
            codes.extend(analyze_source(&source).diagnostics.codes());
        }
    }
    assert!(codes.len() >= 8, "only {} distinct codes fired: {codes:?}", codes.len());
}

// ---------------------------------------------------------------------------
// Stratification regression: the shared-graph stratifier must be
// bit-identical to the original relaxation fixpoint it replaced.
// ---------------------------------------------------------------------------

/// The stratification algorithm exactly as the engine implemented it before
/// it moved onto the shared dependency graph, kept here as the oracle.
fn reference_stratify(infos: &[RuleInfo]) -> Option<Stratification> {
    fn intersect(defines: &BTreeSet<DepKey>, uses: &BTreeSet<DepKey>) -> bool {
        if defines.is_empty() || uses.is_empty() {
            return false;
        }
        if defines.contains(&DepKey::Unknown) || uses.contains(&DepKey::Unknown) {
            return true;
        }
        defines.iter().any(|k| uses.contains(k))
    }
    let n = infos.len();
    let mut stratum = vec![1usize; n];
    if n == 0 {
        return Some(Stratification {
            strata: Vec::new(),
            stratum_of: stratum,
        });
    }
    loop {
        let mut changed = false;
        for r in 0..n {
            for s in 0..n {
                if intersect(&infos[s].defines, &infos[r].uses) && stratum[r] < stratum[s] {
                    stratum[r] = stratum[s];
                    changed = true;
                }
                if intersect(&infos[s].defines, &infos[r].strict_uses) && stratum[r] < stratum[s] + 1 {
                    stratum[r] = stratum[s] + 1;
                    changed = true;
                }
            }
            if stratum[r] > n {
                return None;
            }
        }
        if !changed {
            break;
        }
    }
    let max = stratum.iter().copied().max().unwrap_or(1);
    let mut strata = vec![Vec::new(); max];
    for (r, &s) in stratum.iter().enumerate() {
        strata[s - 1].push(r);
    }
    let strata: Vec<Vec<usize>> = strata.into_iter().filter(|s| !s.is_empty()).collect();
    let mut stratum_of = vec![0usize; n];
    for (i, group) in strata.iter().enumerate() {
        for &r in group {
            stratum_of[r] = i;
        }
    }
    Some(Stratification { strata, stratum_of })
}

#[test]
fn strata_are_bit_identical_to_the_reference_fixpoint() {
    // Programs exercising every interesting shape: paper examples
    // (transitive closure, the Section 6 set-valued path), strict chains,
    // negation, wildcard (generic) rules, and a non-stratifiable one.
    let sources = [
        // Example 4.1-style transitive closure: ordinary recursion.
        "tim[kids ->> {sally}]. sally[kids ->> {pam}].
         X[desc ->> {Y}] <- X[kids ->> {Y}].
         X[desc ->> {Z}] <- X[kids ->> {Y}], Y[desc ->> {Z}].",
        // Section 6: a set-valued path in a body forces a later stratum.
        "p1[assistants ->> {ann}]. ann : person.
         X[helpers ->> {Y}] <- X[assistants ->> {Y}].
         X[friends ->> p1..helpers] <- X : person.",
        // Stratified negation plus a strict chain.
        "a : person. a[salary -> 10].
         X : paid <- X : person[salary -> S].
         X : unpaid <- X : person, not X : paid.
         X : flagged <- X : unpaid.",
        // Generic rules with Unknown keys on both sides.
        "a[tc -> b]. X[(M.tc) -> Y] <- X[M -> Y].
         X[(M.tc) -> Z] <- X[M -> Y], Y[(M.tc) -> Z].",
        // Not stratifiable: both sides must agree on the error too.
        "a : person. X : odd <- X : person, not X : odd.",
    ];
    for source in sources {
        let program = parse_program(source).unwrap();
        let infos = validate_program(&program).unwrap();
        let actual = stratify(&infos);
        match reference_stratify(&infos) {
            Some(expected) => {
                let actual =
                    actual.unwrap_or_else(|e| panic!("reference stratifies {source:?} but engine errors: {e}"));
                assert_eq!(actual, expected, "strata differ on {source:?}");
            }
            None => {
                assert!(actual.is_err(), "reference rejects {source:?} but engine stratified");
            }
        }
    }
}

// ---------------------------------------------------------------------------
// Property: programs the analyzer accepts never trip runtime safety errors.
// ---------------------------------------------------------------------------

/// A pool of statements, some safe and some not, from which random programs
/// are assembled.  The property below needs both kinds: accepted programs
/// must load, and the generator must actually produce rejected ones too for
/// the test to mean anything.
const STATEMENT_POOL: &[&str] = &[
    "mary : employee.",
    "peter : employee[salary -> 100].",
    "tim[kids ->> {sally, pam}].",
    "X : person <- X : employee.",
    "X[desc ->> {Y}] <- X[kids ->> {Y}].",
    "X[desc ->> {Z}] <- X[kids ->> {Y}], Y[desc ->> {Z}].",
    "X : paid <- X : employee[salary -> _S].",
    "X : unpaid <- X : employee, not X : paid.",
    "?- X : person.",
    "?- X[desc ->> {Y}].",
    // unsafe: head variable not bound by a positive literal (PL003)
    "X[bonus -> Y] <- X : employee.",
    // unsafe: variable only under negation (PL004)
    "a : flagged <- not X : person.",
    // ill-formed: scalar filter with a set-valued value (PL001)
    "house[owner -> tim..kids].",
    // not stratifiable (PL005)
    "X : odd <- X : employee, not X : odd.",
];

proptest! {
    #![proptest_config(ProptestConfig::with_cases(160))]

    /// If the analyzer reports no `Error`-severity diagnostic, loading and
    /// evaluating the program cannot fail: every runtime safety /
    /// stratification error is anticipated statically.
    #[test]
    fn accepted_programs_never_trip_runtime_errors(
        picks in prop::collection::vec(0..STATEMENT_POOL.len(), 1..7)
    ) {
        let source: String = picks.iter().map(|&i| STATEMENT_POOL[i]).collect::<Vec<_>>().join("\n");
        let program = parse_program(&source).unwrap();
        let engine = Engine::new();
        let analysis = engine.analyze(None, &program);
        if analysis.no_errors() {
            let mut structure = Structure::new();
            engine
                .load_program(&mut structure, &program)
                .unwrap_or_else(|e| panic!("analyzer accepted but runtime rejected {source:?}: {e}"));
        }
    }
}

#[test]
fn the_pool_exercises_both_accepted_and_rejected_programs() {
    let engine = Engine::new();
    let accepted = parse_program("mary : employee. X : person <- X : employee.").unwrap();
    assert!(engine.analyze(None, &accepted).no_errors());
    let rejected = parse_program("X[bonus -> Y] <- X : employee.").unwrap();
    assert!(!engine.analyze(None, &rejected).no_errors());
}

// ---------------------------------------------------------------------------
// Cascade: the analyzer flags statically what the runtime only catches
// mid-cascade, after mutations already committed.
// ---------------------------------------------------------------------------

#[test]
fn unbounded_cascade_is_flagged_statically_before_runtime_catches_it() {
    let mut store = ActiveStore::with_options(
        Structure::new(),
        ActiveOptions {
            max_cascade_depth: 8,
            ..ActiveOptions::default()
        },
    );
    // Each rule retracts its own trigger before asserting the other
    // method, so every hop re-inserts a fresh fact and the ping-pong never
    // converges on its own.
    let forward = EcaRule::new(
        "ping",
        Event::ScalarAsserted(Name::atom("a")),
        vec![],
        vec![
            EcaAction::RetractScalar {
                receiver: Term::var("Receiver"),
                method: Name::atom("a"),
            },
            EcaAction::AssertScalar {
                receiver: Term::var("Receiver"),
                method: Name::atom("b"),
                value: Term::var("Value"),
            },
        ],
    );
    let back = EcaRule::new(
        "pong",
        Event::ScalarAsserted(Name::atom("b")),
        vec![],
        vec![
            EcaAction::RetractScalar {
                receiver: Term::var("Receiver"),
                method: Name::atom("b"),
            },
            EcaAction::AssertScalar {
                receiver: Term::var("Receiver"),
                method: Name::atom("a"),
                value: Term::var("Value"),
            },
        ],
    );
    store.add_rule(forward);
    store.add_rule(back);

    // Static: the trigger cycle and the unbounded cascade are reported
    // before any mutation happens.
    let analysis = store.analyze();
    let codes = analysis.diagnostics.codes();
    assert!(codes.contains(&DiagCode::CascadeCycle), "{}", analysis.diagnostics);
    assert!(codes.contains(&DiagCode::CascadeBound), "{}", analysis.diagnostics);
    assert_eq!(
        analysis.cascade.expect("cascade analyzed").bound,
        CascadeBound::Unbounded
    );

    // Dynamic: the runtime only notices when the depth limit trips — with
    // every mutation applied before the limit already committed.
    let a = store.oid("a");
    let obj = store.oid("obj");
    let v = store.int(1);
    let err = store.assert_scalar(a, obj, v).unwrap_err();
    assert!(
        matches!(err, ReactiveError::LimitExceeded(_)),
        "expected the cascade depth limit, got {err:?}"
    );
}

// ---------------------------------------------------------------------------
// Shipped corpus: every example program is analyzer-clean, and Enforce mode
// accepts them while rejecting the unsafe fixtures.
// ---------------------------------------------------------------------------

#[test]
fn shipped_example_programs_are_analyzer_clean() {
    let dir = format!("{}/examples/programs", env!("CARGO_MANIFEST_DIR"));
    let mut seen = 0;
    for entry in std::fs::read_dir(&dir).unwrap() {
        let path = entry.unwrap().path();
        if path.extension().is_none_or(|e| e != "pl") {
            continue;
        }
        seen += 1;
        let source = std::fs::read_to_string(&path).unwrap();
        let analysis = analyze_source(&source);
        assert!(
            analysis.diagnostics.is_clean(),
            "{} is not analyzer-clean:\n{}",
            path.display(),
            analysis.diagnostics
        );
    }
    assert!(seen >= 4, "expected the shipped corpus, found {seen} programs");
}

#[test]
fn enforce_mode_gates_installation_on_the_analysis() {
    let engine = Engine::with_options(EvalOptions {
        static_checks: StaticChecks::Enforce,
        ..EvalOptions::default()
    });
    // clean program: installs, analysis comes back alongside the stats
    let clean = parse_program("mary : employee. X : person <- X : employee. ?- X : person.").unwrap();
    let mut structure = Structure::new();
    let (_stats, analysis) = engine.install_checked(&mut structure, &clean).unwrap();
    assert!(analysis.no_errors());

    // unsafe program: rejected before any fact lands in the structure
    let unsafe_program = parse_program("mary : employee. X[bonus -> Y] <- X : employee.").unwrap();
    let mut untouched = Structure::new();
    let err = engine.install_checked(&mut untouched, &unsafe_program).unwrap_err();
    assert!(matches!(err, pathlog::core::error::Error::StaticRejected(_)), "{err}");
    assert_eq!(
        untouched.num_objects(),
        Structure::new().num_objects(),
        "rejection precedes installation: only the builtins remain"
    );
}
