//! Property-based tests for the extension layers added around the core
//! reproduction: retraction in the fact store, the object-SQL frontend, the
//! F-logic translation, the equivalence of naive and semi-naive
//! (per-literal delta-join) evaluation, the observational equivalence of
//! sequential and parallel (sharded-delta) evaluation, the reuse of one
//! engine's persistent worker pool across repeated runs, and the
//! equivalence of pooled and sequential *reactive* evaluation (production
//! recognise batches and active-store snapshot rounds).

use std::collections::{BTreeMap, BTreeSet};

use proptest::prelude::*;

use pathlog::core::names::Name;
use pathlog::core::structure::{Oid, Structure};
use pathlog::core::term::Term;
use pathlog::flogic::Translator;
use pathlog::prelude::*;
use pathlog::reactive::{
    Action, ActiveOptions, ActiveStats, CascadeSchedule, EcaAction, EcaRule, Event, ProductionOptions,
};
use pathlog::sqlfront;

// ---------------------------------------------------------------------------
// 1. Retraction: the fact store behaves like a map / multimap model under any
//    interleaving of asserts and retracts (this exercises the swap-remove
//    index maintenance added for the reactive layer).
// ---------------------------------------------------------------------------

#[derive(Debug, Clone)]
enum Op {
    AssertScalar { method: u8, receiver: u8, value: u8 },
    RetractScalar { method: u8, receiver: u8 },
    AddMember { method: u8, receiver: u8, member: u8 },
    RemoveMember { method: u8, receiver: u8, member: u8 },
}

fn op_strategy() -> impl Strategy<Value = Op> {
    let m = 0u8..3;
    let o = 0u8..5;
    prop_oneof![
        (m.clone(), o.clone(), o.clone()).prop_map(|(method, receiver, value)| Op::AssertScalar {
            method,
            receiver,
            value
        }),
        (m.clone(), o.clone()).prop_map(|(method, receiver)| Op::RetractScalar { method, receiver }),
        (m.clone(), o.clone(), o.clone()).prop_map(|(method, receiver, member)| Op::AddMember {
            method,
            receiver,
            member
        }),
        (m, o.clone(), o).prop_map(|(method, receiver, member)| Op::RemoveMember {
            method,
            receiver,
            member
        }),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn fact_store_with_retraction_matches_a_map_model(ops in prop::collection::vec(op_strategy(), 0..80)) {
        let mut structure = Structure::new();
        let methods: Vec<Oid> = (0..3).map(|i| structure.atom(&format!("m{i}"))).collect();
        let objects: Vec<Oid> = (0..5).map(|i| structure.atom(&format!("o{i}"))).collect();

        let mut scalar_model: BTreeMap<(u8, u8), u8> = BTreeMap::new();
        let mut set_model: BTreeMap<(u8, u8), BTreeSet<u8>> = BTreeMap::new();

        for op in &ops {
            match *op {
                Op::AssertScalar { method, receiver, value } => {
                    let outcome = structure.assert_scalar(
                        methods[method as usize], objects[receiver as usize], &[], objects[value as usize]);
                    match scalar_model.get(&(method, receiver)) {
                        Some(&existing) if existing != value => prop_assert!(outcome.is_err(),
                            "conflicting scalar assert must be rejected"),
                        _ => {
                            prop_assert!(outcome.is_ok());
                            scalar_model.insert((method, receiver), value);
                        }
                    }
                }
                Op::RetractScalar { method, receiver } => {
                    let removed = structure.retract_scalar(methods[method as usize], objects[receiver as usize], &[]);
                    let expected = scalar_model.remove(&(method, receiver));
                    prop_assert_eq!(removed, expected.map(|v| objects[v as usize]));
                }
                Op::AddMember { method, receiver, member } => {
                    structure.assert_set_member(
                        methods[method as usize], objects[receiver as usize], &[], objects[member as usize]);
                    set_model.entry((method, receiver)).or_default().insert(member);
                }
                Op::RemoveMember { method, receiver, member } => {
                    let removed = structure.retract_set_member(
                        methods[method as usize], objects[receiver as usize], &[], objects[member as usize]);
                    let expected = set_model.get_mut(&(method, receiver)).map(|s| s.remove(&member)).unwrap_or(false);
                    prop_assert_eq!(removed, expected);
                }
            }
        }

        // Final states agree on every (method, receiver) application.
        for m in 0u8..3 {
            for r in 0u8..5 {
                let stored = structure.apply_scalar(methods[m as usize], objects[r as usize], &[]);
                let expected = scalar_model.get(&(m, r)).map(|&v| objects[v as usize]);
                prop_assert_eq!(stored, expected);
                let stored_members: BTreeSet<Oid> = structure
                    .apply_set(methods[m as usize], objects[r as usize], &[])
                    .map(|run| run.iter().copied().collect())
                    .unwrap_or_default();
                let expected_members: BTreeSet<Oid> = set_model
                    .get(&(m, r))
                    .map(|s| s.iter().map(|&v| objects[v as usize]).collect())
                    .unwrap_or_default();
                prop_assert_eq!(stored_members, expected_members);
            }
        }
        // Counters never go negative / stale.
        prop_assert_eq!(structure.facts().num_scalar(), scalar_model.len());
        let expected_members: usize = set_model.values().map(BTreeSet::len).sum();
        prop_assert_eq!(structure.facts().num_set_members(), expected_members);
    }
}

// ---------------------------------------------------------------------------
// 2. Object-SQL path expressions: print -> parse is the identity, and the
//    compiled PathLog reference is always well-formed.
// ---------------------------------------------------------------------------

fn sql_attr() -> impl Strategy<Value = String> {
    prop::sample::select(vec![
        "vehicles",
        "color",
        "boss",
        "city",
        "kids",
        "producedBy",
        "president",
    ])
    .prop_map(str::to_string)
}

fn sql_base() -> impl Strategy<Value = String> {
    prop::sample::select(vec!["mary", "peter", "employee", "X", "Y"]).prop_map(str::to_string)
}

#[derive(Debug, Clone)]
enum SqlStep {
    Scalar(String),
    Set(String),
    Selector(String),
    Filter(String, i64),
}

fn sql_step() -> impl Strategy<Value = SqlStep> {
    prop_oneof![
        sql_attr().prop_map(SqlStep::Scalar),
        sql_attr().prop_map(SqlStep::Set),
        prop::sample::select(vec!["Z", "W", "4"]).prop_map(|s| SqlStep::Selector(s.to_string())),
        (sql_attr(), 0i64..100).prop_map(|(a, v)| SqlStep::Filter(a, v)),
    ]
}

fn render_sql_expr(base: &str, steps: &[SqlStep]) -> String {
    let mut text = base.to_string();
    for step in steps {
        match step {
            SqlStep::Scalar(attr) => text.push_str(&format!(".{attr}")),
            SqlStep::Set(attr) => text.push_str(&format!("..{attr}")),
            SqlStep::Selector(sel) => text.push_str(&format!("[{sel}]")),
            SqlStep::Filter(attr, value) => text.push_str(&format!("[{attr} -> {value}]")),
        }
    }
    text
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    #[test]
    fn sql_path_expressions_round_trip_and_compile_well_formed(
        base in sql_base(),
        steps in prop::collection::vec(sql_step(), 0..6),
    ) {
        let text = render_sql_expr(&base, &steps);
        let parsed = sqlfront::parse_expression(&text).expect("generated expression parses");
        let printed = parsed.to_string();
        let reparsed = sqlfront::parse_expression(&printed).expect("printed expression parses");
        prop_assert_eq!(&parsed, &reparsed, "print -> parse is the identity for `{}`", printed);

        // Compilation always yields a well-formed PathLog reference.
        let catalog = Catalog::with_set_attrs(["vehicles", "kids"]);
        let mut compiler = sqlfront::Compiler::new(&catalog);
        let term = compiler.term(&parsed).expect("expression compiles");
        prop_assert!(pathlog::core::wellformed::is_well_formed(&term), "`{}` compiled to an ill-formed reference", text);
    }
}

// ---------------------------------------------------------------------------
// 3. F-logic translation: one flat atom per navigation step, and equivalence
//    with the direct semantics on chain references over a known structure.
// ---------------------------------------------------------------------------

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    #[test]
    fn translation_produces_one_atom_per_step(
        scalar_steps in 0usize..5,
        filters in 0usize..4,
        set_steps in 0usize..3,
    ) {
        let mut term = Term::name("mary");
        for i in 0..scalar_steps {
            term = term.scalar(format!("s{i}").as_str());
        }
        for i in 0..set_steps {
            term = term.set(format!("m{i}").as_str());
        }
        for i in 0..filters {
            term = term.filter(pathlog::core::term::Filter::scalar(format!("f{i}").as_str(), Term::int(i as i64)));
        }
        let translation = Translator::new().reference(&term).expect("chain references translate");
        prop_assert_eq!(translation.conjuncts(), scalar_steps + set_steps + filters);
    }

    #[test]
    fn direct_and_translated_agree_on_random_genealogies(
        depth in 1usize..4,
        fanout in 1usize..4,
        seed in 0u64..500,
    ) {
        let structure = pathlog::datagen::genealogy_structure(
            &pathlog::datagen::GenealogyParams { roots: 1, depth, fanout, seed });
        let program = parse_program("?- X[kids ->> {Y}].").unwrap();

        let direct = Engine::new().query(&structure, &program.queries[0]).unwrap().len();
        let (flat, _) = Translator::new().program(&program).unwrap();
        let translated = pathlog::flogic::FlatEngine::new().query(&structure, &flat.queries[0]).unwrap().len();
        prop_assert_eq!(direct, translated);
    }
}

// ---------------------------------------------------------------------------
// 4. Naive vs semi-naive evaluation: the engine's per-literal delta joins
//    (`delta_driven: true`) must reach exactly the structure that naive
//    re-evaluation reaches, on randomized recursive programs over random
//    graphs (trees from the genealogy generator plus arbitrary — possibly
//    cyclic — edge sets).
// ---------------------------------------------------------------------------

/// Optional extra rules layered over the two closure rules, exercising
/// is-a heads, virtual-object creation and a second stratum.
const EXTRA_RULES: &[&str] = &[
    "X : parent <- X[kids ->> {Y}].",
    "X[anc ->> {Y}] <- Y[desc ->> {X}].",
    "X.summary[descendants ->> X..desc] <- X[kids ->> {Y}].",
    "X : deepFamily <- X..desc..desc[self -> Y].",
];

fn run_both_modes(structure: &Structure, program_text: &str) -> (Structure, Structure, EvalStats, EvalStats) {
    let program = parse_program(program_text).expect("generated program parses");
    let mut semi = structure.clone();
    let semi_stats = Engine::with_options(EvalOptions {
        delta_driven: true,
        ..EvalOptions::default()
    })
    .load_program(&mut semi, &program)
    .expect("semi-naive evaluation succeeds");
    let mut naive = structure.clone();
    let naive_stats = Engine::with_options(EvalOptions {
        delta_driven: false,
        ..EvalOptions::default()
    })
    .load_program(&mut naive, &program)
    .expect("naive evaluation succeeds");
    (semi, naive, semi_stats, naive_stats)
}

/// Compare everything that identifies the least fixpoint: structure-level
/// counts plus the answers of the closure query (named objects get identical
/// oids in both runs, so binding sets are comparable exactly).  Panics on
/// mismatch, which the proptest harness reports as a failing case.
fn assert_equivalent(semi: &Structure, naive: &Structure, query: &str) {
    let s1 = semi.stats();
    let s2 = naive.stats();
    assert_eq!(s1.objects, s2.objects, "universe sizes differ");
    assert_eq!(s1.virtuals, s2.virtuals, "virtual-object counts differ");
    assert_eq!(s1.scalar_facts, s2.scalar_facts, "scalar fact counts differ");
    assert_eq!(s1.set_members, s2.set_members, "set member counts differ");
    assert_eq!(s1.isa_edges, s2.isa_edges, "isa edge counts differ");

    let q = parse_program(query).expect("query parses");
    let answers = |s: &Structure| -> BTreeSet<Vec<(String, u32)>> {
        Engine::new()
            .query(s, &q.queries[0])
            .expect("query evaluates")
            .into_iter()
            .map(|b| {
                let mut key: Vec<(String, u32)> = b.iter().map(|(v, o)| (v.name().to_string(), o.0)).collect();
                key.sort();
                key
            })
            .collect()
    };
    assert_eq!(answers(semi), answers(naive), "query answers differ");
}

/// Run the same program sequentially and with `workers` parallel delta
/// workers (both semi-naive), returning both structures and stats.
fn run_parallel_modes(
    structure: &Structure,
    program_text: &str,
    workers: usize,
) -> (Structure, Structure, EvalStats, EvalStats) {
    let program = parse_program(program_text).expect("generated program parses");
    let mut seq = structure.clone();
    let seq_stats = Engine::with_options(EvalOptions {
        mode: EvalMode::Sequential,
        ..EvalOptions::default()
    })
    .load_program(&mut seq, &program)
    .expect("sequential evaluation succeeds");
    let mut par = structure.clone();
    let par_stats = Engine::with_options(EvalOptions {
        mode: EvalMode::Parallel { workers },
        ..EvalOptions::default()
    })
    .load_program(&mut par, &program)
    .expect("parallel evaluation succeeds");
    (seq, par, seq_stats, par_stats)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn naive_and_semi_naive_agree_on_random_genealogies(
        depth in 1usize..5,
        fanout in 1usize..4,
        seed in 0u64..300,
        extras in prop::collection::vec(0usize..4, 0..3),
    ) {
        let structure = pathlog::datagen::genealogy_structure(
            &pathlog::datagen::GenealogyParams { roots: 1, depth, fanout, seed });
        let mut program = String::from(
            "X[desc ->> {Y}] <- X[kids ->> {Y}].\n\
             X[desc ->> {Y}] <- X..desc[kids ->> {Y}].\n");
        let mut chosen: Vec<usize> = extras;
        chosen.sort();
        chosen.dedup();
        for i in chosen {
            program.push_str(EXTRA_RULES[i]);
            program.push('\n');
        }
        let (semi, naive, semi_stats, naive_stats) = run_both_modes(&structure, &program);
        prop_assert_eq!(semi_stats.derived(), naive_stats.derived());
        assert_equivalent(&semi, &naive, "?- X[desc ->> {Y}].");
    }

    #[test]
    fn parallel_and_sequential_agree_on_random_trees(
        depth in 1usize..6,
        fanout in 1usize..4,
        seed in 0u64..300,
    ) {
        let structure = pathlog::datagen::genealogy_structure(
            &pathlog::datagen::GenealogyParams { roots: 1, depth, fanout, seed });
        let program = "X[desc ->> {Y}] <- X[kids ->> {Y}].\n\
                       X[desc ->> {Y}] <- X..desc[kids ->> {Y}].\n\
                       X.summary[descendants ->> X..desc] <- X[kids ->> {Y}].\n";
        let (seq, par, seq_stats, par_stats) = run_parallel_modes(&structure, program, 4);
        prop_assert_eq!(seq_stats, par_stats, "EvalStats must be identical");
        prop_assert_eq!(seq.canonical_dump(), par.canonical_dump(), "models must be byte-identical");
        // The totals survive aggregation across the two runs too.
        let mut total = seq_stats;
        total.merge(&par_stats);
        prop_assert_eq!(total.derived(), seq_stats.derived() * 2);
    }

    #[test]
    fn parallel_and_sequential_agree_on_random_graphs(
        edges in prop::collection::vec((0u8..12, 0u8..12), 1..40),
    ) {
        // Cyclic graphs: convergence takes a different number of iterations
        // per strongly connected component, so the per-rule delta windows
        // that parallel mode shards are exercised on non-tree shapes.
        let mut structure = Structure::new();
        let kids = structure.atom("kids");
        let nodes: Vec<Oid> = (0..12).map(|i| structure.atom(&format!("n{i}"))).collect();
        for &(a, b) in &edges {
            structure.assert_set_member(kids, nodes[a as usize], &[], nodes[b as usize]);
        }
        let program = "X[desc ->> {Y}] <- X[kids ->> {Y}].\n\
                       X[desc ->> {Y}] <- X..desc[kids ->> {Y}].\n\
                       X : parent <- X[kids ->> {Y}].\n";
        let (seq, par, seq_stats, par_stats) = run_parallel_modes(&structure, program, 4);
        prop_assert_eq!(seq_stats, par_stats, "EvalStats must be identical");
        prop_assert_eq!(seq.canonical_dump(), par.canonical_dump(), "models must be byte-identical");
        assert_equivalent(&seq, &par, "?- X[desc ->> {Y}].");
    }

    #[test]
    fn reused_pooled_engine_matches_fresh_sequential_engines_on_random_trees(
        depth in 1usize..5,
        fanout in 1usize..4,
        seed in 0u64..300,
    ) {
        // One long-lived engine whose persistent worker pool is reused by
        // every `load_program` call; each run must be canonical_dump()-
        // identical to a throwaway sequential engine on the same input.
        let reused = Engine::with_options(EvalOptions {
            mode: EvalMode::Parallel { workers: 4 },
            ..EvalOptions::default()
        });
        let structure = pathlog::datagen::genealogy_structure(
            &pathlog::datagen::GenealogyParams { roots: 1, depth, fanout, seed });
        let program = parse_program(
            "X[desc ->> {Y}] <- X[kids ->> {Y}].\n\
             X[desc ->> {Y}] <- X..desc[kids ->> {Y}].\n\
             X.summary[descendants ->> X..desc] <- X[kids ->> {Y}].\n").unwrap();
        for round in 0..3 {
            let mut pooled = structure.clone();
            let pooled_stats = reused.load_program(&mut pooled, &program).expect("pooled run succeeds");
            let mut fresh = structure.clone();
            let fresh_stats = Engine::new().load_program(&mut fresh, &program).expect("sequential run succeeds");
            prop_assert_eq!(pooled_stats, fresh_stats, "EvalStats must match in round {}", round);
            prop_assert_eq!(pooled.canonical_dump(), fresh.canonical_dump(),
                "models must be byte-identical in round {}", round);
        }
        // Reuse, not respawn: the engine never spawned more than its pool.
        prop_assert!(reused.threads_spawned() <= 4,
            "pool must be reused across runs (spawned {})", reused.threads_spawned());
    }

    #[test]
    fn reused_pooled_engine_matches_fresh_sequential_engines_on_random_graphs(
        edges in prop::collection::vec((0u8..10, 0u8..10), 1..30),
    ) {
        let reused = Engine::with_options(EvalOptions {
            mode: EvalMode::Parallel { workers: 4 },
            ..EvalOptions::default()
        });
        let mut structure = Structure::new();
        let kids = structure.atom("kids");
        let nodes: Vec<Oid> = (0..10).map(|i| structure.atom(&format!("n{i}"))).collect();
        for &(a, b) in &edges {
            structure.assert_set_member(kids, nodes[a as usize], &[], nodes[b as usize]);
        }
        let program = parse_program(
            "X[desc ->> {Y}] <- X[kids ->> {Y}].\n\
             X[desc ->> {Y}] <- X..desc[kids ->> {Y}].\n\
             X : parent <- X[kids ->> {Y}].\n").unwrap();
        for round in 0..2 {
            let mut pooled = structure.clone();
            reused.load_program(&mut pooled, &program).expect("pooled run succeeds");
            let mut fresh = structure.clone();
            Engine::new().load_program(&mut fresh, &program).expect("sequential run succeeds");
            prop_assert_eq!(pooled.canonical_dump(), fresh.canonical_dump(),
                "models must be byte-identical in round {}", round);
        }
        prop_assert!(reused.threads_spawned() <= 4);
    }

    // -----------------------------------------------------------------------
    // 5. Reactive evaluation through the executor: pooled condition batches
    //    must be bit-identical to sequential runs — production recognise
    //    phases (with and without delta gating) on random trees, and
    //    active-store snapshot rounds on random (possibly cyclic) graphs
    //    with repeated mutations reusing one store's pool.
    // -----------------------------------------------------------------------

    #[test]
    fn pooled_production_matches_sequential_on_random_trees(
        depth in 1usize..4,
        fanout in 1usize..4,
        seed in 0u64..300,
        workers in prop::sample::select(vec![1usize, 2, 4, 8]),
    ) {
        let structure = pathlog::datagen::genealogy_structure(
            &pathlog::datagen::GenealogyParams { roots: 1, depth, fanout, seed });
        // The desc closure as production rules, plus a key-disjoint
        // classification phase (parents get marked once desc exists).
        let rules = parse_program(
            "X[desc ->> {Y}] <- X[kids ->> {Y}].\n\
             X[desc ->> {Y}] <- X..desc[kids ->> {Y}].\n\
             X : lineage <- X[desc ->> {Y}].\n").unwrap().rules;
        let run = |options: ProductionOptions| {
            let mut s = structure.clone();
            let mut engine = ProductionEngine::with_options(options);
            for rule in &rules {
                engine.add_rule(ProductionRule::new(
                    "r",
                    rule.body.clone(),
                    vec![Action::Assert(rule.head.clone())],
                ));
            }
            let (stats, trace) = engine.run_traced(&mut s).expect("production run reaches quiescence");
            (stats, trace, s.canonical_dump())
        };
        let base = ProductionOptions { max_cycles: 100_000, ..ProductionOptions::default() };
        let (seq_stats, seq_trace, seq_dump) = run(base);
        // Pooled ≡ sequential, bit for bit.
        let (par_stats, par_trace, par_dump) = run(ProductionOptions {
            mode: EvalMode::Parallel { workers },
            ..base
        });
        prop_assert_eq!(par_stats, seq_stats, "stats must match at {} workers", workers);
        prop_assert_eq!(par_trace, seq_trace, "firing order must match at {} workers", workers);
        prop_assert_eq!(par_dump, seq_dump.clone(), "models must match at {} workers", workers);
        // Delta gating is an optimisation, not a semantics change.
        let (full_stats, full_trace, full_dump) = run(ProductionOptions { delta_gated: false, ..base });
        prop_assert_eq!(full_stats.firings, seq_stats.firings);
        prop_assert_eq!(full_trace, seq_trace);
        prop_assert_eq!(full_dump, seq_dump);
        prop_assert!(full_stats.condition_solves >= seq_stats.condition_solves,
            "gating may only reduce solves ({} vs {})", seq_stats.condition_solves, full_stats.condition_solves);
    }

    #[test]
    fn pooled_active_rounds_match_sequential_on_random_graphs(
        edges in prop::collection::vec((0u8..8, 0u8..8), 1..25),
        workers in prop::sample::select(vec![1usize, 2, 4, 8]),
    ) {
        // One store per mode; every edge insertion is an external mutation
        // reusing the same store (and, pooled, the same worker pool).  The
        // trigger fan-out: two rules on the same event plus a cascaded rule.
        let run = |mode: EvalMode| {
            let mut s = Structure::new();
            let person = s.atom("person");
            let nodes: Vec<Oid> = (0..8).map(|i| s.atom(&format!("n{i}"))).collect();
            for &n in &nodes {
                s.add_isa(n, person);
            }
            let mut store = ActiveStore::with_options(s, ActiveOptions {
                schedule: CascadeSchedule::Rounds,
                mode,
                ..ActiveOptions::default()
            });
            store.add_rule(EcaRule::new(
                "track-member",
                Event::SetMemberAdded(Name::atom("kids")),
                vec![Literal::pos(Term::var("Member").isa("person"))],
                vec![EcaAction::AddIsA {
                    object: Term::var("Member"),
                    class: Name::atom("child"),
                }],
            ));
            store.add_rule(EcaRule::new(
                "mirror",
                Event::SetMemberAdded(Name::atom("kids")),
                vec![],
                vec![EcaAction::AddSetMember {
                    receiver: Term::var("Member"),
                    method: Name::atom("parents"),
                    member: Term::var("Receiver"),
                }],
            ));
            store.add_rule(EcaRule::new(
                "on-parenthood",
                Event::SetMemberAdded(Name::atom("parents")),
                vec![],
                vec![EcaAction::AddIsA {
                    object: Term::var("Member"),
                    class: Name::atom("parent"),
                }],
            ));
            let kids = store.oid("kids");
            let mut total = ActiveStats::default();
            for &(a, b) in &edges {
                let (from, to) = (store.oid(&format!("n{a}")), store.oid(&format!("n{b}")));
                total.merge(&store.add_set_member(kids, from, to).expect("triggers run"));
            }
            (total, store.into_structure().canonical_dump())
        };
        let (seq_stats, seq_dump) = run(EvalMode::Sequential);
        let (par_stats, par_dump) = run(EvalMode::Parallel { workers });
        prop_assert_eq!(par_stats, seq_stats, "stats must match at {} workers", workers);
        prop_assert_eq!(par_dump, seq_dump, "models must match at {} workers", workers);
    }

    #[test]
    fn naive_and_semi_naive_agree_on_random_graphs(
        edges in prop::collection::vec((0u8..12, 0u8..12), 1..40),
    ) {
        // Arbitrary directed graphs — self-loops, cycles and shared
        // sub-structures included — exercising convergence paths the tree
        // generator cannot produce.  The EDB `parent isa creature` edge
        // makes every derived `X : parent` also reach the superclass, so a
        // rule reading only `creature` (ordered first, before anything is
        // derived) checks the closure-growth wake-up.
        let mut structure = Structure::new();
        let kids = structure.atom("kids");
        let (parent, creature) = (structure.atom("parent"), structure.atom("creature"));
        structure.add_isa(parent, creature);
        let nodes: Vec<Oid> = (0..12).map(|i| structure.atom(&format!("n{i}"))).collect();
        for &(a, b) in &edges {
            structure.assert_set_member(kids, nodes[a as usize], &[], nodes[b as usize]);
        }
        let program =
            "X : found <- X : creature.\n\
             X[desc ->> {Y}] <- X[kids ->> {Y}].\n\
             X[desc ->> {Y}] <- X..desc[kids ->> {Y}].\n\
             X : parent <- X[kids ->> {Y}].\n";
        let (semi, naive, _, _) = run_both_modes(&structure, program);
        assert_equivalent(&semi, &naive, "?- X[desc ->> {Y}].");
        assert_equivalent(&semi, &naive, "?- X : found.");
    }
}
