//! Property-based tests for the extension layers added around the core
//! reproduction: retraction in the fact store, the object-SQL frontend, and
//! the F-logic translation.

use std::collections::{BTreeMap, BTreeSet};

use proptest::prelude::*;

use pathlog::core::structure::{Oid, Structure};
use pathlog::core::term::Term;
use pathlog::flogic::Translator;
use pathlog::prelude::*;
use pathlog::sqlfront;

// ---------------------------------------------------------------------------
// 1. Retraction: the fact store behaves like a map / multimap model under any
//    interleaving of asserts and retracts (this exercises the swap-remove
//    index maintenance added for the reactive layer).
// ---------------------------------------------------------------------------

#[derive(Debug, Clone)]
enum Op {
    AssertScalar { method: u8, receiver: u8, value: u8 },
    RetractScalar { method: u8, receiver: u8 },
    AddMember { method: u8, receiver: u8, member: u8 },
    RemoveMember { method: u8, receiver: u8, member: u8 },
}

fn op_strategy() -> impl Strategy<Value = Op> {
    let m = 0u8..3;
    let o = 0u8..5;
    prop_oneof![
        (m.clone(), o.clone(), o.clone()).prop_map(|(method, receiver, value)| Op::AssertScalar {
            method,
            receiver,
            value
        }),
        (m.clone(), o.clone()).prop_map(|(method, receiver)| Op::RetractScalar { method, receiver }),
        (m.clone(), o.clone(), o.clone()).prop_map(|(method, receiver, member)| Op::AddMember {
            method,
            receiver,
            member
        }),
        (m, o.clone(), o).prop_map(|(method, receiver, member)| Op::RemoveMember {
            method,
            receiver,
            member
        }),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn fact_store_with_retraction_matches_a_map_model(ops in prop::collection::vec(op_strategy(), 0..80)) {
        let mut structure = Structure::new();
        let methods: Vec<Oid> = (0..3).map(|i| structure.atom(&format!("m{i}"))).collect();
        let objects: Vec<Oid> = (0..5).map(|i| structure.atom(&format!("o{i}"))).collect();

        let mut scalar_model: BTreeMap<(u8, u8), u8> = BTreeMap::new();
        let mut set_model: BTreeMap<(u8, u8), BTreeSet<u8>> = BTreeMap::new();

        for op in &ops {
            match *op {
                Op::AssertScalar { method, receiver, value } => {
                    let outcome = structure.assert_scalar(
                        methods[method as usize], objects[receiver as usize], &[], objects[value as usize]);
                    match scalar_model.get(&(method, receiver)) {
                        Some(&existing) if existing != value => prop_assert!(outcome.is_err(),
                            "conflicting scalar assert must be rejected"),
                        _ => {
                            prop_assert!(outcome.is_ok());
                            scalar_model.insert((method, receiver), value);
                        }
                    }
                }
                Op::RetractScalar { method, receiver } => {
                    let removed = structure.retract_scalar(methods[method as usize], objects[receiver as usize], &[]);
                    let expected = scalar_model.remove(&(method, receiver));
                    prop_assert_eq!(removed, expected.map(|v| objects[v as usize]));
                }
                Op::AddMember { method, receiver, member } => {
                    structure.assert_set_member(
                        methods[method as usize], objects[receiver as usize], &[], objects[member as usize]);
                    set_model.entry((method, receiver)).or_default().insert(member);
                }
                Op::RemoveMember { method, receiver, member } => {
                    let removed = structure.retract_set_member(
                        methods[method as usize], objects[receiver as usize], &[], objects[member as usize]);
                    let expected = set_model.get_mut(&(method, receiver)).map(|s| s.remove(&member)).unwrap_or(false);
                    prop_assert_eq!(removed, expected);
                }
            }
        }

        // Final states agree on every (method, receiver) application.
        for m in 0u8..3 {
            for r in 0u8..5 {
                let stored = structure.apply_scalar(methods[m as usize], objects[r as usize], &[]);
                let expected = scalar_model.get(&(m, r)).map(|&v| objects[v as usize]);
                prop_assert_eq!(stored, expected);
                let stored_members: BTreeSet<Oid> = structure
                    .apply_set(methods[m as usize], objects[r as usize], &[])
                    .cloned()
                    .unwrap_or_default();
                let expected_members: BTreeSet<Oid> = set_model
                    .get(&(m, r))
                    .map(|s| s.iter().map(|&v| objects[v as usize]).collect())
                    .unwrap_or_default();
                prop_assert_eq!(stored_members, expected_members);
            }
        }
        // Counters never go negative / stale.
        prop_assert_eq!(structure.facts().num_scalar(), scalar_model.len());
        let expected_members: usize = set_model.values().map(BTreeSet::len).sum();
        prop_assert_eq!(structure.facts().num_set_members(), expected_members);
    }
}

// ---------------------------------------------------------------------------
// 2. Object-SQL path expressions: print -> parse is the identity, and the
//    compiled PathLog reference is always well-formed.
// ---------------------------------------------------------------------------

fn sql_attr() -> impl Strategy<Value = String> {
    prop::sample::select(vec![
        "vehicles",
        "color",
        "boss",
        "city",
        "kids",
        "producedBy",
        "president",
    ])
    .prop_map(str::to_string)
}

fn sql_base() -> impl Strategy<Value = String> {
    prop::sample::select(vec!["mary", "peter", "employee", "X", "Y"]).prop_map(str::to_string)
}

#[derive(Debug, Clone)]
enum SqlStep {
    Scalar(String),
    Set(String),
    Selector(String),
    Filter(String, i64),
}

fn sql_step() -> impl Strategy<Value = SqlStep> {
    prop_oneof![
        sql_attr().prop_map(SqlStep::Scalar),
        sql_attr().prop_map(SqlStep::Set),
        prop::sample::select(vec!["Z", "W", "4"]).prop_map(|s| SqlStep::Selector(s.to_string())),
        (sql_attr(), 0i64..100).prop_map(|(a, v)| SqlStep::Filter(a, v)),
    ]
}

fn render_sql_expr(base: &str, steps: &[SqlStep]) -> String {
    let mut text = base.to_string();
    for step in steps {
        match step {
            SqlStep::Scalar(attr) => text.push_str(&format!(".{attr}")),
            SqlStep::Set(attr) => text.push_str(&format!("..{attr}")),
            SqlStep::Selector(sel) => text.push_str(&format!("[{sel}]")),
            SqlStep::Filter(attr, value) => text.push_str(&format!("[{attr} -> {value}]")),
        }
    }
    text
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    #[test]
    fn sql_path_expressions_round_trip_and_compile_well_formed(
        base in sql_base(),
        steps in prop::collection::vec(sql_step(), 0..6),
    ) {
        let text = render_sql_expr(&base, &steps);
        let parsed = sqlfront::parse_expression(&text).expect("generated expression parses");
        let printed = parsed.to_string();
        let reparsed = sqlfront::parse_expression(&printed).expect("printed expression parses");
        prop_assert_eq!(&parsed, &reparsed, "print -> parse is the identity for `{}`", printed);

        // Compilation always yields a well-formed PathLog reference.
        let catalog = Catalog::with_set_attrs(["vehicles", "kids"]);
        let mut compiler = sqlfront::Compiler::new(&catalog);
        let term = compiler.term(&parsed).expect("expression compiles");
        prop_assert!(pathlog::core::wellformed::is_well_formed(&term), "`{}` compiled to an ill-formed reference", text);
    }
}

// ---------------------------------------------------------------------------
// 3. F-logic translation: one flat atom per navigation step, and equivalence
//    with the direct semantics on chain references over a known structure.
// ---------------------------------------------------------------------------

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    #[test]
    fn translation_produces_one_atom_per_step(
        scalar_steps in 0usize..5,
        filters in 0usize..4,
        set_steps in 0usize..3,
    ) {
        let mut term = Term::name("mary");
        for i in 0..scalar_steps {
            term = term.scalar(format!("s{i}").as_str());
        }
        for i in 0..set_steps {
            term = term.set(format!("m{i}").as_str());
        }
        for i in 0..filters {
            term = term.filter(pathlog::core::term::Filter::scalar(format!("f{i}").as_str(), Term::int(i as i64)));
        }
        let translation = Translator::new().reference(&term).expect("chain references translate");
        prop_assert_eq!(translation.conjuncts(), scalar_steps + set_steps + filters);
    }

    #[test]
    fn direct_and_translated_agree_on_random_genealogies(
        depth in 1usize..4,
        fanout in 1usize..4,
        seed in 0u64..500,
    ) {
        let structure = pathlog::datagen::genealogy_structure(
            &pathlog::datagen::GenealogyParams { roots: 1, depth, fanout, seed });
        let program = parse_program("?- X[kids ->> {Y}].").unwrap();

        let direct = Engine::new().query(&structure, &program.queries[0]).unwrap().len();
        let (flat, _) = Translator::new().program(&program).unwrap();
        let translated = pathlog::flogic::FlatEngine::new().query(&structure, &flat.queries[0]).unwrap().len();
        prop_assert_eq!(direct, translated);
    }
}
