//! Property-based tests for the cost-based join planner (PR 9): with the
//! planner on, delta passes run through compiled slot-frame rule bodies in
//! planner-chosen literal order — and the result must be *bit-identical*
//! to the interpreted written-order path ([`Planner::Off`]), on random
//! trees and random (possibly cyclic) graphs, sequentially and at 1/2/4/8
//! workers on both the pooled and the scoped executor.

use proptest::prelude::*;

use pathlog::core::structure::{Oid, Structure};
use pathlog::prelude::*;

/// The recursive closure program both planner arms evaluate: a 2-literal
/// recursive rule, a second stratum over the closure, a 3-literal join with
/// a deliberately bad written order (the big `desc` relation first), and a
/// negation.
const PROGRAM: &str = "X[desc ->> {Y}] <- X[kids ->> {Y}].\n\
                       X[desc ->> {Y}] <- X..desc[kids ->> {Y}].\n\
                       X : parent <- X[kids ->> {Y}].\n\
                       X[gk ->> {Z}] <- X[desc ->> {Z}], Z[kids ->> {W}], Z : parent.\n\
                       X : grandparent <- X[gk ->> {Z}].\n\
                       X : onlyparent <- X : parent, not X : grandparent.\n";

/// Load `PROGRAM` with the given options; returns the model dump and stats.
fn run(structure: &Structure, options: EvalOptions) -> (String, EvalStats) {
    let program = parse_program(PROGRAM).expect("program parses");
    let mut s = structure.clone();
    let stats = Engine::with_options(options)
        .load_program(&mut s, &program)
        .expect("evaluation succeeds");
    (s.canonical_dump(), stats)
}

/// Zero the planner-only counters so planned and unplanned stats become
/// comparable: everything else (firings, derived facts, iterations, virtual
/// objects, delta/full solves) must be identical across the two arms.
fn without_planner_counters(mut stats: EvalStats) -> EvalStats {
    stats.plans_compiled = 0;
    stats.replans = 0;
    stats.seed_flips = 0;
    stats
}

/// Assert `CostBased ≡ Off` on `structure`: the sequential unplanned run is
/// the reference; every planned run — sequential and 1/2/4/8 workers on
/// both executors — must reproduce its model byte for byte and its
/// non-planner stats exactly, and the planner counters themselves must not
/// depend on mode, executor or worker count.
fn assert_planner_transparent(structure: &Structure) {
    let (ref_dump, ref_stats) = run(
        structure,
        EvalOptions {
            planner: Planner::Off,
            ..EvalOptions::default()
        },
    );
    assert_eq!(ref_stats.plans_compiled, 0, "Planner::Off must compile nothing");
    assert_eq!(ref_stats.seed_flips, 0);

    let mut planned_counters: Option<(usize, usize, usize)> = None;
    let mut check = |options: EvalOptions, what: &str| {
        let (dump, stats) = run(structure, options);
        assert_eq!(
            dump, ref_dump,
            "{what}: model must be byte-identical to unplanned sequential"
        );
        assert_eq!(
            without_planner_counters(stats),
            without_planner_counters(ref_stats),
            "{what}: non-planner stats must be identical to unplanned sequential"
        );
        let counters = (stats.plans_compiled, stats.replans, stats.seed_flips);
        match planned_counters {
            None => {
                assert!(
                    stats.plans_compiled > 0,
                    "{what}: the planner must compile this program"
                );
                planned_counters = Some(counters);
            }
            Some(expected) => assert_eq!(
                counters, expected,
                "{what}: planner counters must not depend on mode, executor or worker count"
            ),
        }
    };

    check(
        EvalOptions {
            planner: Planner::CostBased,
            ..EvalOptions::default()
        },
        "planned sequential",
    );
    for workers in [1usize, 2, 4, 8] {
        for executor in [ExecutorKind::Pooled, ExecutorKind::Scoped] {
            check(
                EvalOptions {
                    planner: Planner::CostBased,
                    mode: EvalMode::Parallel { workers },
                    executor,
                    ..EvalOptions::default()
                },
                &format!("planned {executor:?} x{workers}"),
            );
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn planned_equals_unplanned_on_random_trees(
        depth in 1usize..5,
        fanout in 1usize..4,
        seed in 0u64..300,
    ) {
        let structure = pathlog::datagen::genealogy_structure(
            &pathlog::datagen::GenealogyParams { roots: 1, depth, fanout, seed });
        assert_planner_transparent(&structure);
    }

    #[test]
    fn planned_equals_unplanned_on_random_graphs(
        edges in prop::collection::vec((0u8..12, 0u8..12), 1..40),
    ) {
        // Cyclic graphs: convergence takes a different number of iterations
        // per strongly connected component, exercising re-planning and the
        // seed-flip decision on non-tree shapes.
        let mut structure = Structure::new();
        let kids = structure.atom("kids");
        let nodes: Vec<Oid> = (0..12).map(|i| structure.atom(&format!("n{i}"))).collect();
        for &(a, b) in &edges {
            structure.assert_set_member(kids, nodes[a as usize], &[], nodes[b as usize]);
        }
        assert_planner_transparent(&structure);
    }
}
