//! The object-SQL frontend against the native PathLog formulations.
//!
//! Sections 1 and 2 of the paper present the same questions in O2SQL, XSQL
//! and PathLog.  These tests execute the SQL texts through
//! `pathlog-sqlfront` (which compiles them to PathLog) and the PathLog texts
//! through the parser, and check that both roads give exactly the same
//! answers on the synthetic company workload.

use std::collections::BTreeSet;

use pathlog::prelude::*;
use pathlog::sqlfront::{self, StatementResult};

fn company() -> (Structure, Catalog) {
    let structure = pathlog::datagen::company::generate_structure(&CompanyParams::scaled(40));
    let catalog = Catalog::from_schema(&Schema::company());
    (structure, catalog)
}

/// Evaluate a PathLog reference and collect the display names of the objects
/// bound to `var`.
fn pathlog_answers(structure: &Structure, reference: &str, var: &str) -> BTreeSet<String> {
    let term = parse_term(reference).expect("PathLog reference parses");
    Engine::new()
        .query_term(structure, &term)
        .expect("PathLog query evaluates")
        .into_iter()
        .filter_map(|a| {
            a.bindings
                .get(&Var::new(var))
                .map(|o| structure.display_name(o).into_owned())
        })
        .collect()
}

/// Execute an object-SQL query and collect the values of its single column.
fn sql_answers(structure: &Structure, catalog: &Catalog, sql: &str) -> BTreeSet<String> {
    let compiled = sqlfront::compile_query(sql, catalog).expect("SQL compiles");
    let (_, rows) = sqlfront::execute_query(structure, &compiled).expect("SQL executes");
    rows.into_iter().map(|mut r| r.remove(0)).collect()
}

#[test]
fn query_1_1_o2sql_matches_the_pathlog_reference() {
    let (structure, catalog) = company();
    let sql = sql_answers(
        &structure,
        &catalog,
        "SELECT Y.color FROM X IN employee FROM Y IN X.vehicles WHERE Y IN automobile",
    );
    let pathlog = pathlog_answers(&structure, "X : employee..vehicles : automobile.color[Z]", "Z");
    assert_eq!(sql, pathlog);
    assert!(!sql.is_empty());
}

#[test]
fn query_1_2_xsql_selectors_match_the_pathlog_reference() {
    let (structure, catalog) = company();
    let sql = sql_answers(
        &structure,
        &catalog,
        "SELECT Z FROM employee X, automobile Y WHERE X.vehicles[Y].color[Z]",
    );
    let pathlog = pathlog_answers(&structure, "X : employee..vehicles : automobile.color[Z]", "Z");
    assert_eq!(sql, pathlog);
}

#[test]
fn query_1_4_with_the_cylinder_conjunct_matches() {
    let (structure, catalog) = company();
    let sql = sql_answers(
        &structure,
        &catalog,
        "SELECT Z FROM employee X, automobile Y WHERE X.vehicles[Y].color[Z] AND Y.cylinders[4]",
    );
    let pathlog = pathlog_answers(
        &structure,
        "X : employee..vehicles : automobile[cylinders -> 4].color[Z]",
        "Z",
    );
    assert_eq!(sql, pathlog);
    assert!(!sql.is_empty());
}

#[test]
fn query_2_2_with_filters_matches_reference_2_1() {
    let (structure, catalog) = company();
    let sql = sql_answers(
        &structure,
        &catalog,
        "SELECT Z FROM employee X, automobile Y
         WHERE X[city -> newYork].vehicles[cylinders -> 4][Y].color[Z]",
    );
    let pathlog = pathlog_answers(
        &structure,
        "X : employee[city -> newYork]..vehicles : automobile[cylinders -> 4].color[Z]",
        "Z",
    );
    assert_eq!(sql, pathlog);
}

#[test]
fn the_manager_query_matches_the_single_pathlog_reference() {
    let (structure, catalog) = company();
    let sql = sql_answers(
        &structure,
        &catalog,
        "SELECT X FROM X IN manager FROM Y IN X.vehicles
         WHERE Y.color = red AND Y.producedBy.cityOf = detroit AND Y.producedBy.president = X",
    );
    let pathlog = pathlog_answers(
        &structure,
        "X : manager..vehicles[color -> red].producedBy[cityOf -> detroit; president -> X]",
        "X",
    );
    assert_eq!(sql, pathlog);
}

#[test]
fn view_6_3_defines_the_same_departments_as_rule_6_1_reports() {
    // The XSQL view (6.3) materialised through the SQL frontend must expose
    // the same worksFor information as querying employees directly.
    let (mut structure, catalog) = company();
    let results = sqlfront::execute(
        &mut structure,
        "CREATE VIEW employeeBoss SELECT worksFor = D FROM employee X OID FUNCTION OF X WHERE X.worksFor[D];
         SELECT D FROM X IN employee WHERE X.employeeBoss.worksFor = D;",
        &catalog,
    )
    .unwrap();
    let StatementResult::ViewDefined { virtual_objects, .. } = &results[0] else {
        panic!("expected a view")
    };
    let StatementResult::Rows { rows, .. } = &results[1] else {
        panic!("expected rows")
    };
    let via_view: BTreeSet<String> = rows.iter().map(|r| r[0].clone()).collect();
    let direct = pathlog_answers(&structure, "X : employee[worksFor -> D]", "D");
    assert_eq!(via_view, direct);
    // One view object per employee that has a department.
    let employees_with_dept = Engine::new()
        .query_term(&structure, &parse_term("X : employee[worksFor -> D]").unwrap())
        .unwrap()
        .into_iter()
        .filter_map(|a| a.bindings.get(&Var::new("X")))
        .collect::<BTreeSet<_>>()
        .len();
    assert_eq!(*virtual_objects, employees_with_dept);
}

#[test]
fn the_sql_frontend_produces_well_formed_pathlog() {
    // Every compiled query must pass the core well-formedness check
    // (Definition 3) — the frontend never fabricates ill-formed references.
    let (_, catalog) = company();
    let sql_texts = [
        "SELECT Y.color FROM X IN employee FROM Y IN X.vehicles WHERE Y IN automobile",
        "SELECT Z FROM employee X, automobile Y WHERE X.vehicles[Y].color[Z] AND Y.cylinders[4]",
        "SELECT X FROM X IN manager FROM Y IN X.vehicles WHERE Y.producedBy.president = X",
        "SELECT D FROM X IN employee WHERE X.worksFor[D]",
    ];
    for sql in sql_texts {
        let compiled = sqlfront::compile_query(sql, &catalog).unwrap();
        for literal in &compiled.query.body {
            pathlog::core::wellformed::check_well_formed(&literal.term)
                .unwrap_or_else(|e| panic!("{sql} compiled to an ill-formed reference: {e}"));
        }
    }
}

#[test]
fn compiled_sql_round_trips_through_the_pathlog_parser() {
    // The PathLog text the compiler reports is real concrete syntax: parsing
    // it back yields an equivalent query.
    let (structure, catalog) = company();
    let compiled = sqlfront::compile_query(
        "SELECT Z FROM employee X, automobile Y WHERE X.vehicles[Y].color[Z] AND Y.cylinders[4]",
        &catalog,
    )
    .unwrap();
    let reparsed = parse_query(&compiled.pathlog_text()).expect("compiled text parses as PathLog");
    let direct: BTreeSet<String> = Engine::new()
        .query(&structure, &compiled.query)
        .unwrap()
        .into_iter()
        .filter_map(|b| b.get(&Var::new("Z")).map(|o| structure.display_name(o).into_owned()))
        .collect();
    let roundtrip: BTreeSet<String> = Engine::new()
        .query(&structure, &reparsed)
        .unwrap()
        .into_iter()
        .filter_map(|b| b.get(&Var::new("Z")).map(|o| structure.display_name(o).into_owned()))
        .collect();
    assert_eq!(direct, roundtrip);
}
