//! Property-based tests for the columnar fact store and the factorized
//! answer representation (the "stop materializing product-shaped answer
//! sets" PR):
//!
//! 1. the columnar `Facts`/`Isa` backend agrees, line for line, with an
//!    independent row-oriented shadow model of `canonical_dump()` under any
//!    interleaving of asserts and retracts (random trees *and* cyclic isa
//!    graphs);
//! 2. `canonical_dump()` is invariant under the insertion order of the
//!    surviving facts — the per-`(method, receiver)` run grouping must not
//!    leak arrival order into the canonical form;
//! 3. the recursive `desc` closure is `canonical_dump()`-bit-identical to
//!    the sequential reference at 1/2/4/8 workers under **both** executors
//!    (persistent pool and scoped spawn-per-batch), with sharding forced at
//!    these tiny scales via `shard_min_entries`;
//! 4. factorized path answers enumerate bit-identically to the materialized
//!    tuples — same answers, same bindings, same order — and unsupported
//!    shapes fall back to materialization with identical results.

use std::collections::{BTreeMap, BTreeSet};

use proptest::prelude::*;

use pathlog::core::structure::{Oid, Structure};
use pathlog::prelude::*;

const NUM_METHODS: u8 = 3;
const NUM_OBJECTS: u8 = 6;

/// Intern the fixed method/object universe in a deterministic order so two
/// structures built from the same ops assign identical oids.
fn intern_universe(structure: &mut Structure) -> (Vec<Oid>, Vec<Oid>) {
    let methods = (0..NUM_METHODS).map(|i| structure.atom(&format!("m{i}"))).collect();
    let objects = (0..NUM_OBJECTS).map(|i| structure.atom(&format!("o{i}"))).collect();
    (methods, objects)
}

// ---------------------------------------------------------------------------
// 1 + 2. Columnar store vs a row-oriented shadow model of canonical_dump().
// ---------------------------------------------------------------------------

#[derive(Debug, Clone)]
enum Op {
    AssertScalar { method: u8, receiver: u8, value: u8 },
    RetractScalar { method: u8, receiver: u8 },
    AddMember { method: u8, receiver: u8, member: u8 },
    RemoveMember { method: u8, receiver: u8, member: u8 },
    AddIsa { sub: u8, sup: u8 },
}

fn op_strategy() -> impl Strategy<Value = Op> {
    let m = 0u8..NUM_METHODS;
    let o = 0u8..NUM_OBJECTS;
    prop_oneof![
        (m.clone(), o.clone(), o.clone()).prop_map(|(method, receiver, value)| Op::AssertScalar {
            method,
            receiver,
            value
        }),
        (m.clone(), o.clone()).prop_map(|(method, receiver)| Op::RetractScalar { method, receiver }),
        (m.clone(), o.clone(), o.clone()).prop_map(|(method, receiver, member)| Op::AddMember {
            method,
            receiver,
            member
        }),
        (m.clone(), o.clone(), o.clone()).prop_map(|(method, receiver, member)| Op::RemoveMember {
            method,
            receiver,
            member
        }),
        // Cycles and self-loops included: `sub` and `sup` range over the
        // same objects, so random sequences build cyclic isa graphs.
        (o.clone(), o).prop_map(|(sub, sup)| Op::AddIsa { sub, sup }),
    ]
}

/// Row-oriented shadow of the fact store: plain maps keyed by
/// `(method, receiver)`, exactly what the pre-columnar backend stored.
#[derive(Default)]
struct Shadow {
    scalars: BTreeMap<(u8, u8), u8>,
    sets: BTreeMap<(u8, u8), BTreeSet<u8>>,
    isa_direct: Vec<(u8, u8)>,
}

impl Shadow {
    fn apply(&mut self, structure: &mut Structure, methods: &[Oid], objects: &[Oid], op: &Op) {
        match *op {
            Op::AssertScalar {
                method,
                receiver,
                value,
            } => {
                let outcome = structure.assert_scalar(
                    methods[method as usize],
                    objects[receiver as usize],
                    &[],
                    objects[value as usize],
                );
                if outcome.is_ok() {
                    self.scalars.insert((method, receiver), value);
                }
            }
            Op::RetractScalar { method, receiver } => {
                structure.retract_scalar(methods[method as usize], objects[receiver as usize], &[]);
                self.scalars.remove(&(method, receiver));
            }
            Op::AddMember {
                method,
                receiver,
                member,
            } => {
                structure.assert_set_member(
                    methods[method as usize],
                    objects[receiver as usize],
                    &[],
                    objects[member as usize],
                );
                self.sets.entry((method, receiver)).or_default().insert(member);
            }
            Op::RemoveMember {
                method,
                receiver,
                member,
            } => {
                structure.retract_set_member(
                    methods[method as usize],
                    objects[receiver as usize],
                    &[],
                    objects[member as usize],
                );
                if let Some(s) = self.sets.get_mut(&(method, receiver)) {
                    s.remove(&member);
                }
            }
            Op::AddIsa { sub, sup } => {
                structure.add_isa(objects[sub as usize], objects[sup as usize]);
                self.isa_direct.push((sub, sup));
            }
        }
    }

    /// The transitive closure the store's isa log must contain: `(x, y)`
    /// for every distinct `y` reachable from `x` over one or more direct
    /// edges.  The store keeps its closure irreflexive — cycles never
    /// produce `(x, x)` pairs — so the shadow drops them too.
    fn isa_closure(&self) -> BTreeSet<(u8, u8)> {
        let mut closure: BTreeSet<(u8, u8)> = self.isa_direct.iter().copied().collect();
        loop {
            let mut grew = false;
            let pairs: Vec<(u8, u8)> = closure.iter().copied().collect();
            for &(a, b) in &pairs {
                for &(c, d) in &pairs {
                    if b == c && closure.insert((a, d)) {
                        grew = true;
                    }
                }
            }
            if !grew {
                break;
            }
        }
        closure.retain(|&(a, b)| a != b);
        closure
    }

    /// Render the `scalar` / `member` / `isa` sections of the canonical dump
    /// from the shadow rows, using the same format strings and sort keys as
    /// `Structure::canonical_dump()` — independently of the columnar store.
    fn expected_sections(&self, methods: &[Oid], objects: &[Oid]) -> Vec<String> {
        let no_args: &[Oid] = &[];
        let mut scalar_rows: Vec<(Oid, Oid, Oid)> = self
            .scalars
            .iter()
            .map(|(&(m, r), &v)| (methods[m as usize], objects[r as usize], objects[v as usize]))
            .collect();
        scalar_rows.sort_unstable();
        let mut out: Vec<String> = scalar_rows
            .into_iter()
            .map(|(m, r, v)| format!("scalar {m} {r} {no_args:?} -> {v}"))
            .collect();
        let mut member_rows: Vec<(Oid, Oid, Oid)> = self
            .sets
            .iter()
            .flat_map(|(&(m, r), members)| {
                members
                    .iter()
                    .map(move |&v| (methods[m as usize], objects[r as usize], objects[v as usize]))
            })
            .collect();
        member_rows.sort_unstable();
        out.extend(
            member_rows
                .into_iter()
                .map(|(m, r, v)| format!("member {m} {r} {no_args:?} ->> {v}")),
        );
        let mut isa_rows: Vec<(Oid, Oid)> = self
            .isa_closure()
            .into_iter()
            .map(|(a, b)| (objects[a as usize], objects[b as usize]))
            .collect();
        isa_rows.sort_unstable();
        out.extend(isa_rows.into_iter().map(|(a, b)| format!("isa {a} : {b}")));
        out
    }
}

/// The fact/isa lines of a canonical dump (the header lines name the object
/// universe, which the shadow does not model).
fn fact_sections(dump: &str) -> Vec<String> {
    dump.lines()
        .filter(|l| l.starts_with("scalar ") || l.starts_with("member ") || l.starts_with("isa "))
        .map(str::to_string)
        .collect()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(96))]

    #[test]
    fn columnar_dump_matches_a_row_oriented_shadow(ops in prop::collection::vec(op_strategy(), 0..120)) {
        let mut structure = Structure::new();
        let (methods, objects) = intern_universe(&mut structure);
        let mut shadow = Shadow::default();
        for op in &ops {
            shadow.apply(&mut structure, &methods, &objects, op);
        }
        prop_assert_eq!(
            fact_sections(&structure.canonical_dump()),
            shadow.expected_sections(&methods, &objects),
            "columnar sections must match the row-oriented shadow"
        );
    }

    #[test]
    fn canonical_dump_is_insertion_order_invariant(ops in prop::collection::vec(op_strategy(), 0..120)) {
        // First structure: the full op sequence, retractions included.
        let mut first = Structure::new();
        let (methods, objects) = intern_universe(&mut first);
        let mut shadow = Shadow::default();
        for op in &ops {
            shadow.apply(&mut first, &methods, &objects, op);
        }
        // Second structure: only the *surviving* facts, replayed in reverse
        // order (members interleaved across applications, isa edges last-
        // asserted-first).  The columnar grouping must canonicalise both to
        // the same bytes.
        let mut second = Structure::new();
        let (methods2, objects2) = intern_universe(&mut second);
        let mut isa_edges: Vec<(u8, u8)> = shadow.isa_direct.clone();
        isa_edges.reverse();
        for (a, b) in isa_edges {
            second.add_isa(objects2[a as usize], objects2[b as usize]);
        }
        let mut members: Vec<(u8, u8, u8)> = shadow
            .sets
            .iter()
            .flat_map(|(&(m, r), s)| s.iter().map(move |&v| (m, r, v)))
            .collect();
        members.reverse();
        for (m, r, v) in members {
            second.assert_set_member(methods2[m as usize], objects2[r as usize], &[], objects2[v as usize]);
        }
        let mut scalars: Vec<(u8, u8, u8)> = shadow.scalars.iter().map(|(&(m, r), &v)| (m, r, v)).collect();
        scalars.reverse();
        for (m, r, v) in scalars {
            second
                .assert_scalar(methods2[m as usize], objects2[r as usize], &[], objects2[v as usize])
                .expect("replaying a conflict-free final state succeeds");
        }
        prop_assert_eq!(
            fact_sections(&first.canonical_dump()),
            fact_sections(&second.canonical_dump()),
            "fact sections must not depend on insertion order"
        );
    }
}

// ---------------------------------------------------------------------------
// 3. Worker-count / executor sweep: the desc closure at 1/2/4/8 workers
//    under both executors is bit-identical to the sequential reference.
// ---------------------------------------------------------------------------

const CLOSURE_PROGRAM: &str = "X[desc ->> {Y}] <- X[kids ->> {Y}].\n\
                               X[desc ->> {Y}] <- X..desc[kids ->> {Y}].\n";

fn closure_dump(structure: &Structure, options: EvalOptions) -> String {
    let program = parse_program(CLOSURE_PROGRAM).expect("closure program parses");
    let mut s = structure.clone();
    Engine::with_options(options)
        .load_program(&mut s, &program)
        .expect("closure evaluation succeeds");
    s.canonical_dump()
}

fn assert_sweep_matches_sequential(structure: &Structure) {
    let reference = closure_dump(structure, EvalOptions::default());
    for &workers in &[1usize, 2, 4, 8] {
        for &executor in &[ExecutorKind::Pooled, ExecutorKind::Scoped] {
            let dump = closure_dump(
                structure,
                EvalOptions {
                    mode: EvalMode::Parallel { workers },
                    executor,
                    // Force delta sharding even at property-test scale.
                    shard_min_entries: 1,
                    ..EvalOptions::default()
                },
            );
            assert_eq!(
                dump, reference,
                "closure dump diverged at {workers} workers with {executor:?} executor"
            );
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    #[test]
    fn closure_sweep_is_bit_identical_on_random_trees(
        depth in 1usize..5,
        fanout in 1usize..4,
        seed in 0u64..300,
    ) {
        let structure = pathlog::datagen::genealogy_structure(
            &pathlog::datagen::GenealogyParams { roots: 1, depth, fanout, seed });
        assert_sweep_matches_sequential(&structure);
    }

    #[test]
    fn closure_sweep_is_bit_identical_on_random_graphs(
        edges in prop::collection::vec((0u8..10, 0u8..10), 1..35),
    ) {
        // Arbitrary directed graphs — cycles and self-loops included — so
        // the sharded columnar delta views converge over non-tree shapes.
        let mut structure = Structure::new();
        let kids = structure.atom("kids");
        let nodes: Vec<Oid> = (0..10).map(|i| structure.atom(&format!("n{i}"))).collect();
        for &(a, b) in &edges {
            structure.assert_set_member(kids, nodes[a as usize], &[], nodes[b as usize]);
        }
        assert_sweep_matches_sequential(&structure);
    }
}

// ---------------------------------------------------------------------------
// 4. Factorized answers enumerate bit-identically to materialized tuples.
// ---------------------------------------------------------------------------

/// Factorized and materialized answers must agree answer-for-answer — same
/// bindings, same object, same enumeration order.
fn assert_factorized_matches(structure: &Structure, term: &pathlog::core::term::Term, expect_factorized: bool) {
    let engine = Engine::new();
    let materialized = engine.query_term(structure, term).expect("materialized query succeeds");
    let factorized = engine
        .query_term_factorized(structure, term)
        .expect("factorized query succeeds");
    assert_eq!(
        factorized.is_factorized(),
        expect_factorized,
        "unexpected representation for {term:?}"
    );
    assert_eq!(
        factorized.count(),
        materialized.len() as u64,
        "answer counts differ for {term:?}"
    );
    let mut index = 0usize;
    factorized.for_each(&mut |bindings, object| {
        let expected = &materialized[index];
        assert_eq!(object, expected.object, "object differs at answer {index} of {term:?}");
        assert_eq!(
            bindings, &expected.bindings,
            "bindings differ at answer {index} of {term:?}"
        );
        index += 1;
    });
    assert_eq!(index, materialized.len(), "enumeration lengths differ for {term:?}");
    assert_eq!(
        factorized.into_answers(),
        materialized,
        "collected answers differ for {term:?}"
    );
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn factorized_enumeration_matches_materialized_answers(
        set_facts in prop::collection::vec((0u8..NUM_METHODS, 0u8..NUM_OBJECTS, 0u8..NUM_OBJECTS), 0..50),
        scalar_facts in prop::collection::vec((0u8..NUM_METHODS, 0u8..NUM_OBJECTS, 0u8..NUM_OBJECTS), 0..25),
        ground in 0u8..NUM_OBJECTS,
    ) {
        let mut structure = Structure::new();
        let (methods, objects) = intern_universe(&mut structure);
        for &(m, r, v) in &set_facts {
            structure.assert_set_member(methods[m as usize], objects[r as usize], &[], objects[v as usize]);
        }
        for &(m, r, v) in &scalar_facts {
            // First-wins: conflicting scalar asserts are rejected, which is
            // fine — the comparison only needs *a* consistent store.
            let _ = structure.assert_scalar(methods[m as usize], objects[r as usize], &[], objects[v as usize]);
        }
        let ground_name = format!("o{ground}");
        for m in 0..NUM_METHODS {
            let method = format!("m{m}");
            // Unbound-variable receivers: the factorized builder must kick in.
            assert_factorized_matches(&structure, &Term::var("X").set(method.as_str()), true);
            assert_factorized_matches(&structure, &Term::var("X").scalar(method.as_str()), true);
            // Ground receivers stay factorized too (single run / unit node).
            assert_factorized_matches(&structure, &Term::name(ground_name.as_str()).set(method.as_str()), true);
            assert_factorized_matches(
                &structure,
                &Term::name(ground_name.as_str()).scalar(method.as_str()),
                true,
            );
        }
        // Multi-step paths are outside the factorizable fragment: the
        // fallback must materialize and still agree with `answers()`.
        assert_factorized_matches(&structure, &Term::var("X").set("m0").set("m1"), false);
        assert_factorized_matches(&structure, &Term::var("X").scalar("m0").set("m1"), false);
    }
}
