//! Property-based tests (proptest) over the core data structures and the
//! invariants the paper's definitions promise.

use proptest::prelude::*;

use pathlog::core::scalarity::is_set_valued;
use pathlog::core::structure::Isa;
use pathlog::core::wellformed::is_well_formed;
use pathlog::prelude::*;

// ---------------------------------------------------------------------------
// Term generation: produces references in the normal form the parser yields
// (filter lists are flattened, method/class positions are simple references),
// so that print -> parse -> print is the identity.
// ---------------------------------------------------------------------------

fn atom_name() -> impl Strategy<Value = String> {
    prop::sample::select(vec![
        "mary", "peter", "employee", "vehicles", "color", "kids", "boss", "city", "salary", "address", "tc",
    ])
    .prop_map(|s| s.to_string())
}

fn var_name() -> impl Strategy<Value = String> {
    prop::sample::select(vec!["X", "Y", "Z", "Boss", "M"]).prop_map(|s| s.to_string())
}

fn simple_term() -> impl Strategy<Value = Term> {
    prop_oneof![
        atom_name().prop_map(Term::name),
        var_name().prop_map(Term::var),
        // non-negative: a negative integer directly after a path dot (`x.-3`)
        // is not representable in the concrete syntax without parentheses
        (0i64..200).prop_map(Term::int),
        atom_name().prop_map(|s| Term::string(format!("lit {s}"))),
    ]
}

/// A reference in parser normal form, with bounded depth.
fn term_strategy() -> impl Strategy<Value = Term> {
    simple_term().prop_recursive(3, 24, 4, |inner| {
        let filter = (
            simple_term(),
            prop::collection::vec(inner.clone(), 0..2),
            inner.clone(),
            0..3u8,
        )
            .prop_map(|(method, args, value, kind)| {
                // Method positions must be simple; wrap anything else in parentheses.
                let method = if method.is_simple() { method } else { method.paren() };
                let value = match kind {
                    0 => FilterValue::Scalar(value),
                    1 => FilterValue::SetExplicit(vec![value]),
                    _ => FilterValue::SigScalar(vec![Term::name("integer")]),
                };
                Filter { method, args, value }
            });
        prop_oneof![
            // paths
            (inner.clone(), simple_term(), any::<bool>()).prop_map(|(recv, method, set)| {
                let method = if method.is_simple() { method } else { method.paren() };
                // avoid a molecule receiver being re-associated is not a
                // concern for paths; any receiver is fine
                if set {
                    recv.set(method)
                } else {
                    recv.scalar(method)
                }
            }),
            // molecules (receiver must not itself be a molecule so that the
            // printed `r[f1][f2]` form does not re-parse to a merged filter list)
            (
                inner
                    .clone()
                    .prop_filter("non-molecule receiver", |t| !matches!(t, Term::Molecule(_))),
                prop::collection::vec(filter, 1..3)
            )
                .prop_map(|(recv, filters)| recv.filters(filters)),
            // class membership
            (inner.clone(), simple_term()).prop_map(|(recv, class)| {
                let class = if class.is_simple() { class } else { class.paren() };
                recv.isa(class)
            }),
            // parentheses
            inner.prop_map(Term::paren),
        ]
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(192))]

    /// Printing a reference and parsing it back yields the same reference.
    #[test]
    fn print_parse_roundtrip(term in term_strategy()) {
        let printed = term.to_string();
        let reparsed = parse_term(&printed)
            .unwrap_or_else(|e| panic!("printed form `{printed}` failed to parse: {e}"));
        prop_assert_eq!(term, reparsed, "printed as `{}`", printed);
    }

    /// Scalarity (Definition 2) is invariant under parenthesisation and is
    /// determined by the receiver for molecules and class memberships.
    #[test]
    fn scalarity_invariants(term in term_strategy()) {
        prop_assert_eq!(is_set_valued(&term.clone().paren()), is_set_valued(&term));
        let as_molecule = term.clone().filters(vec![Filter::scalar("age", Term::int(1))]);
        prop_assert_eq!(is_set_valued(&as_molecule), is_set_valued(&term));
        let as_isa = term.clone().isa("employee");
        prop_assert_eq!(is_set_valued(&as_isa), is_set_valued(&term));
        // a set-valued postfix always makes the reference set-valued
        prop_assert!(is_set_valued(&term.clone().set("kids")));
    }

    /// Well-formedness (Definition 3): attaching a scalar filter whose result
    /// is a set-valued reference always makes a term ill-formed, and
    /// well-formedness is preserved by parenthesisation.
    #[test]
    fn wellformedness_invariants(term in term_strategy()) {
        prop_assert_eq!(is_well_formed(&term.clone().paren()), is_well_formed(&term));
        let bad = term.clone().filter(Filter::scalar("boss", Term::name("p1").set("assistants")));
        prop_assert!(!is_well_formed(&bad));
        // variables collected are unique and parenthesisation does not change them
        let vars = term.variables();
        let mut dedup = vars.clone();
        dedup.dedup();
        prop_assert_eq!(vars.len(), dedup.len());
        prop_assert_eq!(term.clone().paren().variables(), vars);
    }

    /// The incremental transitive closure of the is-a relation agrees with a
    /// from-scratch reachability computation for all pairs of *distinct*
    /// objects, regardless of insertion order.  Membership is deliberately
    /// irreflexive (see DESIGN.md), so `x isa x` never holds — not even when
    /// a self-edge or a cycle is asserted.
    #[test]
    fn isa_closure_matches_reachability(edges in prop::collection::vec((0u32..12, 0u32..12), 0..30)) {
        let mut isa = Isa::new();
        for &(a, b) in &edges {
            isa.add(Oid(a), Oid(b));
        }
        // reference reachability by BFS over the raw edges
        for from in 0u32..12 {
            let mut reachable = std::collections::BTreeSet::new();
            let mut stack = vec![from];
            while let Some(x) = stack.pop() {
                for &(a, b) in &edges {
                    if a == x && reachable.insert(b) {
                        stack.push(b);
                    }
                }
            }
            prop_assert!(!isa.in_class(Oid(from), Oid(from)), "membership must be irreflexive ({from})");
            for to in 0u32..12 {
                if from == to {
                    continue;
                }
                prop_assert_eq!(
                    isa.in_class(Oid(from), Oid(to)),
                    reachable.contains(&to),
                    "from {} to {}", from, to
                );
            }
        }
    }

    /// The PathLog `desc` rules compute exactly the relational transitive
    /// closure on random forests.
    #[test]
    fn desc_rules_match_relational_closure(parents in prop::collection::vec(0usize..8, 1..14)) {
        // node i+1 gets parent `parents[i] % (i+1)` — always a forest
        let mut s = Structure::new();
        let kids = s.atom("kids");
        let nodes: Vec<Oid> = (0..=parents.len()).map(|i| s.atom(&format!("n{i}"))).collect();
        let mut edges = Vec::new();
        for (i, &p) in parents.iter().enumerate() {
            let parent = nodes[p % (i + 1)];
            let child = nodes[i + 1];
            s.assert_set_member(kids, parent, &[], child);
            edges.push((parent, child));
        }
        let program = parse_program(
            "X[desc ->> {Y}] <- X[kids ->> {Y}].
             X[desc ->> {Y}] <- X..desc[kids ->> {Y}].",
        ).unwrap();
        let mut evaluated = s.clone();
        let stats = Engine::new().load_program(&mut evaluated, &program).unwrap();

        let db = pathlog::baseline::RelationalDb::from_structure(&s);
        let closure = pathlog::baseline::relational::tc::transitive_closure(&db.attr("kids", "p", "c"));
        prop_assert_eq!(stats.set_members, closure.len());
    }

    /// Entailment of a ground molecule implies entailment after dropping
    /// filters (molecule filters only restrict the valuation).
    #[test]
    fn dropping_filters_only_widens_the_valuation(age in 0i64..5, asked in 0i64..5) {
        let mut s = Structure::new();
        let (mary, age_m) = (s.atom("mary"), s.atom("age"));
        let v = s.int(age);
        s.assert_scalar(age_m, mary, &[], v).unwrap();
        let filtered = Term::name("mary").filter(Filter::scalar("age", Term::int(asked)));
        let unfiltered = Term::name("mary").empty_filters();
        let filtered_holds = entails(&s, &filtered, &Bindings::new()).unwrap();
        let unfiltered_holds = entails(&s, &unfiltered, &Bindings::new()).unwrap();
        prop_assert!(unfiltered_holds);
        if filtered_holds {
            prop_assert_eq!(age, asked);
        }
    }
}
