% PL001: a scalar filter whose value is a set-valued reference violates
% well-formedness (Definition 3).
peter[kids ->> {tim, mary}].
house[owner -> peter..kids].
