% PL008: `H` occurs exactly once; either a join was forgotten or the
% variable should be spelled `_H`.
a : person[height -> 180].

X : tall <- X : person[height -> H].

?- X : tall.
