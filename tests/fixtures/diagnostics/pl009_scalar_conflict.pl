% PL009: two rules assign the scalar method `status`, so evaluation can
% derive conflicting results for the same receiver.
a : person.

X[status -> gold] <- X : person.
X[status -> silver] <- X : person.

?- X[status -> S].
