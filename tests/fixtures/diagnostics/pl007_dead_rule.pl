% PL007: nothing reads `minor`, so its rule can never contribute to an
% answer.
a : person.
b : nobody.

X : adult <- X : person.
X : minor <- X : nobody.

?- X : adult.
