% PL004: `X` occurs only under negation, so negation-as-failure has no
% bindings to test.
a : person[spouse -> a].
somebody : flag <- not X : person[spouse -> X].
