% PL002: a rule head must be a scalar reference; `X..kids` denotes a set.
a : person.
X..kids[status -> minor] <- X : person.
