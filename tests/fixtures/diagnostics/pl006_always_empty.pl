% PL006: no fact or rule defines `fortune`, so the first body literal can
% never match.
a : person.
X : rich <- X : person[fortune -> F], F[gt@(1000000) -> F].

?- X : rich.
