% PL005: `odd` depends on its own definition through negation, so no
% stratification exists.
a : person.
X : odd <- X : person, not X : odd.
