% PL003: `Y` appears in the head but in no positive body literal, so the
% rule is not range-restricted.
a : person.
X[age -> Y; shoe -> Y] <- X : person.
