//! Integrity constraints: property tests for the incremental checker, the
//! check-on-commit guard, tolerant evaluation, and the fault-hardened
//! executor.
//!
//! The central property (the E20 contract): **incremental checking is
//! observationally identical to full re-checking** — after any sequence of
//! mutations, [`ConstraintChecker::check`] returns exactly the violations
//! (same list, same order) that a from-scratch [`ConstraintChecker::check_full`]
//! computes, at every worker count and on both executors.  The fault tests
//! assert that injected worker panics never change a solve's outcome: the
//! structure's `canonical_dump()` stays bit-identical and the recovery is
//! surfaced in `EvalStats`.

use proptest::prelude::*;

use pathlog::core::builtins::{GT, LT};
use pathlog::core::names::Name;
use pathlog::core::structure::Oid;
use pathlog::datagen::{generate_company, generate_genealogy, CompanyParams, GenealogyParams};
use pathlog::prelude::*;

// ---------------------------------------------------------------------------
// helpers
// ---------------------------------------------------------------------------

/// `S < limit`, with `S` already bound to an integer.
fn lt_filter(var: &str, limit: i64) -> Literal {
    Literal::pos(Term::var(var).filter(Filter {
        method: Term::name(LT),
        args: vec![Term::int(limit)],
        value: FilterValue::Scalar(Term::var(var)),
    }))
}

/// `S > limit`, with `S` already bound to an integer.
fn gt_filter(var: &str, limit: i64) -> Literal {
    Literal::pos(Term::var(var).filter(Filter {
        method: Term::name(GT),
        args: vec![Term::int(limit)],
        value: FilterValue::Scalar(Term::var(var)),
    }))
}

/// The company constraint set: no underpaid managers, no self-friendship,
/// no kid-managers.
fn company_constraints() -> ConstraintSet {
    [
        Constraint::new(
            "underpaid_manager",
            vec![
                Literal::pos(Term::var("X").isa("manager")),
                Literal::pos(Term::var("X").filter(Filter::scalar("salary", Term::var("S")))),
                lt_filter("S", 40_000),
            ],
            ConstraintPolicy::Reject,
        )
        .unwrap(),
        Constraint::new(
            "self_friend",
            vec![Literal::pos(
                Term::var("X").filter(Filter::set("friends", vec![Term::var("X")])),
            )],
            ConstraintPolicy::Reject,
        )
        .unwrap(),
        Constraint::new(
            "kid_manager",
            vec![
                Literal::pos(Term::var("X").filter(Filter::set("kids", vec![Term::var("Y")]))),
                Literal::pos(Term::var("Y").isa("manager")),
            ],
            ConstraintPolicy::Reject,
        )
        .unwrap(),
    ]
    .into_iter()
    .collect()
}

/// The genealogy constraint set: nobody is their own kid, no ancient kids.
fn genealogy_constraints() -> ConstraintSet {
    [
        Constraint::new(
            "self_kid",
            vec![Literal::pos(
                Term::var("X").filter(Filter::set("kids", vec![Term::var("X")])),
            )],
            ConstraintPolicy::Reject,
        )
        .unwrap(),
        Constraint::new(
            "ancient_kid",
            vec![
                Literal::pos(Term::var("X").filter(Filter::set("kids", vec![Term::var("Y")]))),
                Literal::pos(Term::var("Y").filter(Filter::scalar("age", Term::var("A")))),
                gt_filter("A", 80),
            ],
            ConstraintPolicy::Reject,
        )
        .unwrap(),
    ]
    .into_iter()
    .collect()
}

/// The evaluation matrix the equivalence property quantifies over.
fn executor_matrix() -> Vec<EvalOptions> {
    let mut configs = vec![EvalOptions::default()]; // sequential
    for workers in [1usize, 2, 4, 8] {
        for executor in [ExecutorKind::Pooled, ExecutorKind::Scoped] {
            configs.push(EvalOptions {
                mode: EvalMode::Parallel { workers },
                executor,
                ..EvalOptions::default()
            });
        }
    }
    configs
}

/// One random mutation against a structure with known member/value pools.
#[derive(Debug, Clone)]
enum Mutation {
    SetSalary { person: usize, salary: usize },
    SetAge { person: usize, age: usize },
    AddFriend { person: usize, friend: usize },
    RemoveFriend { person: usize, friend: usize },
    AddKid { person: usize, kid: usize },
    RemoveKid { person: usize, kid: usize },
    Promote { person: usize },
}

fn mutation_strategy() -> impl Strategy<Value = Mutation> {
    let p = 0usize..12;
    prop_oneof![
        (p.clone(), 0usize..4).prop_map(|(person, salary)| Mutation::SetSalary { person, salary }),
        (p.clone(), 0usize..4).prop_map(|(person, age)| Mutation::SetAge { person, age }),
        (p.clone(), p.clone()).prop_map(|(person, friend)| Mutation::AddFriend { person, friend }),
        (p.clone(), p.clone()).prop_map(|(person, friend)| Mutation::RemoveFriend { person, friend }),
        (p.clone(), p.clone()).prop_map(|(person, kid)| Mutation::AddKid { person, kid }),
        (p.clone(), p.clone()).prop_map(|(person, kid)| Mutation::RemoveKid { person, kid }),
        p.prop_map(|person| Mutation::Promote { person }),
    ]
}

/// Everything a mutation needs: person oids and pre-interned method/value
/// pools (pre-interning keeps the checks incremental — fresh oids would
/// conservatively re-solve everything, which is sound but not the
/// interesting path).
struct Arena {
    people: Vec<Oid>,
    salaries: Vec<Oid>,
    ages: Vec<Oid>,
    salary: Oid,
    age: Oid,
    friends: Oid,
    kids: Oid,
    manager: Oid,
}

impl Arena {
    fn new(s: &mut Structure, people: Vec<Oid>) -> Self {
        // thresholds referenced by the constraint bodies must be interned
        // for the comparison builtins to relate them
        s.int(40_000);
        s.int(80);
        Arena {
            people,
            salaries: [20_000, 35_000, 50_000, 90_000].iter().map(|&v| s.int(v)).collect(),
            ages: [25, 45, 70, 85].iter().map(|&v| s.int(v)).collect(),
            salary: s.atom("salary"),
            age: s.atom("age"),
            friends: s.atom("friends"),
            kids: s.atom("kids"),
            manager: s.atom("manager"),
        }
    }

    fn apply(&self, s: &mut Structure, m: &Mutation) {
        let person = |i: usize| self.people[i % self.people.len()];
        match *m {
            Mutation::SetSalary { person: p, salary } => {
                let r = person(p);
                s.retract_scalar(self.salary, r, &[]);
                s.assert_scalar(self.salary, r, &[], self.salaries[salary % self.salaries.len()])
                    .expect("salary just retracted");
            }
            Mutation::SetAge { person: p, age } => {
                let r = person(p);
                s.retract_scalar(self.age, r, &[]);
                s.assert_scalar(self.age, r, &[], self.ages[age % self.ages.len()])
                    .expect("age just retracted");
            }
            Mutation::AddFriend { person: p, friend } => {
                s.assert_set_member(self.friends, person(p), &[], person(friend));
            }
            Mutation::RemoveFriend { person: p, friend } => {
                s.retract_set_member(self.friends, person(p), &[], person(friend));
            }
            Mutation::AddKid { person: p, kid } => {
                s.assert_set_member(self.kids, person(p), &[], person(kid));
            }
            Mutation::RemoveKid { person: p, kid } => {
                s.retract_set_member(self.kids, person(p), &[], person(kid));
            }
            Mutation::Promote { person: p } => {
                s.add_isa(person(p), self.manager);
            }
        }
    }
}

/// Oids of all employees `emp0..` (company) or all persons (genealogy).
fn people_of(s: &Structure, prefix: &str) -> Vec<Oid> {
    let mut out: Vec<(String, Oid)> = s
        .names()
        .filter(|(name, _)| matches!(name, Name::Atom(a) if a.starts_with(prefix)))
        .map(|(name, oid)| (name.to_string(), oid))
        .collect();
    out.sort();
    out.into_iter().map(|(_, oid)| oid).collect()
}

/// Run `mutations` in chunks over `structure`, checking after every chunk
/// that every incremental checker in the executor matrix agrees exactly
/// with the sequential full-recheck oracle.
fn assert_incremental_equals_full(
    mut structure: Structure,
    constraints: ConstraintSet,
    mutations: &[Mutation],
    chunk: usize,
) {
    let people = people_of(&structure, "");
    assert!(!people.is_empty());
    let arena = Arena::new(&mut structure, people);

    let mut oracle = ConstraintChecker::new(constraints.clone(), Engine::new());
    let mut incremental: Vec<ConstraintChecker> = executor_matrix()
        .into_iter()
        .map(|options| ConstraintChecker::new(constraints.clone(), Engine::with_options(options)))
        .collect();

    for step in mutations.chunks(chunk.max(1)) {
        for m in step {
            arena.apply(&mut structure, m);
        }
        let expected = oracle.check_full(&mut structure).unwrap();
        for (i, checker) in incremental.iter_mut().enumerate() {
            let got = checker.check(&mut structure).unwrap();
            assert_eq!(got, expected, "config #{i} diverged from the full re-check");
        }
    }
}

// ---------------------------------------------------------------------------
// 1. incremental == full re-check, quantified over mutation sequences and
//    the 1/2/4/8-worker × Pooled/Scoped matrix
// ---------------------------------------------------------------------------

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    #[test]
    fn incremental_equals_full_on_company_mutations(
        seed in 0u64..4,
        mutations in proptest::collection::vec(mutation_strategy(), 1..25),
    ) {
        let db = generate_company(&CompanyParams {
            employees: 12,
            manager_fraction: 0.3,
            seed,
            ..CompanyParams::default()
        });
        assert_incremental_equals_full(db.to_structure(), company_constraints(), &mutations, 4);
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(8))]

    #[test]
    fn incremental_equals_full_on_genealogy_mutations(
        seed in 0u64..4,
        mutations in proptest::collection::vec(mutation_strategy(), 1..20),
    ) {
        let db = generate_genealogy(&GenealogyParams {
            roots: 2,
            depth: 2,
            fanout: 2,
            seed,
        });
        assert_incremental_equals_full(db.to_structure(), genealogy_constraints(), &mutations, 4);
    }
}

// ---------------------------------------------------------------------------
// 2. tolerant evaluation coincides with classical evaluation on consistent
//    stores (empty quarantine), under random mutations
// ---------------------------------------------------------------------------

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    #[test]
    fn tolerant_coincides_with_classical_on_consistent_stores(
        seed in 0u64..4,
        mutations in proptest::collection::vec(mutation_strategy(), 0..15),
    ) {
        let db = generate_company(&CompanyParams {
            employees: 10,
            manager_fraction: 0.3,
            seed,
            ..CompanyParams::default()
        });
        let mut structure = db.to_structure();
        let people = people_of(&structure, "e");
        let arena = Arena::new(&mut structure, people);
        for m in &mutations {
            arena.apply(&mut structure, m);
        }

        let tolerant_engine = Engine::with_options(EvalOptions {
            tolerance: Tolerance::Tolerant,
            ..EvalOptions::default()
        });
        let strict_engine = Engine::new();
        let quarantine = Quarantine::new();
        let query = Query::new(vec![
            Literal::pos(Term::var("X").isa("employee")),
            Literal::pos(Term::var("X").filter(Filter::scalar("salary", Term::var("S")))),
        ]);

        let classical = strict_engine.query(&structure, &query).unwrap();
        let tolerant = tolerant_query(&tolerant_engine, &structure, &quarantine, &query).unwrap();
        prop_assert_eq!(tolerant.answers.len(), classical.len());
        prop_assert!(tolerant.answers.iter().all(|a| a.status == ConsistencyStatus::Clean));
        prop_assert!(tolerant.suppressed.is_empty());
        prop_assert!(!tolerant.any_tainted());
    }
}

// ---------------------------------------------------------------------------
// 3. fault injection: solves survive injected worker faults bit-identically
// ---------------------------------------------------------------------------

/// Transitive-closure rules over `kids`, enough work to fan out.
fn descendant_rules() -> Vec<Rule> {
    vec![
        Rule::new(
            Term::var("X").filter(Filter::set("desc", vec![Term::var("Y")])),
            vec![Literal::pos(
                Term::var("X").filter(Filter::set("kids", vec![Term::var("Y")])),
            )],
        ),
        Rule::new(
            Term::var("X").filter(Filter::set("desc", vec![Term::var("Y")])),
            vec![
                Literal::pos(Term::var("X").filter(Filter::set("desc", vec![Term::var("Z")]))),
                Literal::pos(Term::var("Z").filter(Filter::set("kids", vec![Term::var("Y")]))),
            ],
        ),
    ]
}

/// One fixed structure, cloned per run: `ObjectStore::to_structure` interns
/// hash-map entries in iteration order, so two conversions of the same
/// store number their oids differently — bit-identity is only meaningful
/// across runs over clones of the *same* structure.
fn genealogy_structure_for_faults() -> Structure {
    generate_genealogy(&GenealogyParams {
        roots: 3,
        depth: 3,
        fanout: 3,
        seed: 7,
    })
    .to_structure()
}

#[test]
fn injected_task_panics_leave_solves_bit_identical_and_are_counted() {
    let rules = descendant_rules();
    let base = genealogy_structure_for_faults();

    // clean sequential oracle
    let mut baseline = base.clone();
    Engine::new().run_rules(&mut baseline, &rules).unwrap();
    let expected = baseline.canonical_dump();

    // pooled engine with task panics injected: every run must still match
    let engine = Engine::with_options(EvalOptions {
        mode: EvalMode::Parallel { workers: 3 },
        executor: ExecutorKind::Pooled,
        ..EvalOptions::default()
    });
    engine.fault_control().inject_task_panics(3);
    let mut recovered_total = 0;
    for _ in 0..50 {
        let mut s = base.clone();
        let stats = engine.run_rules(&mut s, &rules).unwrap();
        assert_eq!(s.canonical_dump(), expected, "a fault changed the result");
        recovered_total += stats.tasks_recovered;
        if engine.fault_control().pending() == (0, 0) {
            break;
        }
    }
    assert_eq!(engine.fault_control().pending(), (0, 0), "injections never consumed");
    assert!(recovered_total >= 1, "recovery must be surfaced in EvalStats");
    assert_eq!(
        recovered_total,
        engine.fault_control().tasks_recovered(),
        "per-run EvalStats deltas must sum to the control's lifetime counter"
    );
}

#[test]
fn injected_worker_kills_respawn_the_pool_and_preserve_results() {
    let rules = descendant_rules();
    let base = genealogy_structure_for_faults();
    let mut baseline = base.clone();
    Engine::new().run_rules(&mut baseline, &rules).unwrap();
    let expected = baseline.canonical_dump();

    let engine = Engine::with_options(EvalOptions {
        mode: EvalMode::Parallel { workers: 3 },
        executor: ExecutorKind::Pooled,
        ..EvalOptions::default()
    });
    engine.fault_control().inject_worker_kills(2);
    let mut respawned_total = 0;
    for _ in 0..50 {
        let mut s = base.clone();
        let stats = engine.run_rules(&mut s, &rules).unwrap();
        assert_eq!(s.canonical_dump(), expected, "a killed worker changed the result");
        respawned_total += stats.workers_respawned;
        if engine.fault_control().pending() == (0, 0) && respawned_total >= 1 {
            break;
        }
    }
    assert_eq!(engine.fault_control().pending(), (0, 0));
    assert!(respawned_total >= 1, "the pool must respawn killed workers");

    // the healed pool keeps solving correctly with no faults pending
    let mut s = base.clone();
    engine.run_rules(&mut s, &rules).unwrap();
    assert_eq!(s.canonical_dump(), expected);
}

#[test]
fn fault_injected_constraint_checks_agree_with_clean_oracle() {
    let db = generate_company(&CompanyParams {
        employees: 15,
        manager_fraction: 0.4,
        seed: 11,
        ..CompanyParams::default()
    });
    let mut s = db.to_structure();
    s.int(40_000);
    let mut oracle = ConstraintChecker::new(company_constraints(), Engine::new());
    let expected = oracle.check_full(&mut s).unwrap();

    let engine = Engine::with_options(EvalOptions {
        mode: EvalMode::Parallel { workers: 4 },
        executor: ExecutorKind::Pooled,
        ..EvalOptions::default()
    });
    engine.fault_control().inject_task_panics(2);
    let mut checker = ConstraintChecker::new(company_constraints(), engine.clone());
    for _ in 0..50 {
        let got = checker.check_full(&mut s).unwrap();
        assert_eq!(got, expected, "a fault changed the violation set");
        if engine.fault_control().pending() == (0, 0) {
            break;
        }
    }
    assert_eq!(engine.fault_control().pending(), (0, 0));
}

// ---------------------------------------------------------------------------
// 4. check-on-commit over a generated store
// ---------------------------------------------------------------------------

#[test]
fn generated_store_commits_are_guarded_and_incremental() {
    let mut db = generate_company(&CompanyParams {
        employees: 20,
        manager_fraction: 0.3,
        seed: 3,
        ..CompanyParams::default()
    });
    let constraints: ConstraintSet = [
        Constraint::new(
            "self_boss",
            vec![Literal::pos(
                Term::var("X").filter(Filter::scalar("boss", Term::var("X"))),
            )],
            ConstraintPolicy::Reject,
        )
        .unwrap(),
        Constraint::new(
            "self_friend",
            vec![Literal::pos(
                Term::var("X").filter(Filter::set("friends", vec![Term::var("X")])),
            )],
            ConstraintPolicy::Reject,
        )
        .unwrap(),
    ]
    .into_iter()
    .collect();
    let baseline = db.set_constraints(constraints, Engine::new()).unwrap();
    assert!(baseline.is_empty(), "datagen stores are consistent: {baseline:?}");
    let installed = db.constraint_guard().unwrap().stats();

    // a legal commit goes through and only re-solves affected constraints
    {
        let mut txn = db.begin();
        txn.add("e0", "friends", pathlog::oodb::Value::obj("e1")).unwrap();
        let receipt = txn.commit().unwrap();
        assert!(receipt.checked && receipt.is_clean());
    }
    let after_legal = db.constraint_guard().unwrap().stats();
    assert_eq!(
        after_legal.condition_solves,
        installed.condition_solves + 1,
        "only the friends constraint re-solves"
    );
    assert_eq!(after_legal.constraints_skipped, installed.constraints_skipped + 1);

    // an illegal commit is rejected wholesale and rolled back
    let before = db.get_set("e0", "friends").cloned();
    let err = {
        let mut txn = db.begin();
        txn.add("e0", "friends", pathlog::oodb::Value::obj("e2")).unwrap();
        txn.add("e0", "friends", pathlog::oodb::Value::obj("e0")).unwrap();
        txn.commit().unwrap_err()
    };
    match err {
        pathlog::oodb::CommitError::Rejected {
            violations,
            rolled_back,
        } => {
            assert_eq!(rolled_back, 2);
            assert_eq!(violations.len(), 1);
            assert_eq!(&*violations[0].constraint, "self_friend");
        }
        other => panic!("expected rejection, got {other:?}"),
    }
    assert_eq!(db.get_set("e0", "friends").cloned(), before, "rolled back in full");
}
