//! Every concrete-syntax expression quoted in the paper must parse, print
//! and re-parse to the same abstract reference (experiment E10), and the
//! statically checkable properties (scalarity, well-formedness) must match
//! what the paper states about them.

use pathlog::core::scalarity::is_set_valued;
use pathlog::core::wellformed::is_well_formed;
use pathlog::prelude::*;

/// (expression, is a rule/fact, expected set-valued) — terms only.
const TERMS: &[(&str, bool)] = &[
    // Section 2
    (
        "X : employee[age -> 30; city -> newYork]..vehicles : automobile[cylinders -> 4].color[Z]",
        true,
    ),
    (
        "X[age -> 30; city -> newYork].vehicles[cylinders -> 4][Y].color[Z]",
        false,
    ),
    ("X[city -> X.boss.city]", false),
    (
        "X : manager..vehicles[color -> red].producedBy[cityOf -> detroit; president -> X]",
        true,
    ),
    // Section 4
    ("mary.spouse", false),
    ("mary.spouse[boss -> mary]", false),
    ("mary.spouse[boss -> mary].age", false),
    ("mary.spouse[boss -> mary[age -> 25]]", false),
    ("john.salary@(1994)", false),
    ("mary.boss", false),
    ("mary[age -> 30][boss -> peter]", false),
    ("mary[age -> 30; boss -> peter]", false),
    ("X..vehicles.color[Z]", true),
    ("L : (integer.list)", false),
    ("L : integer.list", false),
    ("p1.age", false),
    ("p1..assistants", true),
    ("p1..assistants[salary -> 1000]", true),
    ("p2[friends ->> {p3, p4}]", false),
    ("p2[friends ->> p1..assistants]", false),
    ("p1..assistants.salary", true),
    ("p1..assistants..projects", true),
    ("p1.paidFor@(p1..vehicles)", true),
    ("p2[boss -> p1..assistants]", false), // ill-formed (4.5), still parses; scalar receiver
    ("p1[assistants ->> {X[salary -> 1000]}]", false),
    ("john..kids..kids", true),
];

const RULES: &[&str] = &[
    "X[power -> Y] <- X : automobile.engineOf[power -> Y].",
    "X.boss[worksFor -> D] <- X : employee[worksFor -> D].",
    "Z[worksFor -> D] <- X : employee[worksFor -> D].boss[Z].",
    "X.address[street -> X.street; city -> X.city] <- X : person.",
    "X[desc ->> {Y}] <- X[kids ->> {Y}].",
    "X[desc ->> {Y}] <- X..desc[kids ->> {Y}].",
    "X[(M.tc) ->> {Y}] <- X[M ->> {Y}].",
    "X[(M.tc) ->> {Y}] <- X..(M.tc)[M ->> {Y}].",
    "peter[kids ->> {tim, mary}].",
    "tim[kids ->> {sally}].",
    "mary[kids ->> {tom, paul}].",
    "peter[(kids.tc) ->> {tim, mary, sally, tom, paul}].",
    "p1 : employee[worksFor -> cs1].",
];

#[test]
fn every_paper_term_parses_and_round_trips() {
    for (src, _) in TERMS {
        let term = parse_term(src).unwrap_or_else(|e| panic!("`{src}` must parse: {e}"));
        let printed = term.to_string();
        let reparsed = parse_term(&printed).unwrap_or_else(|e| panic!("printed form `{printed}` must re-parse: {e}"));
        assert_eq!(term, reparsed, "round trip of `{src}` via `{printed}`");
    }
}

#[test]
fn every_paper_rule_parses_and_round_trips() {
    for src in RULES {
        let rule = parse_rule(src).unwrap_or_else(|e| panic!("`{src}` must parse: {e}"));
        let printed = rule.to_string();
        let reparsed = parse_rule(&printed).unwrap_or_else(|e| panic!("printed form `{printed}` must re-parse: {e}"));
        assert_eq!(rule, reparsed, "round trip of `{src}` via `{printed}`");
    }
}

#[test]
fn scalarity_matches_definition_2() {
    for (src, set_valued) in TERMS {
        let term = parse_term(src).unwrap();
        assert_eq!(is_set_valued(&term), *set_valued, "scalarity of `{src}`");
    }
}

#[test]
fn only_4_5_is_ill_formed_among_the_paper_terms() {
    for (src, _) in TERMS {
        let term = parse_term(src).unwrap();
        let expected_ill_formed = *src == "p2[boss -> p1..assistants]";
        assert_eq!(
            !is_well_formed(&term),
            expected_ill_formed,
            "well-formedness of `{src}`"
        );
    }
}

#[test]
fn selectors_are_sugar_for_self() {
    let with_selector = parse_term("X..vehicles.color[Z]").unwrap();
    let explicit = parse_term("X..vehicles.color[self -> Z]").unwrap();
    assert_eq!(with_selector, explicit);
}

#[test]
fn filter_lists_are_sugar_for_repeated_filters() {
    let listed = parse_term("mary[age -> 30; boss -> peter]").unwrap();
    let repeated = parse_term("mary[age -> 30][boss -> peter]").unwrap();
    assert_eq!(listed, repeated);
}

#[test]
fn bracketing_changes_the_reading_of_class_positions() {
    // L : (integer.list) vs L : integer.list — different references.
    let bracketed = parse_term("L : (integer.list)").unwrap();
    let unbracketed = parse_term("L : integer.list").unwrap();
    assert_ne!(bracketed, unbracketed);
}

#[test]
fn a_whole_paper_program_parses() {
    let src = r#"
        % Section 6, all together
        peter[kids ->> {tim, mary}].
        tim[kids ->> {sally}].
        mary[kids ->> {tom, paul}].

        X[power -> Y]               <- X : automobile.engineOf[power -> Y].
        X.boss[worksFor -> D]       <- X : employee[worksFor -> D].
        Z[worksFor -> D]            <- X : employee[worksFor -> D].boss[Z].
        X.address[street -> X.street; city -> X.city] <- X : person.
        X[desc ->> {Y}]             <- X[kids ->> {Y}].
        X[desc ->> {Y}]             <- X..desc[kids ->> {Y}].

        ?- peter[desc ->> {Z}].
        ?- X : manager..vehicles[color -> red].producedBy[cityOf -> detroit; president -> X].
    "#;
    let program = parse_program(src).unwrap();
    assert_eq!(program.rules.len(), 9);
    assert_eq!(program.facts().count(), 3);
    assert_eq!(program.queries.len(), 2);
    // every rule validates except none — the whole program is legal
    assert!(pathlog::core::program::validate_program(&program).is_ok());
}
