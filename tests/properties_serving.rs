//! Property tests for the MVCC snapshot serving layer (PR 10).
//!
//! The serving contract under test:
//!
//! * **Snapshot isolation** — a session pinned at epoch `k` keeps serving
//!   the epoch-`k` canonical dump bit-identically no matter how many
//!   commits land at epochs `> k`, even when the re-read happens on
//!   another thread after the writer has finished the whole history.
//! * **Engine independence** — the `(epoch, dump)` trace of a replayed
//!   mutation history is identical at 1/2/4/8 workers under both the
//!   pooled and the scoped executor: parallelism changes wall-clock, never
//!   the published snapshots.
//! * **Reclamation** — retention entries are freed exactly when the last
//!   pin drops, observable on the structure `Arc`'s strong count.

use std::sync::Arc;

use proptest::prelude::*;

use pathlog::core::snapshot::SnapshotRegistry;
use pathlog::oodb::{CommitError, ObjectStore, Value};
use pathlog::prelude::*;

const WAGE_FLOOR: i64 = 40_000;
const EMPLOYEES: usize = 12;

fn engine_for(workers: usize, executor: ExecutorKind) -> Engine {
    if workers <= 1 {
        Engine::new()
    } else {
        Engine::with_options(EvalOptions {
            mode: EvalMode::Parallel { workers },
            executor,
            ..EvalOptions::default()
        })
    }
}

const CONFIGS: [(usize, ExecutorKind); 8] = [
    (1, ExecutorKind::Pooled),
    (1, ExecutorKind::Scoped),
    (2, ExecutorKind::Pooled),
    (2, ExecutorKind::Scoped),
    (4, ExecutorKind::Pooled),
    (4, ExecutorKind::Scoped),
    (8, ExecutorKind::Pooled),
    (8, ExecutorKind::Scoped),
];

// ---------------------------------------------------------------- company

/// A random guarded-commit attempt over the company store.  Salaries below
/// the wage floor and self-friendships are staged too — the guard must
/// reject them identically in every configuration.
#[derive(Debug, Clone)]
enum CompanyOp {
    SetSalary { employee: usize, amount: i64 },
    AddFriend { a: usize, b: usize },
}

fn company_ops() -> impl Strategy<Value = Vec<CompanyOp>> {
    prop::collection::vec(
        prop_oneof![
            (0..EMPLOYEES, 30_000i64..80_000).prop_map(|(employee, amount)| CompanyOp::SetSalary { employee, amount }),
            (0..EMPLOYEES, 0..EMPLOYEES).prop_map(|(a, b)| CompanyOp::AddFriend { a, b }),
        ],
        1..16,
    )
}

fn company_store(workers: usize, executor: ExecutorKind) -> ObjectStore {
    let mut db = pathlog::datagen::generate_company(&CompanyParams::scaled(EMPLOYEES));
    db.set("e0", "salary", Value::Int(WAGE_FLOOR)).expect("e0 exists");
    let constraints: ConstraintSet = [
        Constraint::new(
            "self_friend",
            vec![Literal::pos(
                Term::var("X").filter(Filter::set("friends", vec![Term::var("X")])),
            )],
            ConstraintPolicy::Reject,
        )
        .expect("range-restricted"),
        Constraint::new(
            "underpaid",
            vec![
                Literal::pos(
                    Term::var("X")
                        .isa("employee")
                        .filter(Filter::scalar("salary", Term::var("S"))),
                ),
                Literal::pos(Term::var("S").scalar_args("lt", vec![Term::int(WAGE_FLOOR)])),
            ],
            ConstraintPolicy::Reject,
        )
        .expect("range-restricted"),
    ]
    .into_iter()
    .collect();
    db.set_constraints(constraints, engine_for(workers, executor))
        .expect("constraints install");
    db
}

/// Apply one commit attempt; `Ok(())` whether the guard accepted or
/// rejected it (both are part of the history), panicking on anything else.
fn company_commit(db: &mut ObjectStore, op: &CompanyOp) {
    let mut txn = db.begin();
    match op {
        CompanyOp::SetSalary { employee, amount } => {
            txn.set(&format!("e{employee}"), "salary", Value::Int(*amount))
                .expect("stage salary");
        }
        CompanyOp::AddFriend { a, b } => {
            txn.add(&format!("e{a}"), "friends", Value::obj(format!("e{b}")))
                .expect("stage friend edge");
        }
    }
    match txn.commit() {
        Ok(_) | Err(CommitError::Rejected { .. }) => {}
        Err(other) => panic!("unexpected commit outcome: {other}"),
    }
}

/// Replay `ops`, pinning a session after the bootstrap and after every
/// commit attempt.  Once the whole history has landed, each still-pinned
/// session is re-dumped **on its own thread** and must reproduce the dump
/// captured at pin time.  Returns the `(epoch, dump)` trace.
fn company_trace(ops: &[CompanyOp], workers: usize, executor: ExecutorKind) -> Vec<(Epoch, String)> {
    let mut db = company_store(workers, executor);
    let mut pinned = Vec::with_capacity(ops.len() + 1);
    let bootstrap = db.begin_session();
    pinned.push((bootstrap.epoch(), bootstrap.canonical_dump(), bootstrap));
    for op in ops {
        company_commit(&mut db, op);
        let session = db.begin_session();
        pinned.push((session.epoch(), session.canonical_dump(), session));
    }
    let readers: Vec<_> = pinned
        .into_iter()
        .map(|(epoch, at_pin, session)| {
            std::thread::spawn(move || {
                let later = session.canonical_dump();
                assert_eq!(
                    at_pin, later,
                    "epoch {epoch}: a pinned session's dump changed under later commits"
                );
                (epoch, later)
            })
        })
        .collect();
    let trace: Vec<(Epoch, String)> = readers
        .into_iter()
        .map(|h| h.join().expect("reader thread exits cleanly"))
        .collect();
    assert_eq!(db.pinned_epochs(), 0, "all epochs reclaimed after sessions drop");
    trace
}

// -------------------------------------------------------------- genealogy

/// A random unguarded mutation over the Section 6 family: kid edges and
/// age updates, committed without constraints so publishing exercises the
/// incremental [`StoreImage`](pathlog::oodb::StoreImage) replay path
/// instead of the guard's shadow.
#[derive(Debug, Clone)]
enum FamilyOp {
    AddKid { parent: usize, child: usize },
    SetAge { person: usize, age: i64 },
}

const FAMILY: [&str; 6] = ["peter", "tim", "mary", "sally", "tom", "paul"];

fn family_ops() -> impl Strategy<Value = Vec<FamilyOp>> {
    prop::collection::vec(
        prop_oneof![
            (0..FAMILY.len(), 0..FAMILY.len()).prop_map(|(parent, child)| FamilyOp::AddKid { parent, child }),
            (0..FAMILY.len(), 1i64..100).prop_map(|(person, age)| FamilyOp::SetAge { person, age }),
        ],
        1..16,
    )
}

/// Replay a genealogy history with reader sessions answering a person
/// query through a parallel engine; same pin-then-re-read-on-a-thread
/// shape as the company trace.
fn family_trace(ops: &[FamilyOp], workers: usize, executor: ExecutorKind) -> Vec<(Epoch, String)> {
    let mut db = pathlog::datagen::paper_family();
    let query = Query::single(Term::var("X").isa("person"));
    let mut pinned = Vec::with_capacity(ops.len());
    for op in ops {
        let mut txn = db.begin();
        match op {
            FamilyOp::AddKid { parent, child } => {
                txn.add(FAMILY[*parent], "kids", Value::obj(FAMILY[*child]))
                    .expect("stage kid edge");
            }
            FamilyOp::SetAge { person, age } => {
                txn.set(FAMILY[*person], "age", Value::Int(*age)).expect("stage age");
            }
        }
        txn.commit().expect("unguarded commit");
        let session = db.begin_session_with(engine_for(workers, executor));
        let persons = session.query(&query).expect("person query serves").len();
        assert_eq!(persons, FAMILY.len(), "mutations never add persons");
        pinned.push((session.epoch(), session.canonical_dump(), session));
    }
    let readers: Vec<_> = pinned
        .into_iter()
        .map(|(epoch, at_pin, session)| {
            std::thread::spawn(move || {
                assert_eq!(
                    at_pin,
                    session.canonical_dump(),
                    "epoch {epoch}: a pinned session's dump changed under later commits"
                );
                (epoch, at_pin)
            })
        })
        .collect();
    let trace = readers
        .into_iter()
        .map(|h| h.join().expect("reader thread exits cleanly"))
        .collect();
    assert_eq!(db.pinned_epochs(), 0, "all epochs reclaimed after sessions drop");
    trace
}

// ------------------------------------------------------------- properties

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    #[test]
    fn company_snapshots_are_isolated_and_engine_independent(ops in company_ops()) {
        let reference = company_trace(&ops, 1, ExecutorKind::Pooled);
        prop_assert!(reference.len() == ops.len() + 1);
        for (workers, executor) in CONFIGS {
            let trace = company_trace(&ops, workers, executor);
            prop_assert_eq!(
                &trace, &reference,
                "trace diverged at workers={} executor={:?}", workers, executor
            );
        }
    }

    #[test]
    fn genealogy_snapshots_are_isolated_and_engine_independent(ops in family_ops()) {
        let reference = family_trace(&ops, 1, ExecutorKind::Pooled);
        prop_assert!(reference.len() == ops.len());
        for (workers, executor) in CONFIGS {
            let trace = family_trace(&ops, workers, executor);
            prop_assert_eq!(
                &trace, &reference,
                "trace diverged at workers={} executor={:?}", workers, executor
            );
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// Reclamation down to the `Arc`: publishing holds one handle, every
    /// pin two more shapes (the retention entry plus one per guard), and
    /// dropping the last pin frees the entry — observable as the strong
    /// count returning to exactly publisher + our probe.
    #[test]
    fn reclamation_frees_the_structure_arc(pins in 1usize..8) {
        let registry = Arc::new(SnapshotRegistry::new());
        let mut s = Structure::new();
        s.atom("a");
        let probe = Arc::new(s);
        registry.publish(1, Arc::clone(&probe));
        // probe + the registry's current snapshot
        prop_assert_eq!(Arc::strong_count(&probe), 2);

        let held: Vec<_> = (0..pins).map(|_| registry.pin().expect("published")).collect();
        // + the retention entry + one clone per pin guard
        prop_assert_eq!(Arc::strong_count(&probe), 3 + pins);
        prop_assert_eq!(registry.pinned_epochs(), 1);

        drop(held);
        prop_assert_eq!(Arc::strong_count(&probe), 2, "retention entry freed with the last pin");
        prop_assert_eq!(registry.pinned_epochs(), 0);

        let mut s2 = Structure::new();
        s2.atom("b");
        registry.publish(2, Arc::new(s2));
        prop_assert_eq!(Arc::strong_count(&probe), 1, "superseded epoch fully released");

        let stats = registry.stats();
        prop_assert_eq!(stats.epochs_published, 2);
        prop_assert_eq!(stats.snapshots_pinned, pins);
        prop_assert_eq!(stats.snapshots_reclaimed, 1);
    }
}
