//! End-to-end integration across crates: workload generation -> object store
//! -> persistence -> semantic structure -> rule evaluation -> queries ->
//! baseline comparison.

use std::collections::BTreeSet;

use pathlog::baseline::relational::{queries as relq, tc};
use pathlog::baseline::{evaluate_onedim, OneDimQuery, RelationalDb};
use pathlog::prelude::*;

#[test]
fn generated_store_survives_persistence_and_conversion() {
    let params = CompanyParams {
        employees: 60,
        seed: 7,
        ..CompanyParams::default()
    };
    let db = pathlog::datagen::generate_company(&params);
    db.integrity_check().unwrap();

    // dump -> load -> dump is stable
    let text = pathlog::oodb::dump(&db);
    let reloaded = pathlog::oodb::load(&text).unwrap();
    assert_eq!(pathlog::oodb::dump(&reloaded), text);
    reloaded.integrity_check().unwrap();

    // conversion preserves counts
    let s1 = db.to_structure();
    let s2 = reloaded.to_structure();
    assert_eq!(s1.stats().scalar_facts, s2.stats().scalar_facts);
    assert_eq!(s1.stats().set_members, s2.stats().set_members);
}

#[test]
fn pathlog_engine_and_baselines_agree_on_generated_data() {
    let structure = pathlog::datagen::company_structure(&CompanyParams {
        employees: 150,
        seed: 3,
        ..CompanyParams::default()
    });
    let engine = Engine::new();
    let db = RelationalDb::from_structure(&structure);

    // E1: colours of employees' automobiles
    let term = parse_term("X : employee..vehicles : automobile.color[Z]").unwrap();
    let pathlog_colours: BTreeSet<Oid> = engine
        .query_term(&structure, &term)
        .unwrap()
        .into_iter()
        .map(|a| a.object)
        .collect();
    let relational = relq::employee_automobile_colours(&db);
    assert_eq!(pathlog_colours.len(), relational.len());

    let onedim = evaluate_onedim(
        &structure,
        &OneDimQuery::new()
            .from_class("X", "employee")
            .from_set("Y", "X", "vehicles")
            .where_isa("Y", "automobile")
            .select_path("Y", &["color"]),
    );
    assert_eq!(pathlog_colours.len(), onedim.len());

    // E3: the manager query
    let term = parse_term("X : manager..vehicles[color -> red].producedBy[cityOf -> detroit; president -> X]").unwrap();
    let pathlog_managers: BTreeSet<Oid> = engine
        .query_term(&structure, &term)
        .unwrap()
        .into_iter()
        .filter_map(|a| a.bindings.get(&Var::new("X")))
        .collect();
    let relational = relq::manager_red_detroit_presidents(&structure, &db);
    assert_eq!(pathlog_managers, relational);
}

#[test]
fn transitive_closure_agrees_with_relational_baseline_on_generated_trees() {
    for (depth, fanout) in [(3usize, 3usize), (6, 2), (1, 5)] {
        let structure = pathlog::datagen::genealogy_structure(&GenealogyParams {
            roots: 2,
            depth,
            fanout,
            seed: 11,
        });
        let mut s = structure.clone();
        let program = parse_program(
            "X[desc ->> {Y}] <- X[kids ->> {Y}].
             X[desc ->> {Y}] <- X..desc[kids ->> {Y}].",
        )
        .unwrap();
        let stats = Engine::new().load_program(&mut s, &program).unwrap();

        let db = RelationalDb::from_structure(&structure);
        let closure = tc::transitive_closure(&db.attr("kids", "parent", "child"));
        assert_eq!(stats.set_members, closure.len(), "depth={depth} fanout={fanout}");
    }
}

#[test]
fn virtual_objects_on_generated_data_are_typed_and_countable() {
    let structure = pathlog::datagen::company_structure(&CompanyParams {
        employees: 80,
        seed: 5,
        ..CompanyParams::default()
    });
    let mut s = structure.clone();
    let engine = Engine::new();
    let program = parse_program("X.address[street -> X.street; city -> X.city] <- X : employee.").unwrap();
    let stats = engine.load_program(&mut s, &program).unwrap();
    assert_eq!(stats.virtual_objects, 80, "one address per employee");

    // every address is reachable through the path and carries the city
    let term = parse_term("X : employee.address.city[C]").unwrap();
    let solutions = engine.query(&s, &Query::single(term)).unwrap();
    assert_eq!(
        solutions
            .iter()
            .map(|b| b.get(&Var::new("X")).unwrap())
            .collect::<BTreeSet<_>>()
            .len(),
        80
    );

    // the generated extensional data plus the derived virtual objects type-check
    let errors = pathlog::core::typing::type_check(&s);
    assert!(errors.is_empty(), "unexpected type violations: {errors:?}");
}

#[test]
fn queries_through_the_full_stack_with_parsed_program() {
    // Build a store, convert, load a parsed program with rules and queries,
    // and answer the program's own queries.
    let mut db = ObjectStore::with_schema(Schema::genealogy());
    for p in ["peter", "tim", "mary", "sally", "tom", "paul"] {
        db.create(p, "person").unwrap();
    }
    db.add("peter", "kids", Value::obj("tim")).unwrap();
    db.add("peter", "kids", Value::obj("mary")).unwrap();
    db.add("tim", "kids", Value::obj("sally")).unwrap();
    db.add("mary", "kids", Value::obj("tom")).unwrap();
    db.add("mary", "kids", Value::obj("paul")).unwrap();

    let mut structure = db.to_structure();
    let program = parse_program(
        "X[desc ->> {Y}] <- X[kids ->> {Y}].
         X[desc ->> {Y}] <- X..desc[kids ->> {Y}].
         ?- peter[desc ->> {Z}].
         ?- mary[desc ->> {Z}].",
    )
    .unwrap();
    let engine = Engine::new();
    engine.load_program(&mut structure, &program).unwrap();

    let answers = engine.query(&structure, &program.queries[0]).unwrap();
    assert_eq!(answers.len(), 5);
    let answers = engine.query(&structure, &program.queries[1]).unwrap();
    assert_eq!(answers.len(), 2);
}

/// Regression for the determinism bugfix sweep: two evaluations of the same
/// program — in the same process, so every hash map gets a different random
/// seed — must produce byte-identical canonical dumps, and parallel delta
/// evaluation must match the sequential bytes too.  Before solutions were
/// merged in canonical order, virtual objects were allocated in hash-map
/// iteration order and the dumps differed run-to-run.
#[test]
fn repeated_and_parallel_runs_emit_byte_identical_models() {
    let structure = pathlog::datagen::genealogy_structure(&pathlog::datagen::GenealogyParams {
        roots: 1,
        depth: 6,
        fanout: 2,
        seed: 11,
    });
    let program = parse_program(
        "X[desc ->> {Y}] <- X[kids ->> {Y}].
         X[desc ->> {Y}] <- X..desc[kids ->> {Y}].
         X.summary[descendants ->> X..desc] <- X[kids ->> {Y}].",
    )
    .unwrap();
    let run = |mode: EvalMode| {
        let mut s = structure.clone();
        let stats = Engine::with_options(EvalOptions {
            mode,
            ..EvalOptions::default()
        })
        .load_program(&mut s, &program)
        .unwrap();
        (s.canonical_dump(), stats)
    };
    let (dump1, stats1) = run(EvalMode::Sequential);
    let (dump2, stats2) = run(EvalMode::Sequential);
    assert_eq!(dump1, dump2, "two sequential runs must emit identical bytes");
    assert_eq!(stats1, stats2);
    let (dump4, stats4) = run(EvalMode::Parallel { workers: 4 });
    assert_eq!(dump1, dump4, "parallel evaluation must emit identical bytes");
    assert_eq!(stats1, stats4);
    assert!(stats1.virtual_objects > 0, "the summary rule creates virtual objects");
}

#[test]
fn engine_options_affect_behaviour_but_not_answers() {
    let structure = pathlog::datagen::genealogy_structure(&GenealogyParams {
        roots: 1,
        depth: 5,
        fanout: 2,
        seed: 1,
    });
    let program = parse_program(
        "X[desc ->> {Y}] <- X[kids ->> {Y}].
         X[desc ->> {Y}] <- X..desc[kids ->> {Y}].",
    )
    .unwrap();
    let mut with_delta = structure.clone();
    let mut without_delta = structure.clone();
    Engine::with_options(EvalOptions {
        delta_driven: true,
        ..EvalOptions::default()
    })
    .load_program(&mut with_delta, &program)
    .unwrap();
    Engine::with_options(EvalOptions {
        delta_driven: false,
        ..EvalOptions::default()
    })
    .load_program(&mut without_delta, &program)
    .unwrap();
    assert_eq!(with_delta.stats().set_members, without_delta.stats().set_members);

    // disabling virtual objects turns the address rule into an error
    let mut s = pathlog::datagen::company_structure(&CompanyParams::scaled(10));
    let address_rule = parse_program("X.address[city -> X.city] <- X : employee.").unwrap();
    let strict = Engine::with_options(EvalOptions {
        create_virtuals: false,
        ..EvalOptions::default()
    });
    assert!(strict.load_program(&mut s, &address_rule).is_err());
}
