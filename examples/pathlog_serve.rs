//! MVCC snapshot serving: many concurrent readers, one writer, push streams.
//!
//! The serving layer (PR 10) turns the object store into a tiny database
//! server:
//!
//! 1. **Pinned reader sessions** — [`ObjectStore::begin_session`] hands out
//!    an epoch-stamped immutable snapshot.  Sessions are `Send` and
//!    lock-free on the read path, so this example fans them to 16 (or
//!    `--sessions N`) reader threads that dump and query their epoch while
//!    the single writer keeps committing ahead of them.
//! 2. **Single-writer commit pipeline** — guarded transactions publish one
//!    epoch per commit; rejected commits roll back and publish nothing.
//!    Every `(epoch, canonical_dump)` a reader observes is cross-checked
//!    bit-for-bit against a **sequential oracle** replay of the identical
//!    history: snapshot isolation, verified, not assumed.
//! 3. **Notify streams** — the reactive layer's push front: a subscriber
//!    receives per-epoch change/firing/quiescence notifications from an
//!    [`ActiveStore`] instead of polling and diffing dumps.
//!
//! Run with:
//!
//! ```text
//! cargo run --release --example pathlog_serve -- --sessions 16 --commits 40 --workers 4
//! ```

use std::collections::BTreeMap;
use std::sync::mpsc;
use std::time::{Duration, Instant};

use pathlog::core::names::Name;
use pathlog::oodb::{CommitError, ObjectStore, Session, Value};
use pathlog::prelude::*;
use pathlog::reactive::{ActiveStore, EcaAction, EcaRule, Event, NotificationKind};

/// The wage floor of the `underpaid` denial constraint.
const WAGE_FLOOR: i64 = 40_000;

struct Args {
    sessions: usize,
    commits: usize,
    workers: usize,
    employees: usize,
}

fn parse_args() -> Args {
    let mut args = Args {
        sessions: 16,
        commits: 40,
        workers: 4,
        employees: 60,
    };
    let mut raw = std::env::args().skip(1);
    while let Some(flag) = raw.next() {
        let value = raw.next().and_then(|v| v.parse::<usize>().ok());
        match (flag.as_str(), value) {
            ("--sessions", Some(n)) if n > 0 => args.sessions = n,
            ("--commits", Some(n)) if n > 0 => args.commits = n,
            ("--workers", Some(n)) if n > 0 => args.workers = n,
            ("--employees", Some(n)) if n > 0 => args.employees = n,
            _ => {
                eprintln!("usage: pathlog_serve [--sessions N] [--commits N] [--workers N] [--employees N]");
                std::process::exit(2);
            }
        }
    }
    args
}

/// The guarded company store every run starts from.  One salary is pinned
/// to the exact floor so the comparison literal's threshold is interned.
fn guarded_store(employees: usize, workers: usize) -> ObjectStore {
    let engine = if workers <= 1 {
        Engine::new()
    } else {
        Engine::with_options(EvalOptions {
            mode: EvalMode::Parallel { workers },
            executor: ExecutorKind::Pooled,
            ..EvalOptions::default()
        })
    };
    let mut db = pathlog::datagen::generate_company(&CompanyParams::scaled(employees));
    db.set("e0", "salary", Value::Int(WAGE_FLOOR)).expect("e0 exists");
    let constraints: ConstraintSet = [
        Constraint::new(
            "self_friend",
            vec![Literal::pos(
                Term::var("X").filter(Filter::set("friends", vec![Term::var("X")])),
            )],
            ConstraintPolicy::Reject,
        )
        .expect("range-restricted"),
        Constraint::new(
            "underpaid",
            vec![
                Literal::pos(
                    Term::var("X")
                        .isa("employee")
                        .filter(Filter::scalar("salary", Term::var("S"))),
                ),
                Literal::pos(Term::var("S").scalar_args("lt", vec![Term::int(WAGE_FLOOR)])),
            ],
            ConstraintPolicy::Reject,
        )
        .expect("range-restricted"),
    ]
    .into_iter()
    .collect();
    db.set_constraints(constraints, engine).expect("constraints install");
    db
}

/// Commit attempt `i` of the schedule shared by the concurrent run and the
/// oracle: friend-edge adds, every fifth an illegal self-friendship the
/// guard must reject.  Returns the published epoch on commit.
fn commit_step(db: &mut ObjectStore, i: usize, employees: usize) -> Option<Epoch> {
    let a = format!("e{}", i % employees);
    if i % 5 == 4 {
        let mut txn = db.begin();
        txn.add(&a, "friends", Value::obj(&a)).expect("stage self-friendship");
        match txn.commit() {
            Err(CommitError::Rejected { .. }) => None,
            other => panic!("self-friendship must be rejected, got {other:?}"),
        }
    } else {
        let mut b = format!("e{}", (i * 7 + 1) % employees);
        if b == a {
            b = format!("e{}", (i * 7 + 2) % employees);
        }
        let mut txn = db.begin();
        txn.add(&a, "friends", Value::obj(&b)).expect("stage friend edge");
        Some(txn.commit().expect("legal commit").epoch.expect("serving active"))
    }
}

/// The query every reader session answers against its pinned snapshot.
fn salary_query() -> Query {
    Query::new(vec![
        Literal::pos(Term::var("X").isa("employee")),
        Literal::pos(Term::var("X").filter(Filter::scalar("salary", Term::var("S")))),
    ])
}

/// Sequential oracle: replay the identical history with no concurrency,
/// recording the canonical dump a session pins after every commit attempt.
fn sequential_oracle(args: &Args) -> BTreeMap<Epoch, String> {
    let mut db = guarded_store(args.employees, 1);
    let mut dumps = BTreeMap::new();
    let bootstrap = db.begin_session();
    dumps.insert(bootstrap.epoch(), bootstrap.canonical_dump());
    drop(bootstrap);
    for i in 0..args.commits {
        commit_step(&mut db, i, args.employees);
        let session = db.begin_session();
        dumps.entry(session.epoch()).or_insert_with(|| session.canonical_dump());
    }
    dumps
}

fn percentile(samples: &[u64], p: f64) -> u64 {
    if samples.is_empty() {
        return 0;
    }
    let mut sorted = samples.to_vec();
    sorted.sort_unstable();
    let rank = ((p / 100.0) * sorted.len() as f64).ceil() as usize;
    sorted[rank.clamp(1, sorted.len()) - 1]
}

/// Fan pinned sessions to reader threads while the writer replays the
/// commit schedule, then cross-check every observed dump against `oracle`.
fn serve(args: &Args, oracle: &BTreeMap<Epoch, String>) {
    let mut db = guarded_store(args.employees, args.workers);

    let (result_tx, result_rx) = mpsc::channel::<(Epoch, String, u64)>();
    let mut feeds = Vec::with_capacity(args.sessions);
    let mut readers = Vec::with_capacity(args.sessions);
    for _ in 0..args.sessions {
        let (tx, rx) = mpsc::channel::<Session>();
        let results = result_tx.clone();
        feeds.push(tx);
        readers.push(std::thread::spawn(move || {
            let query = salary_query();
            for session in rx {
                let start = Instant::now();
                let epoch = session.epoch();
                let dump = session.canonical_dump();
                let answers = session.query(&query).expect("snapshot query serves").len();
                assert!(answers > 0, "the salary query answers on every snapshot");
                let us = start.elapsed().as_micros() as u64;
                if results.send((epoch, dump, us)).is_err() {
                    break;
                }
            }
        }));
    }
    drop(result_tx);

    // Bootstrap round: activate serving before the first commit (the oracle
    // replays the same activation point).
    for feed in &feeds {
        feed.send(db.begin_session()).expect("reader alive");
    }
    let (mut committed, mut rejected) = (0usize, 0usize);
    let mut commit_us = Vec::with_capacity(args.commits);
    for i in 0..args.commits {
        let start = Instant::now();
        let published = commit_step(&mut db, i, args.employees);
        commit_us.push(start.elapsed().as_micros() as u64);
        match published {
            Some(_) => committed += 1,
            None => rejected += 1,
        }
        for feed in &feeds {
            feed.send(db.begin_session()).expect("reader alive");
        }
    }
    drop(feeds);

    let mut read_us = Vec::new();
    let mut epochs_seen = BTreeMap::<Epoch, usize>::new();
    for (epoch, dump, us) in result_rx {
        assert_eq!(
            oracle.get(&epoch),
            Some(&dump),
            "epoch {epoch} dump diverged from the sequential oracle"
        );
        *epochs_seen.entry(epoch).or_default() += 1;
        read_us.push(us);
    }
    for reader in readers {
        reader.join().expect("reader exits cleanly");
    }

    let stats = db.serving_stats();
    assert_eq!(
        db.pinned_epochs(),
        0,
        "epoch leak: sessions dropped but epochs retained"
    );
    println!(
        "== serving {} readers over {} commit attempts ==",
        args.sessions, args.commits
    );
    println!("committed={committed} rejected={rejected} (every fifth attempt is illegal)");
    println!(
        "reads={} across {} epochs ({} publishes, {} pins, {} reclamations, 0 pinned at rest)",
        read_us.len(),
        epochs_seen.len(),
        stats.epochs_published,
        stats.snapshots_pinned,
        stats.snapshots_reclaimed,
    );
    println!(
        "read latency  p50={}us p95={}us p99={}us",
        percentile(&read_us, 50.0),
        percentile(&read_us, 95.0),
        percentile(&read_us, 99.0),
    );
    println!(
        "commit latency p50={}us p95={}us p99={}us",
        percentile(&commit_us, 50.0),
        percentile(&commit_us, 95.0),
        percentile(&commit_us, 99.0),
    );
    println!(
        "every (epoch, canonical_dump) pair a reader observed was bit-identical to the \
         sequential oracle's dump for that epoch."
    );
}

/// The push front: a subscriber thread consumes per-epoch notification
/// streams from an active store instead of polling it.
fn notify_streams() {
    println!("\n== notify streams (active store push front) ==");
    let mut store = ActiveStore::new(Structure::new());
    store.add_rule(EcaRule::new(
        "bonus-follows-salary",
        Event::ScalarAsserted(Name::atom("salary")),
        vec![],
        vec![EcaAction::AssertScalar {
            receiver: Term::var("Receiver"),
            method: Name::atom("bonus"),
            value: Term::var("Value"),
        }],
    ));
    let sub = store.subscribe();
    let consumer = std::thread::spawn(move || {
        let mut lines = Vec::new();
        while let Some(epoch) = sub.next_epoch(Duration::from_secs(5)) {
            let changes = epoch
                .iter()
                .filter(|n| matches!(n.kind, NotificationKind::Change { .. }))
                .count();
            let firings: Vec<&str> = epoch
                .iter()
                .filter_map(|n| match &n.kind {
                    NotificationKind::Firing { rule } => Some(rule.as_str()),
                    _ => None,
                })
                .collect();
            let n = epoch.first().map(|n| n.epoch).unwrap_or_default();
            lines.push(format!(
                "epoch {n}: {changes} changes, {} firings {firings:?}",
                firings.len()
            ));
        }
        lines
    });
    for i in 0..3 {
        let salary = store.oid("salary");
        let employee = store.oid(&format!("e{i}"));
        let amount = store.oid(&format!("v{i}"));
        store.assert_scalar(salary, employee, amount).expect("mutation runs");
    }
    drop(store); // closes the stream; the consumer drains and exits
    for line in consumer.join().expect("consumer exits cleanly") {
        println!("{line}");
    }
    println!("the subscriber saw each mutation's cascade as one epoch-delimited stream.");
}

fn main() {
    let args = parse_args();
    let oracle = sequential_oracle(&args);
    serve(&args, &oracle);
    notify_streams();
}
