//! The paper's object-SQL queries, executed through the SQL frontend.
//!
//! Every SQL text below is (a slightly normalised version of) a query from
//! the paper — O2SQL query (1.1), XSQL queries (1.2)/(1.4), the filtered
//! XSQL-style query (2.2), the Section 2 manager query and the XSQL view
//! (6.3).  Each is compiled to a single PathLog query (printed, so the
//! correspondence is visible) and answered by the PathLog engine.
//!
//! Run with `cargo run --example sql_frontend`.

use pathlog::prelude::*;
use pathlog::sqlfront::{self, StatementResult};

fn main() {
    // The synthetic company workload of Sections 1 and 2.
    let mut structure = pathlog::datagen::company::generate_structure(&CompanyParams::scaled(200));
    let catalog = Catalog::from_schema(&Schema::company());
    println!("workload: {}\n", structure.stats());

    let queries: &[(&str, &str)] = &[
        (
            "query (1.1), O2SQL style",
            "SELECT Y.color FROM X IN employee FROM Y IN X.vehicles WHERE Y IN automobile",
        ),
        (
            "query (1.2), XSQL selectors",
            "SELECT Z FROM employee X, automobile Y WHERE X.vehicles[Y].color[Z]",
        ),
        (
            "query (1.4), XSQL with the 4-cylinder conjunct",
            "SELECT Z FROM employee X, automobile Y WHERE X.vehicles[Y].color[Z] AND Y.cylinders[4]",
        ),
        (
            "query (2.2), PathLog filters inside SQL",
            "SELECT Z FROM employee X, automobile Y
             WHERE X[city -> newYork].vehicles[cylinders -> 4][Y].color[Z]",
        ),
        (
            "the Section 2 manager query",
            "SELECT X FROM X IN manager FROM Y IN X.vehicles
             WHERE Y.color = red AND Y.producedBy.cityOf = detroit AND Y.producedBy.president = X",
        ),
    ];

    for (label, sql) in queries {
        let compiled = sqlfront::compile_query(sql, &catalog).expect("paper query compiles");
        let (columns, rows) = sqlfront::execute_query(&structure, &compiled).expect("paper query executes");
        println!("-- {label}");
        println!("   SQL      : {}", sql.split_whitespace().collect::<Vec<_>>().join(" "));
        println!("   PathLog  : {}", compiled.pathlog_text());
        println!("   columns  : {columns:?}");
        println!("   rows     : {}\n", rows.len());
    }

    // The XSQL view (6.3): materialise it, then query through the view method.
    let results = sqlfront::execute(
        &mut structure,
        "CREATE VIEW employeeBoss SELECT worksFor = D FROM employee X OID FUNCTION OF X WHERE X.worksFor[D];
         SELECT X, D FROM X IN employee WHERE X.employeeBoss.worksFor = D;",
        &catalog,
    )
    .expect("view definition and query execute");
    for result in results {
        match result {
            StatementResult::ViewDefined {
                rule,
                derived_facts,
                virtual_objects,
            } => {
                println!("-- view (6.3) as a PathLog rule");
                println!("   {rule}");
                println!("   materialised {virtual_objects} view objects / {derived_facts} facts\n");
            }
            StatementResult::Rows { columns, rows } => {
                println!("-- querying through the view method");
                println!("   columns: {columns:?}, rows: {}", rows.len());
                for row in rows.iter().take(5) {
                    println!("   {row:?}");
                }
            }
        }
    }
}
