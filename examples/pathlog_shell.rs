//! An interactive PathLog shell: type facts, rules and queries and see the
//! answers immediately.
//!
//! Run with `cargo run --example pathlog_shell`, then e.g.:
//!
//! ```text
//! pathlog> peter[kids ->> {tim, mary}].
//! pathlog> tim[kids ->> {sally}].
//! pathlog> X[desc ->> {Y}] <- X[kids ->> {Y}].
//! pathlog> X[desc ->> {Y}] <- X..desc[kids ->> {Y}].
//! pathlog> ?- peter[desc ->> {Z}].
//! Z = tim
//! Z = mary
//! Z = sally
//! ```
//!
//! Commands: `:stats` prints structure statistics, `:check` runs the type
//! checker, `:quit` exits.

use std::io::{self, BufRead, Write};

use pathlog::prelude::*;

fn main() {
    let mut structure = Structure::new();
    let engine = Engine::new();
    let stdin = io::stdin();
    let mut stdout = io::stdout();

    println!("PathLog shell — facts, rules (head <- body.) and queries (?- body.)");
    print!("pathlog> ");
    stdout.flush().unwrap();

    for line in stdin.lock().lines() {
        let line = match line {
            Ok(l) => l,
            Err(_) => break,
        };
        let input = line.trim();
        match input {
            "" => {}
            ":quit" | ":q" => break,
            ":stats" => println!("{}", structure.stats()),
            ":check" => {
                let errors = pathlog::core::typing::type_check(&structure);
                if errors.is_empty() {
                    println!("no type violations");
                } else {
                    for e in errors {
                        println!("type violation: {e}");
                    }
                }
            }
            _ => match parse_program(input) {
                Ok(program) => {
                    if !program.rules.is_empty() {
                        match engine.load_program(&mut structure, &program) {
                            Ok(stats) => {
                                println!(
                                    "ok ({} facts derived, {} virtual objects)",
                                    stats.derived(),
                                    stats.virtual_objects
                                )
                            }
                            Err(e) => println!("error: {e}"),
                        }
                    }
                    for query in &program.queries {
                        match engine.query(&structure, query) {
                            Ok(solutions) if solutions.is_empty() => println!("no"),
                            Ok(solutions) => {
                                for bindings in solutions {
                                    if bindings.is_empty() {
                                        println!("yes");
                                    } else {
                                        let line: Vec<String> = bindings
                                            .iter()
                                            .map(|(v, o)| format!("{v} = {}", structure.display_name(o)))
                                            .collect();
                                        println!("{}", line.join(", "));
                                    }
                                }
                            }
                            Err(e) => println!("error: {e}"),
                        }
                    }
                }
                Err(e) => println!("error: {e}"),
            },
        }
        print!("pathlog> ");
        stdout.flush().unwrap();
    }
    println!("\nbye");
}
