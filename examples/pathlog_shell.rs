//! An interactive PathLog shell: type facts, rules and queries and see the
//! answers immediately.
//!
//! Run with `cargo run --example pathlog_shell`, then e.g.:
//!
//! ```text
//! pathlog> peter[kids ->> {tim, mary}].
//! pathlog> tim[kids ->> {sally}].
//! pathlog> X[desc ->> {Y}] <- X[kids ->> {Y}].
//! pathlog> X[desc ->> {Y}] <- X..desc[kids ->> {Y}].
//! pathlog> ?- peter[desc ->> {Z}].
//! Z = tim
//! Z = mary
//! Z = sally
//! ```
//!
//! Commands: `:stats` prints structure statistics, `:check` runs the type
//! checker, `:quit` exits.
//!
//! Evaluation is drivable from the command line: `--mode seq|par` selects
//! sequential or parallel rule evaluation and `--workers N` sets the worker
//! count (implies `--mode par` unless `seq` is given explicitly), e.g.
//! `cargo run --example pathlog_shell -- --mode par --workers 4`.  Parallel
//! runs use the engine's persistent worker pool and are bit-identical to
//! sequential ones.
//!
//! `--reactive` skips the interactive loop and runs the active-database
//! demo instead: salary updates pushed through an ECA trigger fan-out on
//! the pooled snapshot-rounds schedule (`--mode`/`--workers` select the
//! executor exactly as for the deductive engine), cross-checked against a
//! sequential run of the same store.
//!
//! `--check FILE...` skips the interactive loop too and runs the static
//! analyzer over each program file instead, printing one
//! `path:line:col: PLxxx severity: message` line per diagnostic (or one
//! JSON object per file with `--json`) and exiting non-zero when any file
//! fails to parse or carries an `Error`-severity diagnostic — the lint
//! gate CI runs over the example corpus.
//!
//! `--explain FILE...` (alone or combined with `--check`) additionally
//! prints what the cost-based join planner would do with each proper rule:
//! the chosen literal order, the seed side (delta-driven or flipped to a
//! cheaper stored index) and the per-literal access-path / selectivity /
//! fact-count estimates, next to the PL0xx diagnostics.  Estimates come
//! from the program's own facts.  With `--json` the per-file object gains
//! a `"plans"` array carrying the same information.

use std::io::{self, BufRead, Write};

use pathlog::core::names::Name;
use pathlog::core::program::Literal;
use pathlog::prelude::*;
use pathlog::reactive::{ActiveOptions, ActiveStats, ActiveStore, CascadeSchedule, EcaAction, EcaRule, Event};

/// What the command line asked for beyond evaluation options.
enum ShellMode {
    /// The interactive read-eval loop.
    Interactive,
    /// The `--reactive` active-database demo.
    Reactive,
    /// `--check`/`--explain [--json] FILE...`: run the static analyzer
    /// over each file, optionally explaining the join plans.
    Check {
        files: Vec<String>,
        json: bool,
        explain: bool,
    },
}

/// Parse `--workers N` / `--mode seq|par` / `--reactive` /
/// `--check`/`--explain [--json] FILE...`; returns the evaluation options
/// and the requested mode.
fn options_from_args() -> (EvalOptions, ShellMode) {
    let mut workers: Option<usize> = None;
    let mut mode: Option<&'static str> = None;
    let mut reactive = false;
    let mut check = false;
    let mut explain = false;
    let mut json = false;
    let mut files: Vec<String> = Vec::new();
    let usage = || -> ! {
        eprintln!(
            "usage: pathlog_shell [--mode seq|par] [--workers N] [--reactive] [--check|--explain [--json] FILE...]"
        );
        std::process::exit(2);
    };
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--workers" => match args.next().and_then(|v| v.parse::<usize>().ok()) {
                Some(n) if n > 0 => workers = Some(n),
                _ => usage(),
            },
            "--mode" => match args.next().as_deref() {
                Some("seq") => mode = Some("seq"),
                Some("par") => mode = Some("par"),
                _ => usage(),
            },
            "--reactive" => reactive = true,
            "--check" => check = true,
            "--explain" => explain = true,
            "--json" => json = true,
            path if (check || explain) && !path.starts_with('-') => files.push(path.to_string()),
            _ => usage(),
        }
    }
    if json && !(check || explain) {
        usage();
    }
    if (check || explain) && (files.is_empty() || reactive) {
        usage();
    }
    let parallel = match mode {
        Some("par") => true,
        Some(_) => false,
        // `--workers N` alone means "evaluate in parallel with N workers".
        None => workers.is_some(),
    };
    let eval_mode = if parallel {
        let workers = workers
            .or_else(|| std::thread::available_parallelism().ok().map(usize::from))
            .unwrap_or(2);
        EvalMode::Parallel { workers }
    } else {
        EvalMode::Sequential
    };
    let shell_mode = if check || explain {
        ShellMode::Check { files, json, explain }
    } else if reactive {
        ShellMode::Reactive
    } else {
        ShellMode::Interactive
    };
    (
        EvalOptions {
            mode: eval_mode,
            ..EvalOptions::default()
        },
        shell_mode,
    )
}

/// One rule's join-plan explanation: what the cost-based planner would do
/// with a small delta on any of the rule's drivable literals.
struct PlanExplanation {
    /// The rule as source text.
    label: String,
    /// Statement start position.
    span: Option<(usize, usize)>,
    /// Positive-literal body indices in chosen execution order; `None` when
    /// the body is not compilable (interpreted fallback).
    order: Option<Vec<usize>>,
    /// `true` when the pass seeds from the delta literal, `false` on a seed
    /// flip to a cheaper stored index (meaningless when `order` is `None`).
    seeded_from_delta: bool,
    /// `(body_index, literal text, positive, access, selectivity, estimate)`
    /// per body literal, in body order.
    literals: Vec<(usize, String, bool, String, String, Option<usize>)>,
}

/// Explain what the join planner does with each proper rule of `program`,
/// consuming the analysis' per-rule cost annotations (which already carry
/// the access-path / selectivity / fact-count estimates).
fn explain_plans(
    program: &pathlog::core::program::Program,
    analysis: &pathlog::core::analysis::Analysis,
) -> Vec<PlanExplanation> {
    use pathlog::core::analysis::RuleKind;
    use pathlog::core::plan::{compile, pass_order};

    let reports = analysis.plans.iter().filter(|p| p.kind == RuleKind::Rule);
    program
        .rules
        .iter()
        .filter(|r| !r.is_fact())
        .zip(reports)
        .map(|(rule, report)| {
            let literals = report
                .literals
                .iter()
                .enumerate()
                .map(|(i, lp)| {
                    (
                        i,
                        lp.literal.clone(),
                        lp.positive,
                        format!("{:?}", lp.access),
                        format!("{:?}", lp.selectivity),
                        lp.estimated_facts,
                    )
                })
                .collect();
            let compiled = compile(rule, report);
            let (order, seeded_from_delta) = match &compiled {
                Some(c) => {
                    // Order for the canonical small-delta pass: every
                    // positive literal is drivable, the delta holds one
                    // entry.
                    let drivable: Vec<usize> = c.positives().iter().map(|p| p.body_index).collect();
                    let o = pass_order(c, &drivable, 1);
                    (Some(o.positions), o.seeded_from_delta)
                }
                None => (None, false),
            };
            PlanExplanation {
                label: report.label.clone(),
                span: report.span.map(|s| (s.line, s.column)),
                order,
                seeded_from_delta,
                literals,
            }
        })
        .collect()
}

/// Print one rule's plan explanation, `path:line:col:`-prefixed so the
/// lines sit greppably next to the PL0xx diagnostics.
fn print_plan(path: &str, p: &PlanExplanation) {
    let prefix = match p.span {
        Some((l, c)) => format!("{path}:{l}:{c}"),
        None => path.to_string(),
    };
    println!("{prefix}: plan: {}", p.label);
    match &p.order {
        Some(order) => {
            let steps: Vec<String> = order
                .iter()
                .map(|&i| {
                    let (_, text, _, access, sel, est) = &p.literals[i];
                    let est = est.map_or_else(|| "?".to_string(), |n| n.to_string());
                    format!("[{i}] {text} ({access}/{sel}, est {est})")
                })
                .collect();
            println!("{prefix}:   order: {}", steps.join(" ; "));
            println!(
                "{prefix}:   seed: {}",
                if p.seeded_from_delta {
                    "delta-driven"
                } else {
                    "stored index (seed flip)"
                }
            );
        }
        None => println!("{prefix}:   interpreted (body not reorderable)"),
    }
    let negs: Vec<String> = p
        .literals
        .iter()
        .filter(|(_, _, positive, _, _, _)| !positive)
        .map(|(i, text, _, _, _, _)| format!("[{i}] {text}"))
        .collect();
    if !negs.is_empty() {
        println!("{prefix}:   negations after joins: {}", negs.join(" ; "));
    }
}

/// Serialize one rule's plan explanation as a JSON object.
fn plan_to_json(p: &PlanExplanation) -> String {
    use pathlog::core::analysis::json_escape;

    let (line, column) = match p.span {
        Some((l, c)) => (l.to_string(), c.to_string()),
        None => ("null".to_string(), "null".to_string()),
    };
    let order = match &p.order {
        Some(o) => format!("[{}]", o.iter().map(|i| i.to_string()).collect::<Vec<_>>().join(",")),
        None => "null".to_string(),
    };
    let seed = match &p.order {
        Some(_) if p.seeded_from_delta => "\"delta\"".to_string(),
        Some(_) => "\"index\"".to_string(),
        None => "null".to_string(),
    };
    let literals: Vec<String> = p
        .literals
        .iter()
        .map(|(i, text, positive, access, sel, est)| {
            format!(
                "{{\"index\":{i},\"literal\":\"{}\",\"positive\":{positive},\"access\":\"{access}\",\
                 \"selectivity\":\"{sel}\",\"estimated_facts\":{}}}",
                json_escape(text),
                est.map_or_else(|| "null".to_string(), |n| n.to_string())
            )
        })
        .collect();
    format!(
        "{{\"rule\":\"{}\",\"line\":{line},\"column\":{column},\"order\":{order},\"seed\":{seed},\"literals\":[{}]}}",
        json_escape(&p.label),
        literals.join(",")
    )
}

/// `--check` / `--explain` mode: parse and statically analyze each file.
/// Prints one line (or, with `json`, one JSON object) per diagnostic —
/// plus, with `explain`, the planner's chosen literal order, seed side and
/// per-literal estimates for each proper rule — and returns the process
/// exit code: 0 when every file parses and carries no `Error`-severity
/// diagnostic, 1 otherwise.
///
/// With `json` the document is an object, not a bare array: a `"meta"`
/// block records the evaluation options and the invocation's engine
/// counters — including the serving-layer counters `epochs_published`,
/// `snapshots_pinned` and `snapshots_reclaimed` from [`EvalStats`] — then
/// the per-file entries follow under `"files"`.  The static gate performs
/// no evaluation, so its counters are zero; the keys exist so downstream
/// tooling reads one stable schema whether or not a shell invocation
/// evaluated anything.
fn check_files(files: &[String], json: bool, explain: bool, options: &EvalOptions) -> i32 {
    use pathlog::core::analysis::{json_escape, AnalysisInput};
    use pathlog::parser::parse_program_spanned;

    let mut failed = false;
    let mut json_entries: Vec<String> = Vec::new();
    for path in files {
        let source = match std::fs::read_to_string(path) {
            Ok(s) => s,
            Err(e) => {
                failed = true;
                if json {
                    json_entries.push(format!(
                        "{{\"file\":\"{}\",\"error\":\"{}\"}}",
                        json_escape(path),
                        json_escape(&e.to_string())
                    ));
                } else {
                    eprintln!("{path}: error: {e}");
                }
                continue;
            }
        };
        match parse_program_spanned(&source) {
            Ok(spanned) => {
                // Explain mode estimates selectivities from the program's
                // own facts: load just the fact statements into a scratch
                // structure and hand it to the analyzer.
                let facts_structure = explain.then(|| {
                    let facts = pathlog::core::program::Program {
                        rules: spanned.program.rules.iter().filter(|r| r.is_fact()).cloned().collect(),
                        queries: Vec::new(),
                    };
                    let mut s = Structure::new();
                    let _ = Engine::new().load_program(&mut s, &facts);
                    s
                });
                let mut input = AnalysisInput::new()
                    .program(&spanned.program)
                    .rule_spans(&spanned.rule_spans)
                    .query_spans(&spanned.query_spans);
                if let Some(s) = &facts_structure {
                    input = input.structure(s);
                }
                let analysis = input.run();
                failed |= !analysis.no_errors();
                let plans = if explain {
                    explain_plans(&spanned.program, &analysis)
                } else {
                    Vec::new()
                };
                if json {
                    let plans_json = if explain {
                        let entries: Vec<String> = plans.iter().map(plan_to_json).collect();
                        format!(",\"plans\":[{}]", entries.join(","))
                    } else {
                        String::new()
                    };
                    json_entries.push(format!(
                        "{{\"file\":\"{}\",\"errors\":{},\"warnings\":{},\"diagnostics\":{}{}}}",
                        json_escape(path),
                        analysis.diagnostics.error_count(),
                        analysis.diagnostics.warning_count(),
                        analysis.diagnostics.to_json(),
                        plans_json
                    ));
                } else {
                    for d in analysis.diagnostics.iter() {
                        println!("{path}:{d}");
                    }
                    for p in &plans {
                        print_plan(path, p);
                    }
                }
            }
            Err(e) => {
                // A file that does not parse cannot be analyzed: report the
                // parse error at its position and count it as a failure.
                failed = true;
                if json {
                    json_entries.push(format!(
                        "{{\"file\":\"{}\",\"parse_error\":{{\"line\":{},\"column\":{},\"message\":\"{}\"}}}}",
                        json_escape(path),
                        e.line,
                        e.column,
                        json_escape(&e.message)
                    ));
                } else {
                    println!("{path}:{}:{}: parse error: {}", e.line, e.column, e.message);
                }
            }
        }
    }
    if json {
        let stats = EvalStats::default();
        let (mode, workers) = match options.mode {
            EvalMode::Sequential => ("seq", 1),
            EvalMode::Parallel { workers } => ("par", workers),
        };
        println!(
            "{{\"meta\":{{\"mode\":\"{mode}\",\"workers\":{workers},\
             \"epochs_published\":{},\"snapshots_pinned\":{},\"snapshots_reclaimed\":{}}},\
             \"files\":[{}]}}",
            stats.epochs_published,
            stats.snapshots_pinned,
            stats.snapshots_reclaimed,
            json_entries.join(",")
        );
    }
    i32::from(failed)
}

/// An active store over a tiny payroll with a salary-event fan-out (three
/// rules on one event, one cascaded audit rule) on the given schedule/mode.
fn demo_store(schedule: CascadeSchedule, mode: EvalMode) -> ActiveStore {
    let mut s = Structure::new();
    let employee = s.atom("employee");
    for name in ["ann", "bob", "cleo"] {
        let p = s.atom(name);
        s.add_isa(p, employee);
    }
    let mut store = ActiveStore::with_options(
        s,
        ActiveOptions {
            schedule,
            mode,
            ..ActiveOptions::default()
        },
    );
    store.add_rule(EcaRule::new(
        "mark-paid",
        Event::ScalarAsserted(Name::atom("salary")),
        vec![Literal::pos(Term::var("Receiver").isa("employee"))],
        vec![EcaAction::AddIsA {
            object: Term::var("Receiver"),
            class: Name::atom("paid"),
        }],
    ));
    store.add_rule(EcaRule::new(
        "keep-history",
        Event::ScalarAsserted(Name::atom("salary")),
        vec![Literal::pos(Term::var("Receiver").isa("employee"))],
        vec![EcaAction::AddSetMember {
            receiver: Term::var("Receiver"),
            method: Name::atom("payHistory"),
            member: Term::var("Value"),
        }],
    ));
    store.add_rule(EcaRule::new(
        "derive-bonus",
        Event::ScalarAsserted(Name::atom("salary")),
        vec![],
        vec![EcaAction::AssertScalar {
            receiver: Term::var("Receiver"),
            method: Name::atom("bonusBase"),
            value: Term::var("Value"),
        }],
    ));
    store.add_rule(EcaRule::new(
        "audit",
        Event::ScalarAsserted(Name::atom("bonusBase")),
        vec![],
        vec![EcaAction::AddIsA {
            object: Term::var("Receiver"),
            class: Name::atom("audited"),
        }],
    ));
    store
}

/// Push the demo's salary updates through `store`, printing per-mutation
/// firings; returns the aggregate stats and the final canonical dump.
fn run_demo(store: &mut ActiveStore, verbose: bool) -> (ActiveStats, String) {
    let salary = store.oid("salary");
    let mut total = ActiveStats::default();
    for (name, pay) in [("ann", 900), ("bob", 1500), ("cleo", 2000)] {
        let p = store.oid(name);
        let amount = store.int(pay);
        let stats = store.assert_scalar(salary, p, amount).expect("triggers run");
        if verbose {
            println!(
                "  {name}[salary -> {pay}]: {} firings, {} mutations, depth {}",
                stats.firings, stats.mutations, stats.max_depth_reached
            );
        }
        total.merge(&stats);
    }
    (total, store.structure().canonical_dump())
}

/// The `--reactive` demo: the pooled active store versus a sequential run of
/// the same rule set (the results must be bit-identical).
fn reactive_demo(options: EvalOptions) {
    match options.mode {
        EvalMode::Sequential => println!("reactive demo: snapshot-rounds schedule, sequential"),
        EvalMode::Parallel { workers } => {
            println!("reactive demo: snapshot-rounds schedule, pooled condition batches ({workers} workers)")
        }
    }
    let mut store = demo_store(CascadeSchedule::Rounds, options.mode);
    let (total, dump) = run_demo(&mut store, true);
    println!(
        "quiescent: {} firings, {} mutations, max cascade depth {}",
        total.firings, total.mutations, total.max_depth_reached
    );
    let mut reference = demo_store(CascadeSchedule::Rounds, EvalMode::Sequential);
    let (ref_total, ref_dump) = run_demo(&mut reference, false);
    assert_eq!(total, ref_total, "pooled stats must match sequential");
    assert_eq!(dump, ref_dump, "pooled structure must match sequential");
    println!("cross-check: bit-identical to the sequential run");
    let structure = store.into_structure();
    let audited = structure.lookup_name(&Name::atom("audited")).expect("audited class");
    println!("audited employees: {}", structure.instances_of(audited).count());
}

fn main() {
    let (options, mode) = options_from_args();
    match mode {
        ShellMode::Check { files, json, explain } => std::process::exit(check_files(&files, json, explain, &options)),
        ShellMode::Reactive => {
            reactive_demo(options);
            return;
        }
        ShellMode::Interactive => {}
    }
    let mut structure = Structure::new();
    let engine = Engine::with_options(options);
    let stdin = io::stdin();
    let mut stdout = io::stdout();

    println!("PathLog shell — facts, rules (head <- body.) and queries (?- body.)");
    match options.mode {
        EvalMode::Sequential => println!("evaluation: sequential (use --mode par / --workers N for parallel)"),
        EvalMode::Parallel { workers } => println!("evaluation: parallel, {workers} workers (pooled executor)"),
    }
    print!("pathlog> ");
    stdout.flush().unwrap();

    for line in stdin.lock().lines() {
        let line = match line {
            Ok(l) => l,
            Err(_) => break,
        };
        let input = line.trim();
        match input {
            "" => {}
            ":quit" | ":q" => break,
            ":stats" => println!("{}", structure.stats()),
            ":check" => {
                let errors = pathlog::core::typing::type_check(&structure);
                if errors.is_empty() {
                    println!("no type violations");
                } else {
                    for e in errors {
                        println!("type violation: {e}");
                    }
                }
            }
            _ => match parse_program(input) {
                Ok(program) => {
                    if !program.rules.is_empty() {
                        match engine.load_program(&mut structure, &program) {
                            Ok(stats) => {
                                println!(
                                    "ok ({} facts derived, {} virtual objects)",
                                    stats.derived(),
                                    stats.virtual_objects
                                )
                            }
                            Err(e) => println!("error: {e}"),
                        }
                    }
                    for query in &program.queries {
                        match engine.query(&structure, query) {
                            Ok(solutions) if solutions.is_empty() => println!("no"),
                            Ok(solutions) => {
                                for bindings in solutions {
                                    if bindings.is_empty() {
                                        println!("yes");
                                    } else {
                                        let line: Vec<String> = bindings
                                            .iter()
                                            .map(|(v, o)| format!("{v} = {}", structure.display_name(o)))
                                            .collect();
                                        println!("{}", line.join(", "));
                                    }
                                }
                            }
                            Err(e) => println!("error: {e}"),
                        }
                    }
                }
                Err(e) => println!("error: {e}"),
            },
        }
        print!("pathlog> ");
        stdout.flush().unwrap();
    }
    println!("\nbye");
}
