//! An interactive PathLog shell: type facts, rules and queries and see the
//! answers immediately.
//!
//! Run with `cargo run --example pathlog_shell`, then e.g.:
//!
//! ```text
//! pathlog> peter[kids ->> {tim, mary}].
//! pathlog> tim[kids ->> {sally}].
//! pathlog> X[desc ->> {Y}] <- X[kids ->> {Y}].
//! pathlog> X[desc ->> {Y}] <- X..desc[kids ->> {Y}].
//! pathlog> ?- peter[desc ->> {Z}].
//! Z = tim
//! Z = mary
//! Z = sally
//! ```
//!
//! Commands: `:stats` prints structure statistics, `:check` runs the type
//! checker, `:quit` exits.
//!
//! Evaluation is drivable from the command line: `--mode seq|par` selects
//! sequential or parallel rule evaluation and `--workers N` sets the worker
//! count (implies `--mode par` unless `seq` is given explicitly), e.g.
//! `cargo run --example pathlog_shell -- --mode par --workers 4`.  Parallel
//! runs use the engine's persistent worker pool and are bit-identical to
//! sequential ones.

use std::io::{self, BufRead, Write};

use pathlog::prelude::*;

/// Parse `--workers N` / `--mode seq|par` into evaluation options.
fn options_from_args() -> EvalOptions {
    let mut workers: Option<usize> = None;
    let mut mode: Option<&'static str> = None;
    let usage = || -> ! {
        eprintln!("usage: pathlog_shell [--mode seq|par] [--workers N]");
        std::process::exit(2);
    };
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--workers" => match args.next().and_then(|v| v.parse::<usize>().ok()) {
                Some(n) if n > 0 => workers = Some(n),
                _ => usage(),
            },
            "--mode" => match args.next().as_deref() {
                Some("seq") => mode = Some("seq"),
                Some("par") => mode = Some("par"),
                _ => usage(),
            },
            _ => usage(),
        }
    }
    let parallel = match mode {
        Some("par") => true,
        Some(_) => false,
        // `--workers N` alone means "evaluate in parallel with N workers".
        None => workers.is_some(),
    };
    let eval_mode = if parallel {
        let workers = workers
            .or_else(|| std::thread::available_parallelism().ok().map(usize::from))
            .unwrap_or(2);
        EvalMode::Parallel { workers }
    } else {
        EvalMode::Sequential
    };
    EvalOptions {
        mode: eval_mode,
        ..EvalOptions::default()
    }
}

fn main() {
    let options = options_from_args();
    let mut structure = Structure::new();
    let engine = Engine::with_options(options);
    let stdin = io::stdin();
    let mut stdout = io::stdout();

    println!("PathLog shell — facts, rules (head <- body.) and queries (?- body.)");
    match options.mode {
        EvalMode::Sequential => println!("evaluation: sequential (use --mode par / --workers N for parallel)"),
        EvalMode::Parallel { workers } => println!("evaluation: parallel, {workers} workers (pooled executor)"),
    }
    print!("pathlog> ");
    stdout.flush().unwrap();

    for line in stdin.lock().lines() {
        let line = match line {
            Ok(l) => l,
            Err(_) => break,
        };
        let input = line.trim();
        match input {
            "" => {}
            ":quit" | ":q" => break,
            ":stats" => println!("{}", structure.stats()),
            ":check" => {
                let errors = pathlog::core::typing::type_check(&structure);
                if errors.is_empty() {
                    println!("no type violations");
                } else {
                    for e in errors {
                        println!("type violation: {e}");
                    }
                }
            }
            _ => match parse_program(input) {
                Ok(program) => {
                    if !program.rules.is_empty() {
                        match engine.load_program(&mut structure, &program) {
                            Ok(stats) => {
                                println!(
                                    "ok ({} facts derived, {} virtual objects)",
                                    stats.derived(),
                                    stats.virtual_objects
                                )
                            }
                            Err(e) => println!("error: {e}"),
                        }
                    }
                    for query in &program.queries {
                        match engine.query(&structure, query) {
                            Ok(solutions) if solutions.is_empty() => println!("no"),
                            Ok(solutions) => {
                                for bindings in solutions {
                                    if bindings.is_empty() {
                                        println!("yes");
                                    } else {
                                        let line: Vec<String> = bindings
                                            .iter()
                                            .map(|(v, o)| format!("{v} = {}", structure.display_name(o)))
                                            .collect();
                                        println!("{}", line.join(", "));
                                    }
                                }
                            }
                            Err(e) => println!("error: {e}"),
                        }
                    }
                }
                Err(e) => println!("error: {e}"),
            },
        }
        print!("pathlog> ");
        stdout.flush().unwrap();
    }
    println!("\nbye");
}
