//! Transitive closure (Section 6): the `desc` rules (6.4), the *generic*
//! `kids.tc` closure, and the relational semi-naive baseline.
//!
//! Run with `cargo run --release --example transitive_closure [depth] [fanout]`.

use std::time::Instant;

use pathlog::baseline::relational::tc;
use pathlog::baseline::RelationalDb;
use pathlog::prelude::*;

fn main() {
    // --- The exact family of the paper --------------------------------------
    let mut family = pathlog::datagen::paper_family().to_structure();
    let engine = Engine::new();
    // The generic closure rules, guarded by a base-method class so that `tc`
    // is only applied to the extensionally given method `kids` (see DESIGN.md
    // on why the unguarded paper rules do not terminate bottom-up).
    let program = parse_program(
        "kids : baseMethod.
         X[(M.tc) ->> {Y}] <- M : baseMethod, X[M ->> {Y}].
         X[(M.tc) ->> {Y}] <- M : baseMethod, X..(M.tc)[M ->> {Y}].",
    )
    .unwrap();
    engine.load_program(&mut family, &program).unwrap();
    let closure = engine
        .eval_ground(&family, &parse_term("peter..(kids.tc)").unwrap())
        .unwrap();
    let mut names: Vec<String> = closure.iter().map(|&o| family.display_name(o).into_owned()).collect();
    names.sort();
    println!("peter[(kids.tc) ->> {{{}}}]", names.join(", "));
    assert_eq!(names, ["mary", "paul", "sally", "tim", "tom"]);

    // --- A bigger synthetic genealogy ---------------------------------------
    let depth: usize = std::env::args().nth(1).and_then(|s| s.parse().ok()).unwrap_or(6);
    let fanout: usize = std::env::args().nth(2).and_then(|s| s.parse().ok()).unwrap_or(2);
    let structure = pathlog::datagen::genealogy_structure(&GenealogyParams {
        roots: 1,
        depth,
        fanout,
        seed: 42,
    });
    println!("\ngenealogy depth={depth} fanout={fanout}: {}", structure.stats());

    let desc_rules = parse_program(
        "X[desc ->> {Y}] <- X[kids ->> {Y}].
         X[desc ->> {Y}] <- X..desc[kids ->> {Y}].",
    )
    .unwrap();
    let mut s = structure.clone();
    let start = Instant::now();
    let stats = engine.load_program(&mut s, &desc_rules).unwrap();
    println!(
        "desc rules (6.4): {} closure pairs in {:.2?} ({} iterations, {} strata)",
        stats.set_members,
        start.elapsed(),
        stats.iterations,
        stats.strata
    );

    let db = RelationalDb::from_structure(&structure);
    let start = Instant::now();
    let closure = tc::transitive_closure(&db.attr("kids", "parent", "child"));
    println!(
        "relational semi-naive closure: {} pairs in {:.2?}",
        closure.len(),
        start.elapsed()
    );
    assert_eq!(closure.len(), stats.set_members);

    // descendants of the root, queried through a path
    let root_desc = engine.eval_ground(&s, &parse_term("p0_0..desc").unwrap()).unwrap();
    println!("descendants of the root person: {}", root_desc.len());
}
