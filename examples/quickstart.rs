//! Quickstart: build a small object base, load a PathLog program and ask
//! queries — the 60-second tour of the API.
//!
//! Run with `cargo run --example quickstart`.

use pathlog::prelude::*;

fn main() {
    // 1. An extensional database, checked against a schema.
    let mut db = ObjectStore::with_schema(Schema::company());
    db.create("mary", "employee").unwrap();
    db.create("john", "employee").unwrap();
    db.create("a1", "automobile").unwrap();
    db.create("v1", "vehicle").unwrap();
    db.set("mary", "age", Value::Int(30)).unwrap();
    db.set("mary", "city", Value::Atom("newYork".into())).unwrap();
    db.set("john", "age", Value::Int(41)).unwrap();
    db.set("john", "city", Value::Atom("detroit".into())).unwrap();
    db.add("mary", "vehicles", Value::obj("a1")).unwrap();
    db.add("john", "vehicles", Value::obj("v1")).unwrap();
    db.set("a1", "color", Value::Atom("red".into())).unwrap();
    db.set("a1", "cylinders", Value::Int(4)).unwrap();
    db.set("v1", "color", Value::Atom("blue".into())).unwrap();
    db.integrity_check().unwrap();

    // 2. Convert it into a semantic structure I = (U, isa, I_N, I_->, I_->>).
    let mut structure = db.to_structure();
    println!("extensional database: {}", structure.stats());

    // 3. Load intensional knowledge: every employee gets an address object.
    let program = parse_program(
        "X.address[city -> X.city] <- X : employee.
         ?- X : employee..vehicles : automobile[cylinders -> 4].color[Z].",
    )
    .unwrap();
    let engine = Engine::new();
    let stats = engine.load_program(&mut structure, &program).unwrap();
    println!(
        "after rule evaluation: {} ({} virtual objects)",
        structure.stats(),
        stats.virtual_objects
    );

    // 4. Ask the paper's query 2.1-style question: colours of 4-cylinder
    //    automobiles owned by employees.
    let query = &program.queries[0];
    for bindings in engine.query(&structure, query).unwrap() {
        let x = bindings.get(&Var::new("X")).unwrap();
        let z = bindings.get(&Var::new("Z")).unwrap();
        println!(
            "employee {} owns a 4-cylinder automobile coloured {}",
            structure.display_name(x),
            structure.display_name(z)
        );
    }

    // 5. Reference the virtual address object through a path.
    let term = parse_term("mary.address.city").unwrap();
    for city in engine.eval_ground(&structure, &term).unwrap() {
        println!("mary.address.city = {}", structure.display_name(city));
    }
}
