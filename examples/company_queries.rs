//! The motivating queries of Sections 1 and 2 on a generated company
//! database, evaluated three ways: as a single PathLog reference, as an
//! O2SQL-style one-dimensional query, and as a flat relational join plan.
//!
//! Run with `cargo run --release --example company_queries [employees]`.

use std::collections::BTreeSet;
use std::time::Instant;

use pathlog::baseline::relational::queries as relq;
use pathlog::baseline::RelationalDb;
use pathlog::prelude::*;

fn main() {
    let employees: usize = std::env::args().nth(1).and_then(|s| s.parse().ok()).unwrap_or(1_000);
    println!("generating a company database with {employees} employees ...");
    let structure = pathlog::datagen::company_structure(&CompanyParams::scaled(employees));
    println!("  {}", structure.stats());
    let db = RelationalDb::from_structure(&structure);
    let engine = Engine::new();

    // --- Query (1.1)/(2.1): colours of employees' automobiles -------------
    let reference =
        parse_term("X : employee[age -> 30; city -> newYork]..vehicles : automobile[cylinders -> 4].color[Z]").unwrap();
    println!("\nPathLog reference:\n  {reference}");
    let start = Instant::now();
    let answers = engine.query_term(&structure, &reference).unwrap();
    let colours: BTreeSet<Oid> = answers.iter().map(|a| a.object).collect();
    println!(
        "  -> {} colour(s) of 4-cylinder automobiles of 30-year-old New-Yorkers in {:.2?}",
        colours.len(),
        start.elapsed()
    );
    for c in &colours {
        println!("     {}", structure.display_name(*c));
    }

    // The same question with one-dimensional paths (query 1.4): the second
    // dimension has to be unfolded into separate WHERE clauses.
    let q = OneDimQuery::new()
        .from_class("X", "employee")
        .from_set("Y", "X", "vehicles")
        .where_path_const("X", &["age"], Name::Int(30))
        .where_path_const("X", &["city"], Name::atom("newYork"))
        .where_isa("Y", "automobile")
        .where_path_const("Y", &["cylinders"], Name::Int(4))
        .select_path("Y", &["color"]);
    let start = Instant::now();
    let onedim = pathlog::baseline::evaluate_onedim(&structure, &q);
    println!(
        "O2SQL-style conjunction of paths -> {} colour(s) in {:.2?}",
        onedim.len(),
        start.elapsed()
    );

    // And flat relations (six joins).
    let start = Instant::now();
    let relational = relq::filtered_automobile_colours(&structure, &db);
    println!(
        "relational join plan             -> {} colour(s) in {:.2?}",
        relational.len(),
        start.elapsed()
    );

    // --- The Section 2 manager query ---------------------------------------
    let reference =
        parse_term("X : manager..vehicles[color -> red].producedBy[cityOf -> detroit; president -> X]").unwrap();
    println!("\nPathLog reference:\n  {reference}");
    let start = Instant::now();
    let managers: BTreeSet<Oid> = engine
        .query_term(&structure, &reference)
        .unwrap()
        .into_iter()
        .filter_map(|a| a.bindings.get(&Var::new("X")))
        .collect();
    println!(
        "  -> {} manager(s) presiding over the Detroit producer of their red vehicle in {:.2?}",
        managers.len(),
        start.elapsed()
    );
    let start = Instant::now();
    let rel = relq::manager_red_detroit_presidents(&structure, &db);
    println!(
        "relational join plan -> {} manager(s) in {:.2?}",
        rel.len(),
        start.elapsed()
    );
    assert_eq!(managers.len(), rel.len(), "PathLog and the baseline must agree");
}
