//! Production rules and active rules sharing PathLog's references.
//!
//! The paper's conclusion: the way a rule set is evaluated is orthogonal to
//! how objects are referenced, so the same path expressions work for
//! "production rules or active rules".  This example runs both:
//!
//! 1. a production system that raises every employee salary below a minimum
//!    wage (retracting the old fact — something deductive rules cannot do)
//!    and gives every manager a virtual company car;
//! 2. an active store whose triggers react to salary updates by maintaining
//!    a derived `bonusBase` attribute and an audit class.
//!
//! Run with `cargo run --example reactive_rules`.

use pathlog::core::names::Name;
use pathlog::core::program::Literal;
use pathlog::core::term::{Filter, Term};
use pathlog::prelude::*;
use pathlog::reactive::{ActiveStore, EcaAction, Event};

fn main() {
    production_rules();
    active_rules();
}

/// Forward-chaining production rules over the company workload.
fn production_rules() {
    let mut structure = pathlog::datagen::company::generate_structure(&CompanyParams::scaled(100));
    // The threshold must exist in the universe for the comparison built-in.
    structure.int(60_000);
    println!("== production rules ==");
    println!("before: {}", structure.stats());

    let mut engine = ProductionEngine::new();
    // IF X : employee[salary -> S], S.lt@(60000)
    // THEN retract X[salary -> S]; assert X[salary -> 60000].
    engine.add_rule(
        ProductionRule::new(
            "minimum-wage",
            vec![
                Literal::pos(
                    Term::var("X")
                        .isa("employee")
                        .filter(Filter::scalar("salary", Term::var("S"))),
                ),
                Literal::pos(Term::var("S").scalar_args("lt", vec![Term::int(60_000)])),
            ],
            vec![
                Action::Retract(Term::var("X").filter(Filter::scalar("salary", Term::var("S")))),
                Action::Assert(Term::var("X").filter(Filter::scalar("salary", Term::int(60_000)))),
            ],
        )
        .with_priority(10),
    );
    // IF X : manager THEN assert X.companyCar[color -> black]  (a virtual object).
    engine.add_rule(ProductionRule::new(
        "company-car",
        vec![Literal::pos(Term::var("X").isa("manager"))],
        vec![Action::Assert(
            Term::var("X")
                .scalar("companyCar")
                .filter(Filter::scalar("color", Term::name("black"))),
        )],
    ));

    let (stats, trace) = engine
        .run_traced(&mut structure)
        .expect("production rules reach quiescence");
    println!(
        "after {} cycles: {} firings, {} asserted, {} retracted, {} virtual company cars",
        stats.cycles, stats.firings, stats.asserted, stats.retracted, stats.virtual_objects
    );
    for firing in trace.iter().take(5) {
        println!("  cycle {:>3}: {}", firing.cycle, firing.rule);
    }
    println!("after: {}\n", structure.stats());
}

/// Event–condition–action triggers over an active store.
fn active_rules() {
    println!("== active rules ==");
    let base = pathlog::datagen::company::generate_structure(&CompanyParams::scaled(50));
    let mut store = ActiveStore::new(base);

    // ON assert salary IF the receiver is an employee DO derive its bonus base.
    store.add_rule(EcaRule::new(
        "derive-bonus",
        Event::ScalarAsserted(Name::atom("salary")),
        vec![Literal::pos(Term::var("Receiver").isa("employee"))],
        vec![EcaAction::AssertScalar {
            receiver: Term::var("Receiver"),
            method: Name::atom("bonusBase"),
            value: Term::var("Value"),
        }],
    ));
    // ON assert bonusBase DO mark the employee for auditing (a cascade).
    store.add_rule(EcaRule::new(
        "audit",
        Event::ScalarAsserted(Name::atom("bonusBase")),
        vec![],
        vec![EcaAction::AddIsA {
            object: Term::var("Receiver"),
            class: Name::atom("audited"),
        }],
    ));

    let salary = store.oid("salary");
    let employee = store.oid("e0");
    let raise = store.int(99_000);
    // The employee already has a salary fact; retract it first, then set the
    // new one — both mutations go through the trigger layer.
    store.retract_scalar(salary, employee).expect("retraction triggers run");
    let stats = store
        .assert_scalar(salary, employee, raise)
        .expect("assertion triggers run");
    println!(
        "one salary update fired {} triggers, {} mutations, cascade depth {}",
        stats.firings, stats.mutations, stats.max_depth_reached
    );

    let structure = store.into_structure();
    let audited = structure
        .lookup_name(&Name::atom("audited"))
        .expect("audited class exists");
    println!("audited objects: {}", structure.instances_of(audited).count());
}
