//! Parts explosion: the Section 6 transitive-closure rules on a
//! bill-of-materials hierarchy.
//!
//! The paper demonstrates `desc` and the generic `kids.tc` on a small family;
//! the classic database workload with the same shape is the parts explosion
//! ("which parts does this assembly transitively contain?").  This example
//! runs three formulations on a generated parts DAG and reports that they
//! agree:
//!
//! * the concrete PathLog rules (`desc`),
//! * the generic `subparts.tc` rules (a method applied to a *method*),
//! * the relational semi-naive baseline.
//!
//! Run with `cargo run --example parts_explosion`.

use std::collections::BTreeSet;

use pathlog::baseline::{self, RelationalDb};
use pathlog::datagen::BomParams;
use pathlog::prelude::*;

fn main() {
    for depth in [2usize, 3, 4] {
        let params = BomParams {
            depth,
            ..BomParams::default()
        };
        let structure = pathlog::datagen::bom::generate_structure(&params);
        println!("== parts hierarchy, depth {depth}: {}", structure.stats());

        // 1. Concrete rules (6.4), with `subparts` in place of `kids`.
        let mut with_desc = structure.clone();
        let program = parse_program(
            "X[contains ->> {Y}] <- X[subparts ->> {Y}].
             X[contains ->> {Y}] <- X..contains[subparts ->> {Y}].",
        )
        .expect("closure rules parse");
        let stats = Engine::new()
            .load_program(&mut with_desc, &program)
            .expect("closure rules evaluate");
        let desc_members = stats.set_members;

        // 2. The generic tc method of Section 6 applied to `subparts`.
        let mut with_tc = structure.clone();
        let program = parse_program(
            "subparts : baseMethod.
             X[(M.tc) ->> {Y}] <- M : baseMethod, X[M ->> {Y}].
             X[(M.tc) ->> {Y}] <- M : baseMethod, X..(M.tc)[M ->> {Y}].",
        )
        .expect("generic tc rules parse");
        Engine::new()
            .load_program(&mut with_tc, &program)
            .expect("generic tc rules evaluate");

        // 3. The relational baseline: semi-naive closure of the subparts relation.
        let db = RelationalDb::from_structure(&structure);
        let subparts = db.attr("subparts", "parent", "child");
        let closure = baseline::tc::transitive_closure(&subparts);

        // All three agree on the parts contained in the first assembly.
        let asm0 = structure
            .lookup_name(&pathlog::core::names::Name::atom("asm0"))
            .expect("asm0 exists");
        let via_desc = members_of(&with_desc, "contains", asm0);
        let via_tc = members_of_generic(&with_tc, asm0);
        let via_rel = baseline::tc::descendants_of(&subparts, asm0);
        assert_eq!(via_desc, via_rel, "PathLog rules and the relational closure agree");
        assert_eq!(via_tc, via_rel, "the generic tc method agrees as well");

        println!(
            "   asm0 transitively contains {} parts (closure: {} tuples, {} derived members)",
            via_desc.len(),
            closure.len(),
            desc_members
        );
    }
}

/// The members of `part[method ->> {...}]`.
fn members_of(structure: &Structure, method: &str, part: Oid) -> BTreeSet<Oid> {
    let method = structure
        .lookup_name(&pathlog::core::names::Name::atom(method))
        .expect("method exists");
    structure
        .apply_set(method, part, &[])
        .map(|m| m.iter().copied().collect())
        .unwrap_or_default()
}

/// The members of `part[(subparts.tc) ->> {...}]` — the method itself is the
/// object denoted by the path `subparts.tc`.
fn members_of_generic(structure: &Structure, part: Oid) -> BTreeSet<Oid> {
    let term = parse_term("(subparts.tc)").expect("method path parses");
    let methods = Engine::new()
        .eval_ground(structure, &term)
        .expect("method path evaluates");
    let method = methods
        .into_iter()
        .next()
        .expect("subparts.tc denotes the virtual method object");
    structure
        .apply_set(method, part, &[])
        .map(|m| m.iter().copied().collect())
        .unwrap_or_default()
}
