//! The Section 2 contrast, made visible: PathLog's direct semantics versus
//! the translation into flat F-logic molecules.
//!
//! For each paper scenario the example prints the single PathLog formulation,
//! the conjunction of flat atoms it expands into (with auxiliary variables in
//! bodies and skolem function terms in heads), and checks that both
//! evaluators produce the same number of answers.  It closes with the one
//! intended divergence: where an extensional fact already defines a path,
//! PathLog's method-based virtual objects reuse it while the skolem
//! translation conflicts with it.
//!
//! Run with `cargo run --example flogic_translation`.

use pathlog::flogic::{FlatEngine, Translator};
use pathlog::prelude::*;

fn main() {
    let base = pathlog::datagen::company::generate_structure(&CompanyParams::scaled(100));
    println!("workload: {}\n", base.stats());

    let scenarios: &[(&str, &str)] = &[
        (
            "query (1.1): colours of employees' automobiles",
            "?- X : employee..vehicles : automobile.color[Z].",
        ),
        (
            "reference (2.1): the two-dimensional filter",
            "?- X : employee[city -> newYork]..vehicles : automobile[cylinders -> 4].color[Z].",
        ),
        (
            "rule (2.4): virtual address objects",
            "X.address[city -> X.city] <- X : employee.
             ?- X : employee.address[city -> C].",
        ),
        (
            "rules (6.4): transitive closure of kids (on the paper family)",
            "X[desc ->> {Y}] <- X[kids ->> {Y}].
             X[desc ->> {Y}] <- X..desc[kids ->> {Y}].
             ?- peter[desc ->> {Y}].",
        ),
    ];

    for (label, text) in scenarios {
        let structure = if text.contains("peter") {
            pathlog::datagen::paper_family().to_structure()
        } else {
            base.clone()
        };
        let program = parse_program(text).expect("paper program parses");
        let (flat, stats) = Translator::new().program(&program).expect("paper program translates");

        println!("== {label}");
        println!(
            "   PathLog ({} rule(s), {} query):",
            program.rules.len(),
            program.queries.len()
        );
        for line in text.lines() {
            println!("      {}", line.trim());
        }
        println!(
            "   flat translation: {} atoms, {} auxiliary variables, {} skolem terms",
            stats.flat_atoms, stats.aux_variables, stats.skolem_terms
        );
        for rule in &flat.rules {
            println!("      {rule}");
        }
        for query in &flat.queries {
            println!("      {query}");
        }

        // Both roads produce the same number of answers.
        let mut direct = structure.clone();
        Engine::new()
            .load_program(&mut direct, &program)
            .expect("direct evaluation succeeds");
        let direct_answers = Engine::new()
            .query(&direct, &program.queries[0])
            .expect("direct query succeeds")
            .len();

        let mut translated = structure.clone();
        let flat_engine = FlatEngine::new();
        flat_engine
            .run(&mut translated, &flat)
            .expect("flat evaluation succeeds");
        let translated_answers = flat_engine
            .query(&translated, &flat.queries[0])
            .expect("flat query succeeds")
            .len();

        assert_eq!(direct_answers, translated_answers);
        println!("   answers: {direct_answers} (identical under both semantics)\n");
    }

    // The divergence the paper argues from: function symbols vs. methods.
    println!("== where the translation breaks down (Section 6, methods vs. function symbols)");
    let text = "p1 : employee[worksFor -> cs1].
                p2 : employee[worksFor -> cs2; boss -> b2].
                b2 : employee[worksFor -> cs2].
                X.boss[worksFor -> D] <- X : employee[worksFor -> D].";
    let program = parse_program(text).expect("program parses");
    let mut direct = Structure::new();
    let stats = Engine::new()
        .load_program(&mut direct, &program)
        .expect("direct evaluation succeeds");
    println!(
        "   direct semantics: ok — {} virtual bosses created, p2's stored boss b2 reused",
        stats.virtual_objects
    );

    let (flat, _) = Translator::new().program(&program).expect("program translates");
    match FlatEngine::new().run(&mut Structure::new(), &flat) {
        Err(error) => println!("   translation      : {error}"),
        Ok(_) => unreachable!("the skolem term boss(p2) must conflict with the stored boss b2"),
    }
}
