% The genealogy of Section 6: `kids` facts and the transitive
% `desc` closure over them.
peter[kids ->> {tim, mary}].
tim[kids ->> {sally}].
mary[kids ->> {tom, paul}].

X[desc ->> {Y}] <- X[kids ->> {Y}].
X[desc ->> {Y}] <- X..desc[kids ->> {Y}].

?- peter[desc ->> {Z}].
