% Example 2.1: one two-dimensional reference replaces a conjunction of
% one-dimensional paths.
p1 : manager[city -> newYork].
p1[vehicles ->> {v1}].
v1 : automobile[color -> red; cylinders -> 4].
v1[producedBy -> gm].
gm[city -> detroit; president -> p9].

?- X : manager..vehicles[color -> red].producedBy[city -> detroit].
