% Stratified negation: employees without a recorded salary.  `paid` sits
% in a lower stratum than `unpaid`, so the program evaluates bottom-up in
% two strata.
mary : employee[salary -> 900].
tim : employee.

X : paid <- X : employee[salary -> _S].
X : unpaid <- X : employee, not X : paid.

?- X : unpaid.
