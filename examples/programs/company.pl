% Section 3: every employee's boss is a virtual object working for the
% same department.
p1 : employee[worksFor -> cs1].
p2 : employee[worksFor -> cs1].

X.boss[worksFor -> D] <- X : employee[worksFor -> D].

?- X : employee.boss[worksFor -> D].
