//! Virtual objects: the address rule (2.4) and the employee-boss rule (6.1),
//! contrasted with XSQL-style views (6.3).
//!
//! Run with `cargo run --release --example virtual_objects [employees]`.

use pathlog::baseline::{materialize, ViewDef};
use pathlog::prelude::*;

fn main() {
    let employees: usize = std::env::args().nth(1).and_then(|s| s.parse().ok()).unwrap_or(500);
    let base = pathlog::datagen::company_structure(&CompanyParams::scaled(employees));
    println!("base structure: {}", base.stats());
    let engine = Engine::new();

    // --- Rule (2.4): restructure address attributes into address objects ----
    let mut with_rules = base.clone();
    let program = parse_program("X.address[street -> X.street; city -> X.city] <- X : employee.").unwrap();
    let stats = engine.load_program(&mut with_rules, &program).unwrap();
    println!(
        "\nPathLog rule (2.4) created {} virtual address objects",
        stats.virtual_objects
    );

    // The virtual objects are referenced through the path X.address — pick one employee.
    let term = parse_term("e0.address.city").unwrap();
    for city in engine.eval_ground(&with_rules, &term).unwrap() {
        println!("  e0.address.city = {}", with_rules.display_name(city));
    }

    // --- The XSQL way (6.3): a view class with an OID function --------------
    let mut with_views = base.clone();
    let view = ViewDef::new("Address", "employee")
        .attr("street", &["street"])
        .attr("city", &["city"]);
    let vstats = materialize(&mut with_views, &view);
    println!("XSQL-style view materialised {} Address(...) objects", vstats.objects);
    assert_eq!(vstats.objects, stats.virtual_objects);

    // --- Rule (6.1) vs (6.2): virtual bosses vs existing bosses -------------
    let mut s61 = base.clone();
    let p = parse_program("X.deputy[worksFor -> D] <- X : employee[worksFor -> D].").unwrap();
    let s = engine.load_program(&mut s61, &p).unwrap();
    println!(
        "\nrule (6.1)-style: every employee gets a virtual deputy: {} virtual objects",
        s.virtual_objects
    );

    let mut s62 = base.clone();
    let p = parse_program("Z[deptOfReports ->> {D}] <- X : employee[worksFor -> D].boss[Z].").unwrap();
    let s = engine.load_program(&mut s62, &p).unwrap();
    println!(
        "rule (6.2)-style: only existing bosses are annotated: {} virtual objects, {} derived facts",
        s.virtual_objects,
        s.derived()
    );

    // --- Typing: virtual objects are type checked through signatures --------
    let errors = pathlog::core::typing::type_check(&with_rules);
    println!(
        "\ntype check of the structure incl. virtual objects: {} violation(s)",
        errors.len()
    );
}
