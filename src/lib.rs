//! # pathlog
//!
//! The facade crate of the PathLog workspace — a complete reproduction of
//! *Access to Objects by Path Expressions and Rules* (Frohn, Lausen, Uphoff,
//! 1994).  It re-exports the public API of every member crate:
//!
//! * [`core`] ([`pathlog_core`]) — references (paths and molecules), the
//!   direct semantics, rules and the bottom-up engine with virtual objects;
//! * [`parser`] ([`pathlog_parser`]) — the concrete PathLog syntax;
//! * [`oodb`] ([`pathlog_oodb`]) — the extensional object store substrate;
//! * [`baseline`] ([`pathlog_baseline`]) — relational, one-dimensional-path
//!   and view-based comparison systems;
//! * [`flogic`] ([`pathlog_flogic`]) — the F-logic translation baseline the
//!   paper contrasts its direct semantics with;
//! * [`sqlfront`] ([`pathlog_sqlfront`]) — an O2SQL/XSQL-style object-SQL
//!   frontend compiled to PathLog queries and view rules;
//! * [`reactive`] ([`pathlog_reactive`]) — production rules and active (ECA)
//!   rules whose conditions are PathLog bodies;
//! * [`datagen`] ([`pathlog_datagen`]) — synthetic company, genealogy and
//!   bill-of-materials workloads.
//!
//! See `examples/` for runnable end-to-end scenarios and `EXPERIMENTS.md` for
//! the experiment index.
//!
//! ```
//! use pathlog::prelude::*;
//!
//! let program = pathlog::parser::parse_program(
//!     "p1 : employee[worksFor -> cs1].
//!      X.boss[worksFor -> D] <- X : employee[worksFor -> D].",
//! )
//! .unwrap();
//! let mut structure = Structure::new();
//! Engine::new().load_program(&mut structure, &program).unwrap();
//! // p1.boss is now a virtual object working for cs1.
//! let boss = Engine::new()
//!     .eval_ground(&structure, &pathlog::parser::parse_term("p1.boss").unwrap())
//!     .unwrap();
//! assert_eq!(boss.len(), 1);
//! ```

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub use pathlog_baseline as baseline;
pub use pathlog_core as core;
pub use pathlog_datagen as datagen;
pub use pathlog_flogic as flogic;
pub use pathlog_oodb as oodb;
pub use pathlog_parser as parser;
pub use pathlog_reactive as reactive;
pub use pathlog_sqlfront as sqlfront;

/// Commonly used items from all member crates.
pub mod prelude {
    pub use pathlog_baseline::{OneDimQuery, RelationalDb, ViewDef};
    pub use pathlog_core::prelude::*;
    pub use pathlog_datagen::{CompanyParams, GenealogyParams};
    pub use pathlog_flogic::{FlatEngine, Translator};
    pub use pathlog_oodb::{ObjectStore, Schema, Value};
    pub use pathlog_parser::{
        parse_program, parse_program_spanned, parse_query, parse_rule, parse_term, SpannedProgram,
    };
    pub use pathlog_reactive::{
        Action, ActiveOptions, ActiveStore, CascadeSchedule, EcaRule, ProductionEngine, ProductionOptions,
        ProductionRule,
    };
    pub use pathlog_sqlfront::Catalog;
}
