//! The `any::<T>()` entry point for types with a canonical strategy.

use crate::strategy::Strategy;
use crate::test_runner::TestRng;

/// Types with a canonical "any value" strategy.
pub trait Arbitrary: Sized {
    /// The canonical strategy type.
    type Strategy: Strategy<Value = Self>;

    /// The canonical strategy.
    fn arbitrary() -> Self::Strategy;
}

/// The canonical strategy for `A`.
pub fn any<A: Arbitrary>() -> A::Strategy {
    A::arbitrary()
}

/// Uniformly random booleans.
#[derive(Clone, Copy, Debug)]
pub struct AnyBool;

impl Strategy for AnyBool {
    type Value = bool;

    fn gen_value(&self, rng: &mut TestRng) -> bool {
        rng.bool()
    }
}

impl Arbitrary for bool {
    type Strategy = AnyBool;

    fn arbitrary() -> AnyBool {
        AnyBool
    }
}

/// Uniformly random integers over the full domain.
#[derive(Clone, Copy, Debug)]
pub struct AnyInt<T>(std::marker::PhantomData<T>);

macro_rules! impl_arbitrary_int {
    ($($t:ty),*) => {$(
        impl Strategy for AnyInt<$t> {
            type Value = $t;

            fn gen_value(&self, rng: &mut TestRng) -> $t {
                rng.next_u64() as $t
            }
        }

        impl Arbitrary for $t {
            type Strategy = AnyInt<$t>;

            fn arbitrary() -> AnyInt<$t> {
                AnyInt(std::marker::PhantomData)
            }
        }
    )*};
}

impl_arbitrary_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);
