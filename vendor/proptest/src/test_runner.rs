//! Test-runner configuration, RNG and case-failure plumbing.

use std::fmt;

/// Configuration for a `proptest!` block.
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Number of random cases each test function runs.
    pub cases: u32,
}

impl ProptestConfig {
    /// A configuration running `cases` cases per test.
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig { cases: 256 }
    }
}

/// Splitmix64 generator driving value generation.
#[derive(Debug, Clone)]
pub struct TestRng {
    state: u64,
    run_seed: u64,
}

impl TestRng {
    /// A generator seeded from an explicit value.
    pub fn from_seed(seed: u64) -> Self {
        TestRng {
            state: seed,
            run_seed: seed,
        }
    }

    /// A generator for one test run: the per-test stream mixes an FNV-1a
    /// hash of the test name with a per-run seed, so each run explores a
    /// fresh case set (like real proptest) while staying reproducible.
    ///
    /// The run seed comes from `PROPTEST_SEED` if set, otherwise from the
    /// system clock; [`TestRng::run_seed`] reports it so failures can be
    /// replayed with `PROPTEST_SEED=<seed>`.
    pub fn default_seed(test_name: &str) -> Self {
        let mut hash: u64 = 0xcbf2_9ce4_8422_2325;
        for byte in test_name.bytes() {
            hash ^= u64::from(byte);
            hash = hash.wrapping_mul(0x0000_0100_0000_01b3);
        }
        let run_seed = match std::env::var("PROPTEST_SEED") {
            Ok(value) => value
                .trim()
                .parse()
                .unwrap_or_else(|_| panic!("PROPTEST_SEED must be a u64, got `{value}`")),
            Err(_) => std::time::SystemTime::now()
                .duration_since(std::time::UNIX_EPOCH)
                .map(|d| d.as_nanos() as u64)
                .unwrap_or(0),
        };
        TestRng {
            state: hash ^ run_seed,
            run_seed,
        }
    }

    /// The per-run seed mixed into this generator (set `PROPTEST_SEED` to
    /// this value to replay the run).
    pub fn run_seed(&self) -> u64 {
        self.run_seed
    }

    /// Next raw 64 random bits.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// Uniform index in `[0, bound)`; `bound` must be non-zero.
    pub fn below(&mut self, bound: usize) -> usize {
        assert!(bound > 0, "cannot sample below 0");
        (self.next_u64() % bound as u64) as usize
    }

    /// Uniform boolean.
    pub fn bool(&mut self) -> bool {
        self.next_u64() & 1 == 1
    }
}

/// Why a test case failed (carried out of the case body by the
/// `prop_assert!` family of macros).
#[derive(Debug, Clone)]
pub struct TestCaseError(String);

impl TestCaseError {
    /// A failure with the given message.
    pub fn fail(message: String) -> Self {
        TestCaseError(message)
    }
}

impl fmt::Display for TestCaseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.0)
    }
}
