//! Collection strategies.

use std::ops::Range;

use crate::strategy::Strategy;
use crate::test_runner::TestRng;

/// A strategy for vectors whose length is uniform in `size` and whose
/// elements come from `element`.
pub fn vec<S: Strategy>(element: S, size: Range<usize>) -> VecStrategy<S> {
    assert!(size.start < size.end, "cannot sample empty length range");
    VecStrategy { element, size }
}

/// See [`vec`](fn@vec).
#[derive(Clone)]
pub struct VecStrategy<S> {
    element: S,
    size: Range<usize>,
}

impl<S: Strategy> Strategy for VecStrategy<S> {
    type Value = Vec<S::Value>;

    fn gen_value(&self, rng: &mut TestRng) -> Vec<S::Value> {
        let span = self.size.end - self.size.start;
        let len = self.size.start + rng.below(span.max(1));
        (0..len).map(|_| self.element.gen_value(rng)).collect()
    }
}
