//! The usual `use proptest::prelude::*;` imports.

pub use crate as prop;
pub use crate::arbitrary::any;
pub use crate::strategy::{BoxedStrategy, Just, Strategy};
pub use crate::test_runner::{ProptestConfig, TestCaseError, TestRng};
pub use crate::{prop_assert, prop_assert_eq, prop_oneof, proptest};
