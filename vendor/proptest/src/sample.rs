//! Uniform selection from a fixed set of values.

use crate::strategy::Strategy;
use crate::test_runner::TestRng;

/// A strategy yielding uniformly random elements of `items`.
pub fn select<T: Clone>(items: Vec<T>) -> Select<T> {
    assert!(!items.is_empty(), "select needs at least one item");
    Select { items }
}

/// See [`select`].
#[derive(Clone)]
pub struct Select<T: Clone> {
    items: Vec<T>,
}

impl<T: Clone> Strategy for Select<T> {
    type Value = T;

    fn gen_value(&self, rng: &mut TestRng) -> T {
        self.items[rng.below(self.items.len())].clone()
    }
}
