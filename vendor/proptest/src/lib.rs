//! Offline stand-in for the `proptest` crate.
//!
//! The build environment has no access to crates.io, so this crate implements
//! the slice of the proptest API the workspace's property tests use: the
//! [`strategy::Strategy`] trait with `prop_map` / `prop_filter` /
//! `prop_recursive`, strategies for integer ranges, tuples, vectors
//! ([`collection::vec`]) and uniform selection ([`sample::select`]), plus the
//! [`proptest!`], [`prop_oneof!`], [`prop_assert!`] and [`prop_assert_eq!`]
//! macros.
//!
//! Differences from real proptest: generation is plain pseudo-random (no
//! size-driven growth) and failing cases are reported but **not shrunk**.
//! Like real proptest, every run explores a fresh random case set; failures
//! print the run seed and can be replayed with `PROPTEST_SEED=<seed>`.

#![forbid(unsafe_code)]

pub mod arbitrary;
pub mod collection;
pub mod prelude;
pub mod sample;
pub mod strategy;
pub mod test_runner;

/// Run each test case body, failing the surrounding test on the first case
/// whose body returns an error.
///
/// Supports the subset of the real macro's grammar used in this workspace:
/// an optional `#![proptest_config(..)]` inner attribute followed by test
/// functions whose arguments are `pattern in strategy` pairs.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_tests! { ($cfg) $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_tests! { ($crate::test_runner::ProptestConfig::default()) $($rest)* }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_tests {
    (($cfg:expr) $($(#[$meta:meta])* fn $name:ident($($arg:pat in $strat:expr),+ $(,)?) $body:block)*) => {
        $(
            $(#[$meta])*
            fn $name() {
                let config: $crate::test_runner::ProptestConfig = $cfg;
                let mut rng = $crate::test_runner::TestRng::default_seed(stringify!($name));
                let strategies = ($($strat,)+);
                for case in 0..config.cases {
                    let ($($arg,)+) =
                        $crate::strategy::Strategy::gen_value(&strategies, &mut rng);
                    let outcome: ::std::result::Result<(), $crate::test_runner::TestCaseError> =
                        (|| { $body ::std::result::Result::Ok(()) })();
                    if let ::std::result::Result::Err(err) = outcome {
                        panic!(
                            "proptest case {}/{} of `{}` failed (replay with PROPTEST_SEED={}): {}",
                            case + 1,
                            config.cases,
                            stringify!($name),
                            rng.run_seed(),
                            err
                        );
                    }
                }
            }
        )*
    };
}

/// Uniform choice between several strategies producing the same value type.
#[macro_export]
macro_rules! prop_oneof {
    ($($strat:expr),+ $(,)?) => {
        $crate::strategy::Union::new(vec![
            $($crate::strategy::Strategy::boxed($strat)),+
        ])
    };
}

/// Fail the current test case unless the condition holds.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr $(,)?) => {
        if !$cond {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::fail(
                format!("assertion failed: {}", stringify!($cond)),
            ));
        }
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !$cond {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::fail(
                format!($($fmt)+),
            ));
        }
    };
}

/// Fail the current test case unless both expressions are equal.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let left = &$left;
        let right = &$right;
        if !(*left == *right) {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::fail(
                format!("assertion failed: `{:?}` == `{:?}`", left, right),
            ));
        }
    }};
    ($left:expr, $right:expr, $($fmt:tt)+) => {{
        let left = &$left;
        let right = &$right;
        if !(*left == *right) {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::fail(
                format!(
                    "assertion failed: `{:?}` == `{:?}`: {}",
                    left,
                    right,
                    format!($($fmt)+)
                ),
            ));
        }
    }};
}
