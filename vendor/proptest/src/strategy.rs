//! The `Strategy` trait and the combinators the workspace uses.

use std::ops::Range;
use std::rc::Rc;

use crate::test_runner::TestRng;

/// How many times `prop_filter` retries before giving up.
const FILTER_RETRIES: usize = 10_000;

/// A generator of random values of one type.
///
/// Unlike real proptest there is no value tree and no shrinking: a strategy
/// is simply a pure function from an RNG to a value.
pub trait Strategy {
    /// The type of generated values.
    type Value;

    /// Generate one value.
    fn gen_value(&self, rng: &mut TestRng) -> Self::Value;

    /// Apply a function to every generated value.
    fn prop_map<O, F>(self, map: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> O,
    {
        Map { source: self, map }
    }

    /// Retry generation until the predicate accepts the value.
    fn prop_filter<F>(self, reason: impl Into<String>, predicate: F) -> Filter<Self, F>
    where
        Self: Sized,
        F: Fn(&Self::Value) -> bool,
    {
        Filter {
            source: self,
            reason: reason.into(),
            predicate,
        }
    }

    /// Build a recursive strategy: `recurse` receives the strategy for the
    /// previous depth and returns the strategy for the next one, nested
    /// `depth` times around `self` (the leaf strategy).
    fn prop_recursive<R, F>(
        self,
        depth: u32,
        _desired_size: u32,
        _expected_branch_size: u32,
        recurse: F,
    ) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + 'static,
        Self::Value: 'static,
        R: Strategy<Value = Self::Value> + 'static,
        F: Fn(BoxedStrategy<Self::Value>) -> R,
    {
        let mut strategy = self.boxed();
        for _ in 0..depth {
            strategy = recurse(strategy).boxed();
        }
        strategy
    }

    /// Erase the concrete strategy type.
    fn boxed(self) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + 'static,
        Self::Value: 'static,
    {
        BoxedStrategy(Rc::new(move |rng| self.gen_value(rng)))
    }
}

/// A type-erased, cheaply clonable strategy.
pub struct BoxedStrategy<T>(Rc<dyn Fn(&mut TestRng) -> T>);

impl<T> Clone for BoxedStrategy<T> {
    fn clone(&self) -> Self {
        BoxedStrategy(Rc::clone(&self.0))
    }
}

impl<T> Strategy for BoxedStrategy<T> {
    type Value = T;

    fn gen_value(&self, rng: &mut TestRng) -> T {
        (self.0)(rng)
    }
}

/// See [`Strategy::prop_map`].
#[derive(Clone)]
pub struct Map<S, F> {
    source: S,
    map: F,
}

impl<S, O, F> Strategy for Map<S, F>
where
    S: Strategy,
    F: Fn(S::Value) -> O,
{
    type Value = O;

    fn gen_value(&self, rng: &mut TestRng) -> O {
        (self.map)(self.source.gen_value(rng))
    }
}

/// See [`Strategy::prop_filter`].
#[derive(Clone)]
pub struct Filter<S, F> {
    source: S,
    reason: String,
    predicate: F,
}

impl<S, F> Strategy for Filter<S, F>
where
    S: Strategy,
    F: Fn(&S::Value) -> bool,
{
    type Value = S::Value;

    fn gen_value(&self, rng: &mut TestRng) -> S::Value {
        for _ in 0..FILTER_RETRIES {
            let value = self.source.gen_value(rng);
            if (self.predicate)(&value) {
                return value;
            }
        }
        panic!("prop_filter gave up after {FILTER_RETRIES} rejections: {}", self.reason);
    }
}

/// Uniform choice among several strategies (see [`crate::prop_oneof!`]).
pub struct Union<T> {
    options: Vec<BoxedStrategy<T>>,
}

impl<T> Union<T> {
    /// A union over the given non-empty set of options.
    pub fn new(options: Vec<BoxedStrategy<T>>) -> Self {
        assert!(!options.is_empty(), "prop_oneof! needs at least one option");
        Union { options }
    }
}

impl<T> Clone for Union<T> {
    fn clone(&self) -> Self {
        Union {
            options: self.options.clone(),
        }
    }
}

impl<T> Strategy for Union<T> {
    type Value = T;

    fn gen_value(&self, rng: &mut TestRng) -> T {
        let index = rng.below(self.options.len());
        self.options[index].gen_value(rng)
    }
}

/// A strategy that always yields clones of one value.
#[derive(Clone)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;

    fn gen_value(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

macro_rules! impl_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;

            fn gen_value(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let span = (self.end as i128 - self.start as i128) as u128;
                let offset = (rng.next_u64() as u128) % span;
                (self.start as i128 + offset as i128) as $t
            }
        }
    )*};
}

impl_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

macro_rules! impl_tuple_strategy {
    ($($name:ident),+) => {
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);

            #[allow(non_snake_case)]
            fn gen_value(&self, rng: &mut TestRng) -> Self::Value {
                let ($($name,)+) = self;
                ($($name.gen_value(rng),)+)
            }
        }
    };
}

impl_tuple_strategy!(A);
impl_tuple_strategy!(A, B);
impl_tuple_strategy!(A, B, C);
impl_tuple_strategy!(A, B, C, D);
impl_tuple_strategy!(A, B, C, D, E);
impl_tuple_strategy!(A, B, C, D, E, F);
