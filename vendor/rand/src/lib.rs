//! Offline stand-in for the `rand` crate.
//!
//! The build environment has no access to crates.io, so this crate provides
//! the (small) slice of the `rand 0.8` API that the workspace actually uses:
//! [`rngs::StdRng`], [`SeedableRng::seed_from_u64`], [`Rng::gen_range`] over
//! half-open integer ranges, [`Rng::gen_bool`] and [`seq::SliceRandom::choose`].
//!
//! The generator is a deterministic splitmix64 — plenty for synthetic data
//! generation, not cryptographically secure, and it makes every workload
//! reproducible from its seed.

#![forbid(unsafe_code)]

use std::ops::Range;

/// A seedable random number generator.
pub trait SeedableRng: Sized {
    /// Create a generator from a 64-bit seed.
    fn seed_from_u64(seed: u64) -> Self;
}

/// Types that can be sampled uniformly from a half-open range.
pub trait SampleUniform: Copy {
    /// Sample uniformly from `[low, high)`.
    fn sample_range<R: Rng + ?Sized>(rng: &mut R, range: Range<Self>) -> Self;
}

macro_rules! impl_sample_uniform {
    ($($t:ty),*) => {$(
        impl SampleUniform for $t {
            fn sample_range<R: Rng + ?Sized>(rng: &mut R, range: Range<Self>) -> Self {
                assert!(range.start < range.end, "cannot sample empty range");
                let span = (range.end as i128 - range.start as i128) as u128;
                let offset = (rng.next_u64() as u128) % span;
                (range.start as i128 + offset as i128) as $t
            }
        }
    )*};
}

impl_sample_uniform!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

/// The subset of `rand::Rng` the workspace uses.
pub trait Rng {
    /// Next raw 64 random bits.
    fn next_u64(&mut self) -> u64;

    /// Uniform sample from a half-open integer range.
    fn gen_range<T: SampleUniform>(&mut self, range: Range<T>) -> T
    where
        Self: Sized,
    {
        T::sample_range(self, range)
    }

    /// Bernoulli trial with success probability `p` (clamped to `[0, 1]`).
    fn gen_bool(&mut self, p: f64) -> bool
    where
        Self: Sized,
    {
        let unit = (self.next_u64() >> 11) as f64 / (1u64 << 53) as f64;
        unit < p
    }
}

/// Concrete generators.
pub mod rngs {
    use super::{Rng, SeedableRng};

    /// Deterministic splitmix64 generator (stand-in for `rand::rngs::StdRng`).
    #[derive(Debug, Clone)]
    pub struct StdRng {
        state: u64,
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            StdRng { state: seed }
        }
    }

    impl Rng for StdRng {
        fn next_u64(&mut self) -> u64 {
            self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = self.state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        }
    }
}

/// Sequence-related helpers.
pub mod seq {
    use super::Rng;

    /// Random selection from slices.
    pub trait SliceRandom {
        /// The element type.
        type Item;

        /// A uniformly random element, or `None` if the slice is empty.
        fn choose<R: Rng>(&self, rng: &mut R) -> Option<&Self::Item>;
    }

    impl<T> SliceRandom for [T] {
        type Item = T;

        fn choose<R: Rng>(&self, rng: &mut R) -> Option<&T> {
            if self.is_empty() {
                None
            } else {
                Some(&self[(rng.next_u64() % self.len() as u64) as usize])
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::seq::SliceRandom;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_from_seed() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn gen_range_stays_in_bounds() {
        let mut rng = StdRng::seed_from_u64(7);
        for _ in 0..1000 {
            let v: i64 = rng.gen_range(40..90);
            assert!((40..90).contains(&v));
            let u: usize = rng.gen_range(0..3);
            assert!(u < 3);
        }
    }

    #[test]
    fn gen_bool_extremes() {
        let mut rng = StdRng::seed_from_u64(1);
        for _ in 0..100 {
            assert!(!rng.gen_bool(0.0));
            assert!(rng.gen_bool(1.0));
        }
    }

    #[test]
    fn choose_covers_slice() {
        let mut rng = StdRng::seed_from_u64(3);
        let items = ["a", "b", "c"];
        let mut seen = std::collections::BTreeSet::new();
        for _ in 0..100 {
            seen.insert(*items.choose(&mut rng).unwrap());
        }
        assert_eq!(seen.len(), 3);
        let empty: [u8; 0] = [];
        assert!(empty.choose(&mut rng).is_none());
    }
}
