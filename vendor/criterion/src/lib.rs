//! Offline stand-in for the `criterion` benchmarking crate.
//!
//! The build environment has no access to crates.io, so this crate implements
//! the slice of the criterion API the workspace's `harness = false` bench
//! targets use: [`Criterion::benchmark_group`], group configuration
//! (`sample_size` / `warm_up_time` / `measurement_time`),
//! [`BenchmarkGroup::bench_function`] / [`BenchmarkGroup::bench_with_input`],
//! [`BenchmarkId`], [`black_box`] and the [`criterion_group!`] /
//! [`criterion_main!`] macros.
//!
//! Unlike real criterion there is no statistical analysis: each benchmark
//! runs one warm-up iteration plus `sample_size` timed iterations and prints
//! mean wall-clock time per iteration.  That is enough to compare the
//! experiment variants against each other and to keep `cargo bench` useful
//! offline.

#![forbid(unsafe_code)]

use std::fmt;
use std::time::{Duration, Instant};

/// Re-export of [`std::hint::black_box`], criterion-style.
pub fn black_box<T>(value: T) -> T {
    std::hint::black_box(value)
}

/// The benchmark driver handed to every `criterion_group!` target.
#[derive(Debug, Default)]
pub struct Criterion {
    _private: (),
}

impl Criterion {
    /// Start a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            _criterion: self,
            name: name.into(),
            sample_size: 10,
        }
    }
}

/// A named benchmark within a group, optionally parameterised.
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    function: String,
    parameter: String,
}

impl BenchmarkId {
    /// An id made of a function name and a displayable parameter.
    pub fn new(function: impl Into<String>, parameter: impl fmt::Display) -> Self {
        BenchmarkId {
            function: function.into(),
            parameter: parameter.to_string(),
        }
    }
}

impl fmt::Display for BenchmarkId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}/{}", self.function, self.parameter)
    }
}

/// A group of related benchmarks sharing configuration.
#[derive(Debug)]
pub struct BenchmarkGroup<'a> {
    _criterion: &'a mut Criterion,
    name: String,
    sample_size: usize,
}

impl BenchmarkGroup<'_> {
    /// Number of timed iterations per benchmark.
    pub fn sample_size(&mut self, samples: usize) -> &mut Self {
        self.sample_size = samples.max(1);
        self
    }

    /// Accepted for API compatibility; the stub has no separate warm-up phase
    /// beyond a single untimed iteration.
    pub fn warm_up_time(&mut self, _duration: Duration) -> &mut Self {
        self
    }

    /// Accepted for API compatibility; the stub always runs exactly
    /// `sample_size` iterations.
    pub fn measurement_time(&mut self, _duration: Duration) -> &mut Self {
        self
    }

    /// Run a benchmark with no explicit input.
    pub fn bench_function<F>(&mut self, id: impl fmt::Display, mut routine: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let mut bencher = Bencher {
            samples: self.sample_size,
            mean: Duration::ZERO,
        };
        routine(&mut bencher);
        self.report(&id.to_string(), bencher.mean);
        self
    }

    /// Run a benchmark against a borrowed input.
    pub fn bench_with_input<I, F>(&mut self, id: BenchmarkId, input: &I, mut routine: F) -> &mut Self
    where
        I: ?Sized,
        F: FnMut(&mut Bencher, &I),
    {
        let mut bencher = Bencher {
            samples: self.sample_size,
            mean: Duration::ZERO,
        };
        routine(&mut bencher, input);
        self.report(&id.to_string(), bencher.mean);
        self
    }

    /// Finish the group (prints nothing extra; provided for API parity).
    pub fn finish(self) {}

    fn report(&self, id: &str, mean: Duration) {
        println!("{}/{}: {:?}/iter", self.name, id, mean);
    }
}

/// Times the closure handed to [`BenchmarkGroup::bench_function`].
#[derive(Debug)]
pub struct Bencher {
    samples: usize,
    mean: Duration,
}

impl Bencher {
    /// Run the routine once untimed, then `sample_size` timed iterations,
    /// recording mean wall-clock time per iteration.
    pub fn iter<O, F>(&mut self, mut routine: F)
    where
        F: FnMut() -> O,
    {
        black_box(routine());
        let start = Instant::now();
        for _ in 0..self.samples {
            black_box(routine());
        }
        self.mean = start.elapsed() / self.samples as u32;
    }
}

/// Bundle benchmark functions into a callable group.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        pub fn $group() {
            let mut criterion = $crate::Criterion::default();
            $($target(&mut criterion);)+
        }
    };
}

/// Generate `fn main` running the given groups (for `harness = false`).
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}
